"""Tests for the telemetry-export profile fitter (:mod:`repro.calib`).

The contract: :func:`profile_from_export` ingests a
``repro.telemetry.calibration/v1`` document and recovers the effective
rates that generated it — exactly on noise-free synthetic samples, and
physically-plausible (never above peak) on degenerate ones.  The legacy
:class:`Probe` bridge gets the same treatment.
"""

import pytest

from repro.calib import profile_from_export, profile_from_probes
from repro.calib.fit import Probe
from repro.hardware import TPU_V2, TPU_V3
from repro.hardware.profile import ProfileError
from repro.obs.telemetry import CALIBRATION_SCHEMA


def make_export(hardware):
    return {"schema": CALIBRATION_SCHEMA, "source": "synthetic",
            "hardware": hardware}


def compute_series(samples):
    return {"count": len(samples), "total_s": sum(s["seconds"] for s in samples),
            "samples": samples}


def synthetic_compute(rate, mem_bw, dtype_bytes, flops_list, elements_list,
                      devices=1):
    """Noise-free samples of ``t = flops/rate + bytes/mem_bw`` per board."""
    samples = []
    for flops, elements in zip(flops_list, elements_list):
        seconds = (flops / devices) / rate + \
            (elements / devices) * dtype_bytes / mem_bw
        samples.append({"flops": flops, "elements": elements,
                        "seconds": seconds, "devices": devices})
    return samples


class TestProfileFromExport:
    def test_recovers_synthetic_rates_per_kind(self):
        conv_rate, fc_rate, mem_bw = 100e12, 40e12, 600e9
        hardware = {"tpu-v2": {
            "conv/forward": compute_series(synthetic_compute(
                conv_rate, mem_bw, 2,
                [1e12, 5e12, 2e13, 8e12], [1e6, 9e6, 4e7, 2e6])),
            "fc/forward": compute_series(synthetic_compute(
                fc_rate, mem_bw, 2,
                [1e11, 8e11, 3e12, 5e10], [2e6, 1e7, 6e7, 4e5])),
        }}
        profile = profile_from_export(make_export(hardware))
        sp = profile.specs[0]
        assert sp.spec == "tpu-v2"
        assert sp.compute_rate("conv") == pytest.approx(conv_rate, rel=1e-6)
        assert sp.compute_rate("fc") == pytest.approx(fc_rate, rel=1e-6)

    def test_rate_never_exceeds_peak(self):
        """Memory-bound samples collapse the flops column; the fit must
        fall back rather than report an unphysical rate."""
        # seconds dominated by the memory term: flops are tiny
        samples = synthetic_compute(1e30, 600e9, 2,
                                    [1e6, 2e6, 3e6, 4e6],
                                    [1e8, 3e8, 6e8, 9e8])
        hardware = {"tpu-v2": {"fc/forward": compute_series(samples)}}
        profile = profile_from_export(make_export(hardware))
        assert profile.specs[0].compute_rate("fc") <= TPU_V2.flops

    def test_network_latency_and_efficiency_recovered(self):
        peak = TPU_V3.network_bandwidth
        eff, latency, devices = 0.6, 1e-5, 4
        net_samples = []
        for nbytes, transfers in ((1e6, 2), (4e6, 3), (1.6e7, 1), (6.4e7, 4)):
            seconds = (nbytes / devices) / (peak * eff) + transfers * latency
            net_samples.append({"elements": nbytes / 2, "flops": 0.0,
                                "seconds": seconds, "devices": devices,
                                "transfers": transfers})
        hardware = {"tpu-v3": {
            "conv/forward": compute_series(synthetic_compute(
                200e12, 900e9, 2, [1e12, 6e12, 2e13], [1e6, 8e6, 3e7])),
            "net/comm": compute_series(net_samples),
        }}
        profile = profile_from_export(make_export(hardware))
        sp = profile.specs[0]
        assert sp.transfer_latency_s == pytest.approx(latency, rel=1e-3)
        for nbytes, _ in ((1e6, 2), (6.4e7, 4)):
            assert sp.efficiency(nbytes) == pytest.approx(eff, rel=0.05)

    def test_unknown_hardware_skipped_with_note(self):
        hardware = {
            "tpu-v2": {"conv/forward": compute_series(synthetic_compute(
                100e12, 600e9, 2, [1e12, 5e12, 2e13], [1e6, 9e6, 4e7]))},
            "tpu-v2+tpu-v3": {"conv/forward": compute_series(
                synthetic_compute(100e12, 600e9, 2, [1e12, 2e12], [1e6, 2e6]))},
        }
        profile = profile_from_export(make_export(hardware))
        assert profile.spec_names() == ("tpu-v2",)
        assert "skipped:tpu-v2+tpu-v3" in dict(profile.meta)

    def test_rejects_wrong_schema(self):
        with pytest.raises(ProfileError, match="schema"):
            profile_from_export({"schema": "nope", "hardware": {}})

    def test_rejects_empty_hardware(self):
        with pytest.raises(ProfileError, match="no hardware"):
            profile_from_export(make_export({}))

    def test_all_unknown_hardware_raises(self):
        hardware = {"gpu-z": {"conv/forward": compute_series(
            synthetic_compute(1e12, 1e9, 2, [1e12, 2e12], [1e6, 2e6]))}}
        with pytest.raises(ProfileError, match="no known hardware"):
            profile_from_export(make_export(hardware))

    def test_too_few_samples_skips_spec(self):
        hardware = {
            "tpu-v2": {"conv/forward": compute_series(synthetic_compute(
                100e12, 600e9, 2, [1e12], [1e6]))},  # 1 sample: unfittable
            "tpu-v3": {"conv/forward": compute_series(synthetic_compute(
                200e12, 900e9, 2, [1e12, 5e12, 2e13], [1e6, 9e6, 4e7]))},
        }
        profile = profile_from_export(make_export(hardware))
        assert profile.spec_names() == ("tpu-v3",)
        assert "skipped:tpu-v2" in dict(profile.meta)


class TestProfileFromProbes:
    def test_bridges_legacy_fit(self):
        c_true, b_true = 100e12, 2e9
        probes = [
            Probe(flops=f, network_bytes=n,
                  measured_seconds=f / c_true + n / b_true)
            for f, n in [(1e12, 1e6), (5e12, 1e9), (1e10, 5e9), (8e13, 1e8)]
        ]
        profile = profile_from_probes(TPU_V2, probes)
        sp = profile.specs[0]
        assert sp.spec == TPU_V2.name
        assert sp.compute_rate() == pytest.approx(c_true, rel=1e-6)
        # the fitted bandwidth expresses as an efficiency over peak
        expected_eff = min(1.0, b_true / TPU_V2.network_bandwidth)
        assert sp.efficiency(1e6) == pytest.approx(expected_eff, rel=1e-6)

    def test_profile_is_usable_in_cost_model(self):
        from repro.core.cost_model import PairCostModel
        from repro.hardware import make_group

        probes = [
            Probe(flops=f, network_bytes=n, measured_seconds=f / 9e13 + n / 1e9)
            for f, n in [(1e12, 1e6), (5e12, 1e9), (1e10, 5e9)]
        ]
        profile = profile_from_probes(TPU_V2, probes)
        model = PairCostModel(make_group(TPU_V2, 2), make_group(TPU_V2, 2),
                              profile=profile)
        assert model.c_i > 0
