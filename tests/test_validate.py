"""Unit tests for graph validation."""

import pytest

from repro.graph.layers import Add, Conv2d, Flatten, Input, Linear, ReLU
from repro.graph.network import GraphError, Network
from repro.graph.validate import validate_network
from repro.models import build_model


def test_valid_linear_network_has_no_warnings():
    net = Network("ok", Input("in", channels=3, height=8, width=8))
    net.add(Conv2d("c1", 3, 4, kernel=3, padding=1))
    net.add(Flatten("f"))
    net.add(Linear("fc", 4 * 8 * 8, 10))
    assert validate_network(net) == []


@pytest.mark.parametrize("model", ["lenet", "alexnet", "vgg11", "resnet18"])
def test_zoo_models_validate(model):
    assert validate_network(build_model(model)) == []


def test_join_on_non_add_layer_raises():
    net = Network("bad", Input("in", channels=2, height=4, width=4))
    a = net.add(Conv2d("a", 2, 2, kernel=1))
    b = net.add(Conv2d("b", 2, 2, kernel=1), inputs=["in"])
    net.add(ReLU("r"), inputs=[a, b])
    with pytest.raises(GraphError, match="only Add may join"):
        validate_network(net)


def test_single_input_add_warns():
    net = Network("warn", Input("in", channels=2, height=4, width=4))
    a = net.add(Conv2d("a", 2, 2, kernel=1))
    net.add(Add("add"), inputs=[a])
    warnings = validate_network(net)
    assert any("no-op" in w for w in warnings)


def test_no_weighted_layers_warns():
    net = Network("empty", Input("in", channels=2, height=4, width=4))
    net.add(ReLU("r"))
    warnings = validate_network(net)
    assert any("nothing to partition" in w for w in warnings)


def test_shape_mismatch_raises():
    net = Network("mismatch", Input("in", channels=2, height=4, width=4))
    net.add(Conv2d("c", 3, 4, kernel=1))  # expects 3 channels, gets 2
    with pytest.raises(ValueError, match="input channels"):
        validate_network(net)


def test_multiple_sinks_raise():
    net = Network("sinks", Input("in", channels=2, height=4, width=4))
    net.add(Conv2d("a", 2, 2, kernel=1), inputs=["in"])
    net.add(Conv2d("b", 2, 2, kernel=1), inputs=["in"])
    with pytest.raises(GraphError):
        validate_network(net)
