"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_array


class TestParseArray:
    def test_presets(self):
        assert parse_array("hetero").size == 256
        assert parse_array("homo").size == 128

    def test_explicit_spec(self):
        array = parse_array("tpu-v2:3,tpu-v3:5")
        assert dict(array.signature()) == {"tpu-v2": 3, "tpu-v3": 5}

    def test_unknown_accelerator(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_array("gpu:4")

    def test_bad_count(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_array("tpu-v2:lots")

    def test_missing_colon(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_array("tpu-v2")


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "lenet" in out and "resnet50" in out

    def test_describe(self, capsys):
        assert main(["describe", "--model", "lenet", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "cv1" in out and "weighted layers" in out

    def test_plan_prints_assignments(self, capsys):
        code = main(["plan", "--model", "lenet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha=" in out
        assert "hierarchy levels: 2" in out

    def test_plan_with_breakdown_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        code = main(["plan", "--model", "lenet",
                     "--array", "tpu-v3:4", "--batch", "32",
                     "--breakdown", "--out", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost breakdown" in out.lower()
        document = json.loads(out_file.read_text())
        assert document["network"] == "lenet"

    def test_simulate_from_plan_file(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
              "--batch", "32", "--out", str(out_file)])
        capsys.readouterr()
        assert main(["simulate", "--plan", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_simulate_inline(self, capsys):
        code = main(["simulate", "--model", "lenet", "--scheme", "dp",
                     "--array", "tpu-v2:2", "--batch", "32"])
        assert code == 0
        assert "lenet / dp" in capsys.readouterr().out

    def test_simulate_without_inputs_fails(self, capsys):
        assert main(["simulate"]) == 2

    def test_sweep(self, capsys):
        code = main(["sweep", "--models", "lenet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AccPar" in out and "geomean" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["fly"])

    def test_scheme_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "lenet", "--scheme", "magic"])


class TestValidateCommand:
    def test_valid_plan_passes(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
              "--batch", "32", "--out", str(out_file)])
        capsys.readouterr()
        assert main(["validate", "--plan", str(out_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_corrupted_plan_fails(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "plan.json"
        main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
              "--batch", "32", "--out", str(out_file)])
        document = json.loads(out_file.read_text())
        document["plan"]["entries"] = [
            e for e in document["plan"]["entries"] if e.get("layer") != "cv1"
        ]
        out_file.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(["validate", "--plan", str(out_file)]) == 1
        assert "cv1" in capsys.readouterr().out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        code = main(["report", "--model", "lenet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# lenet" in out
        assert "Root-level plan" in out
        assert "Per-level communication" in out

    def test_report_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        code = main(["report", "--model", "lenet", "--array", "tpu-v3:4",
                     "--batch", "32", "--out", str(out_file)])
        assert code == 0
        assert "simulated iteration" in out_file.read_text()

    def test_report_with_what_if(self, capsys):
        code = main(["report", "--model", "lenet", "--array", "tpu-v3:4",
                     "--batch", "32", "--what-if"])
        assert code == 0
        assert "Layer-type sensitivity" in capsys.readouterr().out


class TestFigureCommand:
    @pytest.mark.parametrize("which", ["fig5", "fig6", "fig7", "fig8"])
    def test_figure_dispatch(self, which, capsys, monkeypatch):
        """The figure subcommand routes to the right generator (full-size
        generators are monkeypatched to keep the test fast)."""
        import repro.cli as cli
        from repro.experiments.harness import SpeedupTable

        table = SpeedupTable(models=["m"], schemes=["dp", "accpar"])
        table.times = {"m": {"dp": 2.0, "accpar": 1.0}}

        class FakeRendered:
            def rendered(self):
                return f"rendered-{which}"

        monkeypatch.setattr(cli, "figure5_heterogeneous", lambda: table)
        monkeypatch.setattr(cli, "figure6_homogeneous", lambda: table)
        monkeypatch.setattr(cli, "figure7_alexnet_types", lambda: FakeRendered())
        monkeypatch.setattr(cli, "figure8_hierarchy_sweep", lambda: FakeRendered())

        assert main(["figure", "--which", which]) == 0
        out = capsys.readouterr().out
        assert out.strip()


class TestServiceCommands:
    def test_warm_then_serve_hits_cache(self, capsys, tmp_path, monkeypatch):
        import io

        cache_dir = str(tmp_path / "cache")
        code = main(["warm", "--models", "lenet,alexnet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32",
                     "--cache-dir", cache_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 on disk" in out

        request = json.dumps({"model": "lenet", "array": "tpu-v2:2,tpu-v3:2",
                              "batch": 32})
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        response = json.loads(out.splitlines()[0])
        assert response["ok"] and response["cache_hit"]
        assert response["source"] == "disk"

    def test_serve_without_persistence(self, capsys, monkeypatch):
        import io

        lines = "\n".join([
            json.dumps({"model": "lenet", "array": "tpu-v3:2", "batch": 32}),
            json.dumps({"model": "lenet", "array": "tpu-v3:2", "batch": 32}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        assert main(["serve", "--cache-dir", ""]) == 0
        first, second = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert not first["cache_hit"]
        assert second["cache_hit"] and second["source"] == "memory"

    def test_service_stats_reports_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["warm", "--models", "lenet", "--array", "tpu-v3:2",
              "--batch", "32", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["service-stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 plan(s)" in out
        assert "lenet" in out
        assert "last session" in out

    def test_service_stats_missing_dir(self, capsys, tmp_path):
        assert main(["service-stats", "--cache-dir",
                     str(tmp_path / "nope")]) == 0
        assert "no cache directory" in capsys.readouterr().out

    def test_warm_empty_models_errors(self, capsys):
        assert main(["warm", "--models", " , ", "--array", "tpu-v3:2"]) == 2


class TestCalibrateCommand:
    """The full CLI loop: simulate -> export -> calibrate -> replan."""

    def _export(self, tmp_path, capsys):
        telemetry_dir = str(tmp_path / "telemetry")
        export_path = str(tmp_path / "cal.json")
        assert main(["simulate", "--model", "alexnet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "64",
                     "--telemetry-dir", telemetry_dir]) == 0
        assert main(["telemetry", "export", "--calibration",
                     "--dir", telemetry_dir, "--out", export_path]) == 0
        capsys.readouterr()
        return export_path

    def test_calibrate_writes_profile(self, capsys, tmp_path):
        export_path = self._export(tmp_path, capsys)
        profile_path = str(tmp_path / "profile.json")
        assert main(["calibrate", export_path, "--out", profile_path]) == 0
        out = capsys.readouterr().out
        assert "written to" in out and "tpu-v2" in out and "tpu-v3" in out

        from repro.hardware.profile import load_profile
        profile = load_profile(profile_path)
        assert profile.spec_names() == ("tpu-v2", "tpu-v3")

    def test_replan_with_fitted_profile(self, capsys, tmp_path):
        export_path = self._export(tmp_path, capsys)
        profile_path = str(tmp_path / "profile.json")
        main(["calibrate", export_path, "--out", profile_path])
        capsys.readouterr()
        assert main(["plan", "--model", "alexnet",
                     "--array", "tpu-v2:2,tpu-v3:2",
                     "--profile", profile_path]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out and "calibrated: tpu-v2, tpu-v3" in out

    def test_missing_export_file(self, capsys, tmp_path):
        assert main(["calibrate", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "p.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_export_schema(self, capsys, tmp_path):
        export_path = tmp_path / "bad.json"
        export_path.write_text(json.dumps({"schema": "nope"}))
        assert main(["calibrate", str(export_path),
                     "--out", str(tmp_path / "p.json")]) == 1
        assert "calibration failed" in capsys.readouterr().err

    def test_profile_array_mismatch_is_clear_usage_error(self, capsys,
                                                         tmp_path):
        from repro.hardware.profile import (
            CalibratedProfile, SpecProfile, save_profile,
        )

        profile_path = str(tmp_path / "v3only.json")
        save_profile(CalibratedProfile(name="v3only", specs=(
            SpecProfile(spec="tpu-v3", compute_rates=(("default", 2e14),)),
        )), profile_path)
        code = main(["plan", "--model", "lenet",
                     "--array", "tpu-v2:2,tpu-v3:2",
                     "--profile", profile_path])
        assert code == 2
        err = capsys.readouterr().err
        assert "profile error" in err
        assert "tpu-v2" in err and "covered: tpu-v3" in err

    def test_analytic_profile_name_is_default(self, capsys):
        assert main(["plan", "--model", "lenet", "--array", "tpu-v3:2",
                     "--profile", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "profile:" not in out  # analytic IS the default; not echoed


class TestProfileCommand:
    def test_profile_prints_table_and_writes_trace(self, capsys, tmp_path):
        from repro.obs.export import REQUIRED_EVENT_KEYS
        from repro.obs.tracing import tracer

        trace = tmp_path / "trace.json"
        code = main(["profile", "lenet", "--array", "tpu-v2:2,tpu-v3:2",
                     "--batch", "32", "--out", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "planner profile (lenet)" in out
        assert "dp.stage" in out and "ratio.solve" in out
        assert "planner trace written" in out

        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert events
        for key in REQUIRED_EVENT_KEYS:
            assert all(key in event for event in events), key
        assert {e["name"] for e in events} >= {"hierarchy.plan", "dp.search"}
        # profiling must not leave the process-wide tracer enabled
        assert not tracer.enabled

    def test_profile_emits_both_traces(self, capsys, tmp_path):
        planner_trace = tmp_path / "planner.json"
        sim_trace = tmp_path / "sim.json"
        code = main(["profile", "lenet", "--array", "tpu-v3:4",
                     "--batch", "32", "--out", str(planner_trace),
                     "--sim-trace", str(sim_trace)])
        assert code == 0
        assert json.loads(planner_trace.read_text())["traceEvents"]
        assert json.loads(sim_trace.read_text())["traceEvents"]
        assert "simulated-iteration trace" in capsys.readouterr().out

    def test_simulate_trace_flag(self, capsys, tmp_path):
        trace = tmp_path / "sim.json"
        code = main(["simulate", "--model", "lenet", "--array", "tpu-v3:2",
                     "--batch", "32", "--trace", str(trace)])
        assert code == 0
        assert json.loads(trace.read_text())["traceEvents"]
        assert "critical-path trace" in capsys.readouterr().out


class TestServiceStatsFormats:
    def _warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["warm", "--models", "lenet", "--array", "tpu-v3:2",
              "--batch", "32", "--cache-dir", cache_dir])
        capsys.readouterr()
        return cache_dir

    def test_json_format(self, capsys, tmp_path):
        cache_dir = self._warm(tmp_path, capsys)
        assert main(["service-stats", "--cache-dir", cache_dir,
                     "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["metrics"]["counters"]["planner_runs"] >= 1
        assert "cache" in snapshot and "planner" in snapshot

    def test_prometheus_format(self, capsys, tmp_path):
        cache_dir = self._warm(tmp_path, capsys)
        assert main(["service-stats", "--cache-dir", cache_dir,
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in out
        assert "repro_service_planner_runs_total 1" in out
        # both former metric islands surface in one exposition
        assert "repro_planner_step_calls_total" in out
        assert "repro_cache_" in out

    def test_prometheus_without_snapshot_is_all_zero_defaults(
            self, capsys, tmp_path):
        assert main(["service-stats", "--cache-dir", str(tmp_path / "nope"),
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_service_requests_total 0" in out
        assert "repro_planner_step_calls_total 0" in out

    def test_format_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["service-stats", "--format", "xml"])


class TestBackendOption:
    def test_plan_with_greedy_backend(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        code = main(["plan", "--model", "lenet", "--array", "tpu-v2:2,tpu-v3:2",
                     "--batch", "32", "--backend", "greedy",
                     "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()

    def test_unknown_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
                  "--backend", "quantum"])

    def test_backend_changes_decisions(self, capsys, tmp_path):
        a = tmp_path / "dp.json"
        b = tmp_path / "greedy.json"
        common = ["--model", "alexnet", "--array", "tpu-v2:2,tpu-v3:2",
                  "--batch", "64"]
        main(["plan", *common, "--out", str(a)])
        main(["plan", *common, "--backend", "greedy", "--out", str(b)])
        capsys.readouterr()
        assert main(["plan-diff", str(a), str(b)]) == 1
        assert "difference" in capsys.readouterr().out


class TestPlanDiffCommand:
    def _plan(self, tmp_path, name, **extra):
        out_file = tmp_path / f"{name}.json"
        args = ["plan", "--model", "lenet", "--array", "tpu-v3:4",
                "--batch", "32", "--out", str(out_file)]
        for flag, value in extra.items():
            args += [f"--{flag}", value]
        assert main(args) == 0
        return out_file

    def test_identical_plans_exit_zero(self, capsys, tmp_path):
        a = self._plan(tmp_path, "a")
        b = self._plan(tmp_path, "b")
        capsys.readouterr()
        assert main(["plan-diff", str(a), str(b)]) == 0
        assert "identical decisions" in capsys.readouterr().out

    def test_differing_plans_exit_one_and_list_diffs(self, capsys, tmp_path):
        a = self._plan(tmp_path, "a")
        b = self._plan(tmp_path, "b", scheme="dp")
        capsys.readouterr()
        assert main(["plan-diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "[type]" in out or "[alpha]" in out

    def test_rel_tol_flag(self, capsys, tmp_path):
        a = self._plan(tmp_path, "a")
        b = self._plan(tmp_path, "b", scheme="dp")
        capsys.readouterr()
        # an absurdly loose tolerance silences alpha diffs but not type diffs;
        # the command still reports the decision-level verdict
        code = main(["plan-diff", str(a), str(b), "--rel-tol", "0.5"])
        assert code in (0, 1)


class TestTelemetryCommands:
    @pytest.fixture(autouse=True)
    def _no_process_writer(self):
        from repro.obs import telemetry as telemetry_store

        telemetry_store.uninstall()
        yield
        telemetry_store.uninstall()

    def _store(self, tmp_path):
        store = tmp_path / "telemetry"
        code = main(["simulate", "--model", "lenet", "--array",
                     "tpu-v2:2,tpu-v3:2", "--batch", "32",
                     "--telemetry-dir", str(store)])
        assert code == 0
        return store

    def test_simulate_writes_telemetry(self, capsys, tmp_path):
        store = self._store(tmp_path)
        capsys.readouterr()
        from repro.obs.telemetry import segment_paths

        assert segment_paths(store)

    def test_summary(self, capsys, tmp_path):
        store = self._store(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "summary", "--dir", str(store)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["events"] > 0
        assert document["by_type"]["op_timing"] > 0
        assert document["by_type"]["search"] == 1

    def test_tail_with_type_filter(self, capsys, tmp_path):
        store = self._store(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "tail", "--dir", str(store),
                     "-n", "3", "--type", "op_timing"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            assert json.loads(line)["type"] == "op_timing"

    def test_export_calibration(self, capsys, tmp_path):
        store = self._store(tmp_path)
        out_file = tmp_path / "calibration.json"
        capsys.readouterr()
        assert main(["telemetry", "export", "--calibration",
                     "--dir", str(store), "--out", str(out_file)]) == 0
        document = json.loads(out_file.read_text())
        assert document["schema"].startswith("repro.telemetry.calibration")
        # at least one per-op series per accelerator spec in the array
        for spec in ("tpu-v2", "tpu-v3"):
            assert document["hardware"].get(spec), spec

    def test_export_raw_events(self, capsys, tmp_path):
        store = self._store(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "export", "--dir", str(store)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["corrupt_lines"] == 0
        assert len(document["events"]) > 0

    def test_missing_dir_exits_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        assert main(["telemetry", "summary"]) == 2

    def test_env_var_is_the_default_dir(self, capsys, tmp_path, monkeypatch):
        store = self._store(tmp_path)
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(store))
        capsys.readouterr()
        assert main(["telemetry", "summary"]) == 0
        assert json.loads(capsys.readouterr().out)["events"] > 0


class TestTopDashboard:
    def _stats(self, requests=10):
        return {
            "frontend": {
                "metrics": {"counters": {"requests": requests,
                                         "failovers": 1}},
                "queue_depth": 0,
                "slo": {"attainment": 0.95, "objective": 0.9,
                        "latency_target_ms": 100.0,
                        "deadline_attainment": 1.0,
                        "error_budget_remaining": 0.5,
                        "burn_rate_fast": 0.5, "burn_rate_slow": 0.1},
                "health": {"shards": {"0": {"up": True}, "1": {"up": False}}},
                "tracer": {"spans_started": 5, "spans_dropped": 0,
                           "buffer_len": 2, "max_spans": 200000},
            },
            "shards": {
                "0": {"metrics": {
                    "counters": {"requests": requests, "hits_memory": 4},
                    "histograms": {"request_latency_s": {
                        "p50": 0.010, "p95": 0.050, "p99": 0.100}}},
                    "slo": {"burn_rate_fast": 0.25}},
                "1": None,
            },
        }

    def test_render_dashboard_contents(self):
        from repro.obs.top import render_dashboard

        text = render_dashboard(self._stats())
        assert "fleet slo" in text
        assert "attainment          95.0%" in text
        assert "burn rate           fast 0.50x / slow 0.10x" in text
        assert "DOWN" in text  # shard 1 is down
        assert "10.0" in text  # shard 0 p50 in ms

    def test_render_dashboard_qps_delta(self):
        from repro.obs.top import render_dashboard

        text = render_dashboard(self._stats(requests=30),
                                previous=self._stats(requests=10),
                                interval_s=2.0)
        assert "10.0" in text  # (30-10)/2 QPS

    def test_run_top_against_live_fleet(self, capsys):
        import io

        from repro.fleet import FleetFrontend, ShardSupervisor
        from repro.obs.top import run_top

        supervisor = ShardSupervisor(2, cache_dir=None, mode="thread")
        with supervisor:
            frontend = FleetFrontend(supervisor.handles, port=0)
            with frontend:
                buffer = io.StringIO()
                code = run_top(frontend.host, frontend.port,
                               interval_s=0.01, iterations=2, out=buffer)
        assert code == 0
        assert "repro top" in buffer.getvalue()
        assert "2 shard(s)" in buffer.getvalue()
