"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_array


class TestParseArray:
    def test_presets(self):
        assert parse_array("hetero").size == 256
        assert parse_array("homo").size == 128

    def test_explicit_spec(self):
        array = parse_array("tpu-v2:3,tpu-v3:5")
        assert dict(array.signature()) == {"tpu-v2": 3, "tpu-v3": 5}

    def test_unknown_accelerator(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_array("gpu:4")

    def test_bad_count(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_array("tpu-v2:lots")

    def test_missing_colon(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_array("tpu-v2")


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "lenet" in out and "resnet50" in out

    def test_describe(self, capsys):
        assert main(["describe", "--model", "lenet", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "cv1" in out and "weighted layers" in out

    def test_plan_prints_assignments(self, capsys):
        code = main(["plan", "--model", "lenet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha=" in out
        assert "hierarchy levels: 2" in out

    def test_plan_with_breakdown_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        code = main(["plan", "--model", "lenet",
                     "--array", "tpu-v3:4", "--batch", "32",
                     "--breakdown", "--out", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost breakdown" in out.lower()
        document = json.loads(out_file.read_text())
        assert document["network"] == "lenet"

    def test_simulate_from_plan_file(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
              "--batch", "32", "--out", str(out_file)])
        capsys.readouterr()
        assert main(["simulate", "--plan", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_simulate_inline(self, capsys):
        code = main(["simulate", "--model", "lenet", "--scheme", "dp",
                     "--array", "tpu-v2:2", "--batch", "32"])
        assert code == 0
        assert "lenet / dp" in capsys.readouterr().out

    def test_simulate_without_inputs_fails(self, capsys):
        assert main(["simulate"]) == 2

    def test_sweep(self, capsys):
        code = main(["sweep", "--models", "lenet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AccPar" in out and "geomean" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["fly"])

    def test_scheme_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "lenet", "--scheme", "magic"])


class TestValidateCommand:
    def test_valid_plan_passes(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
              "--batch", "32", "--out", str(out_file)])
        capsys.readouterr()
        assert main(["validate", "--plan", str(out_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_corrupted_plan_fails(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "plan.json"
        main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
              "--batch", "32", "--out", str(out_file)])
        document = json.loads(out_file.read_text())
        document["plan"]["entries"] = [
            e for e in document["plan"]["entries"] if e.get("layer") != "cv1"
        ]
        out_file.write_text(json.dumps(document))
        capsys.readouterr()
        assert main(["validate", "--plan", str(out_file)]) == 1
        assert "cv1" in capsys.readouterr().out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        code = main(["report", "--model", "lenet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# lenet" in out
        assert "Root-level plan" in out
        assert "Per-level communication" in out

    def test_report_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        code = main(["report", "--model", "lenet", "--array", "tpu-v3:4",
                     "--batch", "32", "--out", str(out_file)])
        assert code == 0
        assert "simulated iteration" in out_file.read_text()

    def test_report_with_what_if(self, capsys):
        code = main(["report", "--model", "lenet", "--array", "tpu-v3:4",
                     "--batch", "32", "--what-if"])
        assert code == 0
        assert "Layer-type sensitivity" in capsys.readouterr().out


class TestFigureCommand:
    @pytest.mark.parametrize("which", ["fig5", "fig6", "fig7", "fig8"])
    def test_figure_dispatch(self, which, capsys, monkeypatch):
        """The figure subcommand routes to the right generator (full-size
        generators are monkeypatched to keep the test fast)."""
        import repro.cli as cli
        from repro.experiments.harness import SpeedupTable

        table = SpeedupTable(models=["m"], schemes=["dp", "accpar"])
        table.times = {"m": {"dp": 2.0, "accpar": 1.0}}

        class FakeRendered:
            def rendered(self):
                return f"rendered-{which}"

        monkeypatch.setattr(cli, "figure5_heterogeneous", lambda: table)
        monkeypatch.setattr(cli, "figure6_homogeneous", lambda: table)
        monkeypatch.setattr(cli, "figure7_alexnet_types", lambda: FakeRendered())
        monkeypatch.setattr(cli, "figure8_hierarchy_sweep", lambda: FakeRendered())

        assert main(["figure", "--which", which]) == 0
        out = capsys.readouterr().out
        assert out.strip()


class TestServiceCommands:
    def test_warm_then_serve_hits_cache(self, capsys, tmp_path, monkeypatch):
        import io

        cache_dir = str(tmp_path / "cache")
        code = main(["warm", "--models", "lenet,alexnet",
                     "--array", "tpu-v2:2,tpu-v3:2", "--batch", "32",
                     "--cache-dir", cache_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 on disk" in out

        request = json.dumps({"model": "lenet", "array": "tpu-v2:2,tpu-v3:2",
                              "batch": 32})
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        response = json.loads(out.splitlines()[0])
        assert response["ok"] and response["cache_hit"]
        assert response["source"] == "disk"

    def test_serve_without_persistence(self, capsys, monkeypatch):
        import io

        lines = "\n".join([
            json.dumps({"model": "lenet", "array": "tpu-v3:2", "batch": 32}),
            json.dumps({"model": "lenet", "array": "tpu-v3:2", "batch": 32}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        assert main(["serve", "--cache-dir", ""]) == 0
        first, second = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert not first["cache_hit"]
        assert second["cache_hit"] and second["source"] == "memory"

    def test_service_stats_reports_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["warm", "--models", "lenet", "--array", "tpu-v3:2",
              "--batch", "32", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["service-stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "1 plan(s)" in out
        assert "lenet" in out
        assert "last session" in out

    def test_service_stats_missing_dir(self, capsys, tmp_path):
        assert main(["service-stats", "--cache-dir",
                     str(tmp_path / "nope")]) == 0
        assert "no cache directory" in capsys.readouterr().out

    def test_warm_empty_models_errors(self, capsys):
        assert main(["warm", "--models", " , ", "--array", "tpu-v3:2"]) == 2


class TestProfileCommand:
    def test_profile_prints_table_and_writes_trace(self, capsys, tmp_path):
        from repro.obs.export import REQUIRED_EVENT_KEYS
        from repro.obs.tracing import tracer

        trace = tmp_path / "trace.json"
        code = main(["profile", "lenet", "--array", "tpu-v2:2,tpu-v3:2",
                     "--batch", "32", "--out", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "planner profile (lenet)" in out
        assert "dp.stage" in out and "ratio.solve" in out
        assert "planner trace written" in out

        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert events
        for key in REQUIRED_EVENT_KEYS:
            assert all(key in event for event in events), key
        assert {e["name"] for e in events} >= {"hierarchy.plan", "dp.search"}
        # profiling must not leave the process-wide tracer enabled
        assert not tracer.enabled

    def test_profile_emits_both_traces(self, capsys, tmp_path):
        planner_trace = tmp_path / "planner.json"
        sim_trace = tmp_path / "sim.json"
        code = main(["profile", "lenet", "--array", "tpu-v3:4",
                     "--batch", "32", "--out", str(planner_trace),
                     "--sim-trace", str(sim_trace)])
        assert code == 0
        assert json.loads(planner_trace.read_text())["traceEvents"]
        assert json.loads(sim_trace.read_text())["traceEvents"]
        assert "simulated-iteration trace" in capsys.readouterr().out

    def test_simulate_trace_flag(self, capsys, tmp_path):
        trace = tmp_path / "sim.json"
        code = main(["simulate", "--model", "lenet", "--array", "tpu-v3:2",
                     "--batch", "32", "--trace", str(trace)])
        assert code == 0
        assert json.loads(trace.read_text())["traceEvents"]
        assert "critical-path trace" in capsys.readouterr().out


class TestServiceStatsFormats:
    def _warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["warm", "--models", "lenet", "--array", "tpu-v3:2",
              "--batch", "32", "--cache-dir", cache_dir])
        capsys.readouterr()
        return cache_dir

    def test_json_format(self, capsys, tmp_path):
        cache_dir = self._warm(tmp_path, capsys)
        assert main(["service-stats", "--cache-dir", cache_dir,
                     "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["metrics"]["counters"]["planner_runs"] >= 1
        assert "cache" in snapshot and "planner" in snapshot

    def test_prometheus_format(self, capsys, tmp_path):
        cache_dir = self._warm(tmp_path, capsys)
        assert main(["service-stats", "--cache-dir", cache_dir,
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in out
        assert "repro_service_planner_runs_total 1" in out
        # both former metric islands surface in one exposition
        assert "repro_planner_step_calls_total" in out
        assert "repro_cache_" in out

    def test_prometheus_without_snapshot_is_all_zero_defaults(
            self, capsys, tmp_path):
        assert main(["service-stats", "--cache-dir", str(tmp_path / "nope"),
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_service_requests_total 0" in out
        assert "repro_planner_step_calls_total 0" in out

    def test_format_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["service-stats", "--format", "xml"])


class TestBackendOption:
    def test_plan_with_greedy_backend(self, capsys, tmp_path):
        out_file = tmp_path / "plan.json"
        code = main(["plan", "--model", "lenet", "--array", "tpu-v2:2,tpu-v3:2",
                     "--batch", "32", "--backend", "greedy",
                     "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()

    def test_unknown_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["plan", "--model", "lenet", "--array", "tpu-v3:4",
                  "--backend", "quantum"])

    def test_backend_changes_decisions(self, capsys, tmp_path):
        a = tmp_path / "dp.json"
        b = tmp_path / "greedy.json"
        common = ["--model", "alexnet", "--array", "tpu-v2:2,tpu-v3:2",
                  "--batch", "64"]
        main(["plan", *common, "--out", str(a)])
        main(["plan", *common, "--backend", "greedy", "--out", str(b)])
        capsys.readouterr()
        assert main(["plan-diff", str(a), str(b)]) == 1
        assert "difference" in capsys.readouterr().out


class TestPlanDiffCommand:
    def _plan(self, tmp_path, name, **extra):
        out_file = tmp_path / f"{name}.json"
        args = ["plan", "--model", "lenet", "--array", "tpu-v3:4",
                "--batch", "32", "--out", str(out_file)]
        for flag, value in extra.items():
            args += [f"--{flag}", value]
        assert main(args) == 0
        return out_file

    def test_identical_plans_exit_zero(self, capsys, tmp_path):
        a = self._plan(tmp_path, "a")
        b = self._plan(tmp_path, "b")
        capsys.readouterr()
        assert main(["plan-diff", str(a), str(b)]) == 0
        assert "identical decisions" in capsys.readouterr().out

    def test_differing_plans_exit_one_and_list_diffs(self, capsys, tmp_path):
        a = self._plan(tmp_path, "a")
        b = self._plan(tmp_path, "b", scheme="dp")
        capsys.readouterr()
        assert main(["plan-diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "[type]" in out or "[alpha]" in out

    def test_rel_tol_flag(self, capsys, tmp_path):
        a = self._plan(tmp_path, "a")
        b = self._plan(tmp_path, "b", scheme="dp")
        capsys.readouterr()
        # an absurdly loose tolerance silences alpha diffs but not type diffs;
        # the command still reports the decision-level verdict
        code = main(["plan-diff", str(a), str(b), "--rel-tol", "0.5"])
        assert code in (0, 1)
