"""Unit tests for the plan evaluator (the simulator's top level)."""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.hardware import (
    TPU_V2,
    TPU_V3,
    heterogeneous_array,
    homogeneous_array,
    make_group,
)
from repro.models import build_model
from repro.sim.engine import EngineConfig
from repro.sim.executor import evaluate


def plan(model="lenet", scheme="accpar", array=None, batch=64, levels=None):
    array = array if array is not None else homogeneous_array(4)
    return Planner(array, get_scheme(scheme), levels=levels).plan(
        build_model(model), batch
    )


class TestEvaluate:
    def test_report_structure(self):
        report = evaluate(plan())
        assert report.total_time > 0.0
        assert report.leaf_time > 0.0
        assert report.comm_time >= 0.0
        assert report.total_time == pytest.approx(
            report.leaf_time + report.comm_time
        )
        assert len(report.levels) == 2  # 4 accelerators -> 2 levels

    def test_throughput(self):
        report = evaluate(plan(batch=64))
        assert report.throughput == pytest.approx(64 / report.total_time)

    def test_levels_ordered_root_first(self):
        report = evaluate(plan(array=homogeneous_array(8)))
        assert [lv.level for lv in report.levels] == [1, 2, 3]

    def test_single_accelerator_has_no_comm(self):
        report = evaluate(plan(array=homogeneous_array(1)))
        assert report.comm_time == 0.0
        assert report.levels == []

    def test_memory_report_present(self):
        report = evaluate(plan())
        assert report.memory_worst is not None
        assert report.fits_memory

    def test_dp_level_bytes_equal_full_weights(self):
        """Pure data parallelism exchanges the full (unsharded) gradient
        tensor at every level — Table 4's Type-I row."""
        planned = plan(model="alexnet", scheme="dp", array=homogeneous_array(4))
        report = evaluate(planned)
        weights = sum(
            w.weight.size for w in build_model("alexnet").workloads(64)
        )
        expected = weights * 2  # bfloat16 bytes
        for lv in report.levels:
            assert lv.net_bytes_left == pytest.approx(expected, rel=0.01)
            assert lv.net_bytes_right == pytest.approx(expected, rel=0.01)

    def test_more_accelerators_do_not_slow_training(self):
        small = evaluate(plan(model="vgg11", array=homogeneous_array(2), batch=128))
        large = evaluate(plan(model="vgg11", array=homogeneous_array(8), batch=128))
        assert large.leaf_time < small.leaf_time

    def test_deterministic(self):
        a = evaluate(plan(model="resnet18"))
        b = evaluate(plan(model="resnet18"))
        assert a.total_time == pytest.approx(b.total_time)

    def test_custom_engine_config(self):
        planned = plan(model="alexnet")
        overlapped = evaluate(planned, EngineConfig(overlap_compute_memory=True))
        serialized = evaluate(planned, EngineConfig(overlap_compute_memory=False))
        assert serialized.total_time >= overlapped.total_time

    def test_hypar_plans_evaluate_on_multipath_networks(self):
        """HyPar records no join states; the evaluator must still work."""
        report = evaluate(plan(model="resnet18", scheme="hypar"))
        assert report.total_time > 0.0

    @pytest.mark.parametrize("scheme", ["dp", "owt", "hypar", "accpar"])
    def test_all_schemes_on_heterogeneous_array(self, scheme):
        report = evaluate(plan(scheme=scheme, array=heterogeneous_array(2, 2)))
        assert report.total_time > 0.0


class TestSimulatorIndependence:
    def test_balanced_ratio_beats_equal_on_hetero_compute(self):
        """The simulator (not the planner's own objective) must show the
        flexible-ratio benefit on a compute-heavy workload."""
        array = heterogeneous_array(2, 2)
        accpar = evaluate(plan(model="vgg11", scheme="accpar", array=array,
                               batch=256))
        dp = evaluate(plan(model="vgg11", scheme="dp", array=array, batch=256))
        assert accpar.total_time < dp.total_time
