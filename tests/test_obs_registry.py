"""Unified metrics registry: histograms, counters, shims, Prometheus text."""

import random
import re

import pytest

import repro.core.counters as counters_shim
import repro.service.metrics as metrics_shim
from repro.obs.registry import (
    PLANNER_COUNTER_NAMES,
    SERVICE_COUNTER_NAMES,
    SERVICE_HISTOGRAM_NAMES,
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    PerfCounters,
    planner_counters,
    render_prometheus,
)

#: a non-comment exposition line: metric name, optional {labels}, a value
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?\d+(\.\d+)?([eE][-+]?\d+)?|NaN)$"
)


def assert_valid_exposition(text):
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), line


class TestLatencyHistogramEdges:
    def test_empty_reservoir(self):
        hist = LatencyHistogram("empty")
        assert hist.count == 0
        assert hist.total == 0.0
        assert hist.percentile(50) is None
        assert hist.summary() == {
            "count": 0, "mean": None, "p50": None, "p95": None, "p99": None,
        }

    def test_single_sample_is_every_percentile(self):
        hist = LatencyHistogram("one")
        hist.observe(0.25)
        for p in (1, 50, 95, 99, 100):
            assert hist.percentile(p) == 0.25
        assert hist.summary()["mean"] == 0.25

    def test_window_eviction_biases_toward_recent(self):
        """count/total are lifetime; percentiles see only the last `window`."""
        hist = LatencyHistogram("windowed", window=4)
        for value in range(1, 9):
            hist.observe(float(value))
        assert hist.count == 8
        assert hist.total == 36.0
        # reservoir is now [5, 6, 7, 8]: old samples can no longer drag
        # percentiles down
        assert hist.percentile(50) == 6.0
        assert hist.percentile(99) == 8.0
        assert hist.percentile(1) == 5.0

    def test_exact_rank_percentiles_match_sorted_reference(self):
        samples = [float(v) for v in range(1, 101)]
        random.Random(20200229).shuffle(samples)
        hist = LatencyHistogram("ranked", window=256)
        for value in samples:
            hist.observe(value)
        ordered = sorted(samples)
        for p in (50, 95, 99):
            rank = max(1, round(p / 100 * len(ordered)))
            assert hist.percentile(p) == ordered[rank - 1], p
        # nearest-rank on 100 evenly spread samples lands exactly on the
        # value at that rank
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(99) == 99.0

    def test_invalid_arguments(self):
        hist = LatencyHistogram("strict")
        with pytest.raises(ValueError):
            hist.observe(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            LatencyHistogram("bad", window=0)


class TestCountersAndRegistry:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registry_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.value("never_touched") == 0

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.histogram("request_latency_s").observe(0.010)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["histograms"]["request_latency_s"]["count"] == 1
        text = registry.render()
        assert "requests" in text and "count=1" in text

    def test_gauges_are_labeled_and_settable(self):
        registry = MetricsRegistry()
        up0 = registry.gauge("shard_up", shard="0")
        assert registry.gauge("shard_up", shard="0") is up0
        assert registry.gauge("shard_up", shard="1") is not up0
        up0.set(1)
        registry.gauge("shard_up", shard="1").set(0)
        assert registry.gauge_value("shard_up", shard="0") == 1
        assert registry.gauge_value("shard_up", shard="1") == 0
        up0.dec()
        assert registry.gauge_value("shard_up", shard="0") == 0
        up0.inc(2)
        assert registry.gauge_value("shard_up", shard="0") == 2

    def test_gauges_appear_in_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.gauge("shard_up", shard="0").set(1)
        snap = registry.snapshot()
        assert {"name": "shard_up", "labels": {"shard": "0"},
                "value": 1} in snap["gauges"]
        assert "shard_up" in registry.render()
        # back-compat: a gauge-free registry keeps the old snapshot shape
        assert "gauges" not in MetricsRegistry().snapshot()

    def test_gauges_render_as_prometheus_gauge_series(self):
        registry = MetricsRegistry()
        registry.gauge("shard_up", shard="0").set(1)
        registry.gauge("shard_up", shard="1").set(0)
        text = registry.render_prometheus()
        assert_valid_exposition(text)
        assert "# TYPE repro_fleet_shard_up gauge" in text
        assert 'repro_fleet_shard_up{shard="0"} 1' in text
        assert 'repro_fleet_shard_up{shard="1"} 0' in text

    def test_perf_counters_merge_and_reset(self):
        perf = PerfCounters()
        perf.inc("step_calls", 2)
        perf.merge({"step_calls": 3, "ratio_solves": 7, "zero": 0})
        assert perf.value("step_calls") == 5
        assert perf.snapshot() == {"ratio_solves": 7, "step_calls": 5}
        with pytest.raises(ValueError):
            perf.inc("step_calls", -1)
        perf.reset()
        assert perf.snapshot() == {}


class TestImportShims:
    """Historical import paths must resolve to the unified objects."""

    def test_service_metrics_shim(self):
        assert metrics_shim.Counter is Counter
        assert metrics_shim.LatencyHistogram is LatencyHistogram
        assert metrics_shim.MetricsRegistry is MetricsRegistry

    def test_core_counters_shim(self):
        assert counters_shim.PerfCounters is PerfCounters
        assert counters_shim.planner_counters is planner_counters


class TestPrometheusRendering:
    def test_empty_snapshot_emits_canonical_series(self):
        text = render_prometheus({})
        assert_valid_exposition(text)
        for name in SERVICE_COUNTER_NAMES:
            assert f"repro_service_{name}_total 0" in text
        for name in PLANNER_COUNTER_NAMES:
            assert f"repro_planner_{name}_total 0" in text
        # histogram families appear even with zero observations
        assert "repro_service_request_latency_seconds_count 0" in text
        assert "repro_service_exact_plan_seconds_count 0" in text

    def test_both_former_metric_islands_present(self):
        """The families that used to live in service.metrics and
        core.counters both appear in one exposition."""
        text = render_prometheus({})
        assert "repro_service_requests_total" in text      # ex service.metrics
        assert "repro_planner_step_calls_total" in text    # ex core.counters

    def test_full_snapshot_values(self):
        snapshot = {
            "metrics": {
                "counters": {"requests": 12, "misses": 4},
                "histograms": {
                    "request_latency_s": {
                        "count": 2, "mean": 0.05,
                        "p50": 0.04, "p95": 0.06, "p99": 0.06,
                    },
                },
            },
            "cache": {"memory_entries": 3, "capacity": 128},
            "planner": {"step_calls": 99},
        }
        text = render_prometheus(snapshot)
        assert_valid_exposition(text)
        assert "repro_service_requests_total 12" in text
        assert "repro_service_misses_total 4" in text
        assert 'repro_service_request_latency_seconds{quantile="0.5"} 0.04' in text
        assert "repro_service_request_latency_seconds_sum 0.1" in text
        assert "repro_service_request_latency_seconds_count 2" in text
        assert "repro_cache_memory_entries 3" in text
        assert "repro_planner_step_calls_total 99" in text
        # unobserved planner series still present, zeroed
        assert "repro_planner_ratio_solves_total 0" in text

    def test_type_lines_precede_samples(self):
        text = render_prometheus({})
        lines = text.rstrip("\n").splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split()[2]
                assert lines[index + 1].startswith(family), line

    def test_registry_render_prometheus_is_partial(self):
        """MetricsRegistry.render_prometheus shows only recorded series."""
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        text = registry.render_prometheus()
        assert_valid_exposition(text)
        assert "repro_service_requests_total 1" in text
        assert "repro_planner_step_calls_total" not in text

    def test_histogram_names_are_canonical(self):
        assert SERVICE_HISTOGRAM_NAMES == ("request_latency_s", "exact_plan_s")
