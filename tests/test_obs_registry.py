"""Unified metrics registry: histograms, counters, shims, Prometheus text."""

import random
import re

import pytest

import repro.core.counters as counters_shim
import repro.service.metrics as metrics_shim
from repro.obs.registry import (
    PLANNER_COUNTER_NAMES,
    SERVICE_COUNTER_NAMES,
    SERVICE_HISTOGRAM_NAMES,
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    PerfCounters,
    planner_counters,
    render_prometheus,
)

#: a non-comment exposition line: metric name, optional {labels}, a value
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?\d+(\.\d+)?([eE][-+]?\d+)?|NaN)$"
)


def assert_valid_exposition(text):
    assert text.endswith("\n")
    for line in text.rstrip("\n").splitlines():
        if line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), line


class TestLatencyHistogramEdges:
    def test_empty_reservoir(self):
        hist = LatencyHistogram("empty")
        assert hist.count == 0
        assert hist.total == 0.0
        assert hist.percentile(50) is None
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["p50"] is None
        assert summary["p95"] is None
        assert summary["p99"] is None
        assert summary["total"] == 0.0
        assert sum(summary["buckets"]["counts"]) == 0

    def test_single_sample_is_every_percentile(self):
        hist = LatencyHistogram("one")
        hist.observe(0.25)
        for p in (1, 50, 95, 99, 100):
            assert hist.percentile(p) == 0.25
        assert hist.summary()["mean"] == 0.25

    def test_window_eviction_biases_toward_recent(self):
        """count/total are lifetime; percentiles see only the last `window`."""
        hist = LatencyHistogram("windowed", window=4)
        for value in range(1, 9):
            hist.observe(float(value))
        assert hist.count == 8
        assert hist.total == 36.0
        # reservoir is now [5, 6, 7, 8]: old samples can no longer drag
        # percentiles down
        assert hist.percentile(50) == 6.0
        assert hist.percentile(99) == 8.0
        assert hist.percentile(1) == 5.0

    def test_exact_rank_percentiles_match_sorted_reference(self):
        samples = [float(v) for v in range(1, 101)]
        random.Random(20200229).shuffle(samples)
        hist = LatencyHistogram("ranked", window=256)
        for value in samples:
            hist.observe(value)
        ordered = sorted(samples)
        for p in (50, 95, 99):
            rank = max(1, round(p / 100 * len(ordered)))
            assert hist.percentile(p) == ordered[rank - 1], p
        # nearest-rank on 100 evenly spread samples lands exactly on the
        # value at that rank
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(99) == 99.0

    def test_reservoir_wraparound_summary_stays_consistent(self):
        """After far more observations than the window, lifetime stats
        (count/total/mean/buckets) must still cover every sample while
        percentiles reflect only the reservoir."""
        window = 16
        hist = LatencyHistogram("wrapped", window=window)
        n = window * 10
        for value in range(1, n + 1):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == n
        assert summary["total"] == n * (n + 1) / 2
        assert summary["mean"] == pytest.approx((n + 1) / 2)
        # log-spaced buckets are lifetime too: every sample landed somewhere
        assert sum(summary["buckets"]["counts"]) == n
        # the reservoir holds exactly the last `window` samples
        assert hist.percentile(1) == float(n - window + 1)
        assert hist.percentile(100) == float(n)
        assert summary["p50"] == hist.percentile(50)

    def test_wraparound_bucket_counts_monotone_cumulative(self):
        hist = LatencyHistogram("wrapcum", window=8)
        for value in [0.0002, 0.003, 0.04, 0.5, 6.0] * 20:
            hist.observe(value)
        counts = hist.buckets()["counts"]
        assert sum(counts) == 100
        cumulative = 0
        for count in counts:
            assert count >= 0
            cumulative += count
        assert cumulative == hist.count

    def test_invalid_arguments(self):
        hist = LatencyHistogram("strict")
        with pytest.raises(ValueError):
            hist.observe(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            LatencyHistogram("bad", window=0)


class TestCountersAndRegistry:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registry_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.value("never_touched") == 0

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.histogram("request_latency_s").observe(0.010)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["histograms"]["request_latency_s"]["count"] == 1
        text = registry.render()
        assert "requests" in text and "count=1" in text

    def test_gauges_are_labeled_and_settable(self):
        registry = MetricsRegistry()
        up0 = registry.gauge("shard_up", shard="0")
        assert registry.gauge("shard_up", shard="0") is up0
        assert registry.gauge("shard_up", shard="1") is not up0
        up0.set(1)
        registry.gauge("shard_up", shard="1").set(0)
        assert registry.gauge_value("shard_up", shard="0") == 1
        assert registry.gauge_value("shard_up", shard="1") == 0
        up0.dec()
        assert registry.gauge_value("shard_up", shard="0") == 0
        up0.inc(2)
        assert registry.gauge_value("shard_up", shard="0") == 2

    def test_gauges_appear_in_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.gauge("shard_up", shard="0").set(1)
        snap = registry.snapshot()
        assert {"name": "shard_up", "labels": {"shard": "0"},
                "value": 1} in snap["gauges"]
        assert "shard_up" in registry.render()
        # back-compat: a gauge-free registry keeps the old snapshot shape
        assert "gauges" not in MetricsRegistry().snapshot()

    def test_gauges_render_as_prometheus_gauge_series(self):
        registry = MetricsRegistry()
        registry.gauge("shard_up", shard="0").set(1)
        registry.gauge("shard_up", shard="1").set(0)
        text = registry.render_prometheus()
        assert_valid_exposition(text)
        assert "# TYPE repro_fleet_shard_up gauge" in text
        assert 'repro_fleet_shard_up{shard="0"} 1' in text
        assert 'repro_fleet_shard_up{shard="1"} 0' in text

    def test_perf_counters_merge_and_reset(self):
        perf = PerfCounters()
        perf.inc("step_calls", 2)
        perf.merge({"step_calls": 3, "ratio_solves": 7, "zero": 0})
        assert perf.value("step_calls") == 5
        assert perf.snapshot() == {"ratio_solves": 7, "step_calls": 5}
        with pytest.raises(ValueError):
            perf.inc("step_calls", -1)
        perf.reset()
        assert perf.snapshot() == {}


class TestImportShims:
    """Historical import paths must resolve to the unified objects."""

    def test_service_metrics_shim(self):
        assert metrics_shim.Counter is Counter
        assert metrics_shim.LatencyHistogram is LatencyHistogram
        assert metrics_shim.MetricsRegistry is MetricsRegistry

    def test_core_counters_shim(self):
        assert counters_shim.PerfCounters is PerfCounters
        assert counters_shim.planner_counters is planner_counters


class TestPrometheusRendering:
    def test_empty_snapshot_emits_canonical_series(self):
        text = render_prometheus({})
        assert_valid_exposition(text)
        for name in SERVICE_COUNTER_NAMES:
            assert f"repro_service_{name}_total 0" in text
        for name in PLANNER_COUNTER_NAMES:
            assert f"repro_planner_{name}_total 0" in text
        # histogram families appear even with zero observations
        assert "repro_service_request_latency_seconds_count 0" in text
        assert "repro_service_exact_plan_seconds_count 0" in text

    def test_both_former_metric_islands_present(self):
        """The families that used to live in service.metrics and
        core.counters both appear in one exposition."""
        text = render_prometheus({})
        assert "repro_service_requests_total" in text      # ex service.metrics
        assert "repro_planner_step_calls_total" in text    # ex core.counters

    def test_full_snapshot_values(self):
        snapshot = {
            "metrics": {
                "counters": {"requests": 12, "misses": 4},
                "histograms": {
                    "request_latency_s": {
                        "count": 2, "mean": 0.05,
                        "p50": 0.04, "p95": 0.06, "p99": 0.06,
                    },
                },
            },
            "cache": {"memory_entries": 3, "capacity": 128},
            "planner": {"step_calls": 99},
        }
        text = render_prometheus(snapshot)
        assert_valid_exposition(text)
        assert "repro_service_requests_total 12" in text
        assert "repro_service_misses_total 4" in text
        assert 'repro_service_request_latency_seconds{quantile="0.5"} 0.04' in text
        assert "repro_service_request_latency_seconds_sum 0.1" in text
        assert "repro_service_request_latency_seconds_count 2" in text
        assert "repro_cache_memory_entries 3" in text
        assert "repro_planner_step_calls_total 99" in text
        # unobserved planner series still present, zeroed
        assert "repro_planner_ratio_solves_total 0" in text

    def test_type_lines_precede_samples(self):
        text = render_prometheus({})
        lines = text.rstrip("\n").splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split()[2]
                assert lines[index + 1].startswith(family), line

    def test_registry_render_prometheus_is_partial(self):
        """MetricsRegistry.render_prometheus shows only recorded series."""
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        text = registry.render_prometheus()
        assert_valid_exposition(text)
        assert "repro_service_requests_total 1" in text
        assert "repro_planner_step_calls_total" not in text

    def test_histogram_names_are_canonical(self):
        assert SERVICE_HISTOGRAM_NAMES == ("request_latency_s", "exact_plan_s")


class TestLabelValueEscaping:
    """Prometheus label values must escape backslash, quote and newline."""

    def _series_line(self, text, name):
        for line in text.splitlines():
            if line.startswith(name) and not line.startswith("# "):
                return line
        raise AssertionError(f"{name} not rendered:\n{text}")

    _SNAPSHOT = {"metrics": {"counters": {"requests": 1}}}

    def test_quote_in_label_value(self):
        text = render_prometheus(self._SNAPSHOT, include_defaults=False,
                                 labels={"shard": 'say "hi"'})
        line = self._series_line(text, "repro_service_requests_total")
        assert r'shard="say \"hi\""' in line

    def test_backslash_in_label_value(self):
        text = render_prometheus(self._SNAPSHOT, include_defaults=False,
                                 labels={"shard": "a\\b"})
        line = self._series_line(text, "repro_service_requests_total")
        assert r'shard="a\\b"' in line

    def test_newline_in_label_value(self):
        text = render_prometheus(self._SNAPSHOT, include_defaults=False,
                                 labels={"shard": "a\nb"})
        line = self._series_line(text, "repro_service_requests_total")
        assert r'shard="a\nb"' in line
        # the exposition stays one sample per line
        assert "\na" not in line

    def test_gauge_labels_escaped_too(self):
        registry = MetricsRegistry()
        registry.gauge("shard_up", shard='s"0"').set(1)
        text = registry.render_prometheus()
        assert r'repro_fleet_shard_up{shard="s\"0\""} 1' in text
