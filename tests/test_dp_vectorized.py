"""Equivalence and property tests for the vectorized DP backend.

The contract under test: :func:`repro.core.dp_vectorized.search_stages_vectorized`
is *bit-identical* to the scalar :func:`repro.core.dp_search.search_stages` —
same typed entries in the same order, the same float cost, the same exit
state — across randomized series-parallel workloads (including nested
fork-in-path regions and per-layer space restrictions), every cost-model
configuration, and the degenerate corners.  The shared tie-break rule in
:mod:`repro.core.tiebreak` gets its own property test: the masked argmin
must agree with a literal first-seen-wins scalar scan.
"""

import random

import numpy as np
import pytest

from repro.core.cost_model import PairCostModel
from repro.core.dp_search import search_stages
from repro.core.dp_vectorized import (
    clear_pack_caches,
    search_stages_vectorized,
)
from repro.core.stages import (
    ShardedLayerStage,
    ShardedParallelStage,
    iter_sharded_workloads,
)
from repro.core.tiebreak import (
    COST_REL_TOL,
    UNREACHABLE,
    improves,
    masked_first_within_slack,
)
from repro.core.types import ALL_TYPES, HYPAR_TYPES, PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.hardware.profile import CalibratedProfile, SpecProfile

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

#: per-layer restrictions the generator draws from (never empty)
_RESTRICTIONS = (
    ALL_TYPES,
    HYPAR_TYPES,
    (I,),
    (II,),
    (III,),
    (I, III),
    (II, III),
)


def fc_layer(name, batch, d_in, d_out, fracs=(1.0, 1.0, 1.0)):
    w = LayerWorkload(name, batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    return ShardedLayerStage(ShardedWorkload(w, *fracs))


def conv_layer(name, batch, d_in, d_out, hw, k, fracs=(1.0, 1.0, 1.0)):
    w = LayerWorkload(name, batch, d_in, d_out, (hw, hw), (hw, hw), (k, k), True)
    return ShardedLayerStage(ShardedWorkload(w, *fracs))


class _StageGen:
    """Seeded random series-parallel stage lists (unique layer names)."""

    def __init__(self, rng):
        self.rng = rng
        self.counter = 0

    def layer(self):
        rng = self.rng
        self.counter += 1
        name = f"l{self.counter}"
        batch = rng.choice((8, 16, 64, 256))
        d_in = rng.choice((3, 16, 64, 512))
        d_out = rng.choice((10, 32, 128, 1024))
        fracs = tuple(rng.choice((1.0, 0.5, 0.25, 0.7)) for _ in range(3))
        if rng.random() < 0.5:
            return conv_layer(name, batch, d_in, d_out,
                              rng.choice((4, 7, 14)), rng.choice((1, 3)),
                              fracs)
        return fc_layer(name, batch, d_in, d_out, fracs)

    def chain(self, max_len, depth):
        n = self.rng.randint(1, max_len)
        out = []
        for _ in range(n):
            if depth < 2 and self.rng.random() < 0.3:
                out.append(self.parallel(depth))
            else:
                out.append(self.layer())
        return out

    def parallel(self, depth):
        rng = self.rng
        self.counter += 1
        name = f"fork{self.counter}"
        n_paths = rng.randint(2, 3)
        # at most one identity-skip path, never all of them
        skip_at = rng.randrange(n_paths) if rng.random() < 0.4 else -1
        paths = tuple(
            () if p == skip_at else tuple(self.chain(3, depth + 1))
            for p in range(n_paths)
        )
        if not any(paths):  # all paths rolled empty: force one layer
            paths = ((self.layer(),),) + paths[1:]
        return ShardedParallelStage(paths=paths, name=name)


def random_model(rng):
    lhs = make_group(rng.choice((TPU_V2, TPU_V3)), rng.choice((1, 2, 4)))
    rhs = make_group(rng.choice((TPU_V2, TPU_V3)), rng.choice((1, 2, 8)))
    mode = rng.choice(("balanced", "proportional", "equal", "comm-volume"))
    return PairCostModel(
        lhs, rhs,
        dtype_bytes=rng.choice((1, 2, 4)),
        ratio_mode=mode,
        closed_form=rng.random() < 0.5,
        memoize=rng.random() < 0.5,
    )


def random_profile(rng):
    """A random calibrated profile covering both spec generations."""
    def spec_profile(spec):
        rates = [("default", spec.flops * rng.uniform(0.3, 0.9))]
        if rng.random() < 0.8:
            rates.append(("conv", spec.flops * rng.uniform(0.3, 0.9)))
        if rng.random() < 0.8:
            rates.append(("fc", spec.flops * rng.uniform(0.2, 0.8)))
        curve = ()
        if rng.random() < 0.8:
            sizes = sorted({rng.choice((1e3, 1e4, 1e5, 1e6, 1e7))
                            for _ in range(rng.choice((1, 2, 3)))})
            curve = tuple((s, rng.uniform(0.2, 1.0)) for s in sizes)
        return SpecProfile(
            spec=spec.name,
            compute_rates=tuple(rates),
            bandwidth_efficiency=curve,
            transfer_latency_s=rng.choice((0.0, 5e-6, 2e-5)),
        )

    return CalibratedProfile(
        name=f"rand-{rng.randint(0, 1 << 30)}",
        specs=(spec_profile(TPU_V2), spec_profile(TPU_V3)),
    )


def random_calibrated_model(rng):
    lhs = make_group(rng.choice((TPU_V2, TPU_V3)), rng.choice((1, 2, 4)))
    rhs = make_group(rng.choice((TPU_V2, TPU_V3)), rng.choice((1, 2, 8)))
    mode = rng.choice(("balanced", "proportional", "equal"))
    return PairCostModel(
        lhs, rhs,
        dtype_bytes=rng.choice((1, 2, 4)),
        ratio_mode=mode,
        closed_form=rng.random() < 0.5,
        memoize=rng.random() < 0.5,
        profile=random_profile(rng),
    )


def assert_same_search(stages, model_a, model_b, space=ALL_TYPES, space_fn=None):
    scalar = search_stages(stages, model_a, space, space_fn=space_fn)
    vector = search_stages_vectorized(stages, model_b, space, space_fn=space_fn)
    assert vector.entries == scalar.entries
    assert vector.cost == scalar.cost          # bitwise, not approx
    assert vector.exit_state == scalar.exit_state


class TestRandomizedEquivalence:
    """≥200 random workloads: the two backends emit bit-identical plans."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_series_parallel(self, seed):
        rng = random.Random(8800 + seed)
        gen = _StageGen(rng)
        stages = gen.chain(6, 0)
        workloads = list(iter_sharded_workloads(stages))
        assert workloads  # the generator never returns a layer-free net
        model_a = random_model(random.Random(17 * seed))
        model_b = random_model(random.Random(17 * seed))
        assert model_a.pack_key() == model_b.pack_key()
        assert_same_search(stages, model_a, model_b)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_with_space_fn(self, seed):
        rng = random.Random(4400 + seed)
        gen = _StageGen(rng)
        stages = gen.chain(5, 0)
        restrict = {
            w.name: rng.choice(_RESTRICTIONS)
            for w in iter_sharded_workloads(stages)
        }
        fn = lambda w: restrict[w.name]
        model_a = random_model(random.Random(23 * seed))
        model_b = random_model(random.Random(23 * seed))
        assert_same_search(stages, model_a, model_b, space_fn=fn)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_restricted_global_space(self, seed):
        rng = random.Random(6600 + seed)
        gen = _StageGen(rng)
        stages = gen.chain(5, 0)
        space = rng.choice((HYPAR_TYPES, (I, III), (II,)))
        model_a = random_model(random.Random(31 * seed))
        model_b = random_model(random.Random(31 * seed))
        assert_same_search(stages, model_a, model_b, space=space)

    def test_generator_covers_nested_forks(self):
        # sanity on the generator itself: across the seeds used above, at
        # least one net nests a fork inside a fork path, and at least one
        # carries an identity-skip path
        nested = skipped = 0
        for seed in range(40):
            gen = _StageGen(random.Random(8800 + seed))
            stages = gen.chain(6, 0)

            def scan(sub, depth):
                nonlocal nested, skipped
                for st in sub:
                    if isinstance(st, ShardedParallelStage):
                        if depth > 0:
                            nested += 1
                        for path in st.paths:
                            if not path:
                                skipped += 1
                            scan(path, depth + 1)

            scan(stages, 0)
        assert nested > 0 and skipped > 0

    def test_total_workload_count_is_at_least_200(self):
        total = 0
        for seed in range(40):
            gen = _StageGen(random.Random(8800 + seed))
            total += len(list(iter_sharded_workloads(gen.chain(6, 0))))
        assert total >= 200


class TestCalibratedProfileEquivalence:
    """The bit-identity contract extends to calibrated profiles: the same
    per-kind rates, bandwidth curves and latency constants flow through
    the packed path in the same scalar lookups (memoized per size), so
    plans must stay bitwise equal, not just close."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_series_parallel_with_profile(self, seed):
        rng = random.Random(5500 + seed)
        gen = _StageGen(rng)
        stages = gen.chain(6, 0)
        model_a = random_calibrated_model(random.Random(41 * seed))
        model_b = random_calibrated_model(random.Random(41 * seed))
        assert model_a.pack_key() == model_b.pack_key()
        assert_same_search(stages, model_a, model_b)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_with_space_fn_and_profile(self, seed):
        rng = random.Random(7700 + seed)
        gen = _StageGen(rng)
        stages = gen.chain(5, 0)
        restrict = {
            w.name: rng.choice(_RESTRICTIONS)
            for w in iter_sharded_workloads(stages)
        }
        fn = lambda w: restrict[w.name]
        model_a = random_calibrated_model(random.Random(43 * seed))
        model_b = random_calibrated_model(random.Random(43 * seed))
        assert_same_search(stages, model_a, model_b, space_fn=fn)

    def test_profile_changes_pack_key(self):
        """Analytic and calibrated models must never share a pack cache row."""
        rng = random.Random(99)
        lhs, rhs = make_group(TPU_V3, 2), make_group(TPU_V2, 2)
        analytic = PairCostModel(lhs, rhs)
        calibrated = PairCostModel(lhs, rhs, profile=random_profile(rng))
        assert analytic.pack_key() != calibrated.pack_key()

    def test_distinct_profiles_distinct_pack_keys(self):
        lhs, rhs = make_group(TPU_V3, 2), make_group(TPU_V2, 2)
        a = PairCostModel(lhs, rhs, profile=random_profile(random.Random(1)))
        b = PairCostModel(lhs, rhs, profile=random_profile(random.Random(2)))
        assert a.pack_key() != b.pack_key()


def two_party_model(**kwargs):
    return PairCostModel(make_group(TPU_V3, 2), make_group(TPU_V2, 2), **kwargs)


class TestDegenerateCases:
    def test_single_layer(self):
        stages = [fc_layer("only", 32, 64, 64)]
        assert_same_search(stages, two_party_model(), two_party_model())

    def test_empty_stage_list(self):
        result = search_stages_vectorized([], two_party_model())
        assert result.entries == ()
        assert result.cost == 0.0
        assert result.exit_state is None

    def test_empty_space_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            search_stages_vectorized([fc_layer("l", 8, 8, 8)], two_party_model(),
                                     space=())

    def test_all_empty_fork_raises(self):
        region = ShardedParallelStage(paths=((), ()), name="hollow")
        with pytest.raises(ValueError, match="no weighted layers"):
            search_stages_vectorized([region], two_party_model())

    def test_hypar_space(self):
        stages = [fc_layer(f"l{i}", 64, 128, 128) for i in range(4)]
        assert_same_search(stages, two_party_model(), two_party_model(),
                           space=HYPAR_TYPES)

    def test_all_tied_costs_break_identically(self):
        # identical parties + equal ratios make symmetric layers tie across
        # types; both backends must pick the same first-seen winner
        identical = lambda: PairCostModel(
            make_group(TPU_V3, 2), make_group(TPU_V3, 2), ratio_mode="equal"
        )
        stages = [fc_layer(f"sym{i}", 64, 64, 64) for i in range(5)]
        assert_same_search(stages, identical(), identical())

    def test_fork_join_chain(self):
        stages = [
            fc_layer("pre", 64, 64, 64),
            ShardedParallelStage(
                paths=(
                    (fc_layer("a1", 64, 64, 64), fc_layer("a2", 64, 64, 64)),
                    (fc_layer("b1", 64, 64, 64),),
                    (),
                ),
                name="blk",
            ),
            fc_layer("post", 64, 64, 64),
        ]
        assert_same_search(stages, two_party_model(), two_party_model())


class TestTieBreakProperty:
    """masked_first_within_slack == the scalar first-seen-wins scan."""

    @staticmethod
    def scalar_scan(cand):
        rows, n_in, n_out = cand.shape
        values = np.empty((rows, n_out))
        choices = np.empty((rows, n_out), dtype=int)
        for r in range(rows):
            for j in range(n_out):
                best = None
                best_i = 0
                for i in range(n_in):
                    if best is None or improves(float(cand[r, i, j]), best):
                        best = float(cand[r, i, j])
                        best_i = i
                values[r, j] = best
                choices[r, j] = best_i
        return values, choices

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scalar_scan_on_random_costs(self, seed):
        rng = np.random.default_rng(seed)
        cand = rng.uniform(0.001, 10.0, size=(4, 3, 3))
        # exact ties and unreachable sentinels, like real frontiers
        cand[0, 2, :] = cand[0, 0, :]
        cand[1, 1, 0] = UNREACHABLE
        cand[2, :, 1] = UNREACHABLE
        values, choices = masked_first_within_slack(cand)
        ref_values, ref_choices = self.scalar_scan(cand)
        assert np.array_equal(values, ref_values)
        assert np.array_equal(choices, ref_choices)

    def test_exact_tie_prefers_lowest_index(self):
        cand = np.full((1, 3, 2), 5.0)
        values, choices = masked_first_within_slack(cand)
        assert np.array_equal(choices, [[0, 0]])
        assert np.array_equal(values, [[5.0, 5.0]])

    def test_within_slack_counts_as_tie(self):
        base = 1.0
        lower = base * (1.0 - COST_REL_TOL / 2)
        cand = np.array([[[base], [lower]]])
        values, choices = masked_first_within_slack(cand)
        # the second candidate is lower but within slack: first-seen wins
        # and keeps its own value, exactly like the scalar incumbent
        assert choices[0, 0] == 0
        assert values[0, 0] == base

    def test_beyond_slack_is_a_real_win(self):
        cand = np.array([[[1.0], [0.9]]])
        values, choices = masked_first_within_slack(cand)
        assert choices[0, 0] == 1
        assert values[0, 0] == 0.9


class TestCountersAndCaches:
    def setup_method(self):
        clear_pack_caches()

    def teardown_method(self):
        clear_pack_caches()

    def test_vec_counters_tick(self):
        stages = [
            fc_layer("pre", 64, 64, 64),
            ShardedParallelStage(
                paths=((fc_layer("a", 64, 64, 64),), ()), name="blk"
            ),
        ]
        model = two_party_model()
        search_stages_vectorized(stages, model)
        s = model.stats
        assert s.vec_searches == 1
        assert s.vec_pack_cache_misses == 1
        assert s.vec_pack_cache_hits == 0
        assert s.vec_multipath_batches == 1
        assert s.vec_pack_ns > 0
        assert s.vec_recurrence_ns > 0

    def test_pack_cache_hits_across_models(self):
        stages = [fc_layer(f"l{i}", 64, 64, 64) for i in range(3)]
        a, b = two_party_model(), two_party_model()
        search_stages_vectorized(stages, a)
        search_stages_vectorized(stages, b)
        assert a.stats.vec_pack_cache_misses == 1
        assert b.stats.vec_pack_cache_hits == 1
        assert b.stats.vec_pack_cache_misses == 0

    def test_no_pack_cache_without_memoize(self):
        stages = [fc_layer(f"l{i}", 64, 64, 64) for i in range(3)]
        a = two_party_model(memoize=False)
        b = two_party_model(memoize=False)
        search_stages_vectorized(stages, a)
        search_stages_vectorized(stages, b)
        assert a.stats.vec_pack_cache_hits == 0
        assert b.stats.vec_pack_cache_hits == 0
