"""JSON logging and the service's threshold-gated slow-request log."""

import io
import json
import logging

import pytest

from repro.hardware import heterogeneous_array
from repro.obs.logging import (
    DEFAULT_SLOW_REQUEST_S,
    SLOW_REQUEST_ENV,
    JsonLogFormatter,
    clear_log_context,
    configure_json_logging,
    get_logger,
    log_context,
    set_log_context,
    slow_request_threshold_s,
)
from repro.obs.tracing import tracer
from repro.service import PlanRequest, PlanService


@pytest.fixture
def json_log():
    """A throwaway logger wired to a StringIO through the JSON formatter."""
    buffer = io.StringIO()
    logger = logging.getLogger("repro.test_obs_logging")
    logger.propagate = False
    handler = configure_json_logging(
        stream=buffer, level=logging.DEBUG,
        logger_name="repro.test_obs_logging",
    )
    yield logger, buffer
    logger.removeHandler(handler)
    logger.propagate = True


def emitted(buffer):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestJsonLogFormatter:
    def test_standard_fields(self, json_log):
        logger, buffer = json_log
        logger.info("hello %s", "world")
        (document,) = emitted(buffer)
        assert document["message"] == "hello world"
        assert document["level"] == "info"
        assert document["logger"] == "repro.test_obs_logging"
        assert isinstance(document["ts"], float)
        assert "trace_id" not in document

    def test_extra_fields_pass_through(self, json_log):
        logger, buffer = json_log
        logger.warning("slow", extra={"latency_ms": 12.5, "model": "lenet"})
        (document,) = emitted(buffer)
        assert document["latency_ms"] == 12.5
        assert document["model"] == "lenet"

    def test_unserializable_extra_falls_back_to_repr(self, json_log):
        logger, buffer = json_log
        logger.info("odd", extra={"payload": {1, 2}})
        (document,) = emitted(buffer)
        assert document["payload"] == repr({1, 2})

    def test_trace_id_from_tracer_thread_local(self, json_log):
        logger, buffer = json_log
        tracer.set_trace_id("deadbeefcafe0000")
        try:
            logger.info("traced")
        finally:
            tracer.set_trace_id(None)
        logger.info("untraced")
        traced, untraced = emitted(buffer)
        assert traced["trace_id"] == "deadbeefcafe0000"
        assert "trace_id" not in untraced

    def test_exception_rendering(self, json_log):
        logger, buffer = json_log
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("failed")
        (document,) = emitted(buffer)
        assert document["level"] == "error"
        assert "RuntimeError: boom" in document["exception"]

    def test_configure_is_idempotent_per_stream(self, json_log):
        logger, buffer = json_log
        again = configure_json_logging(
            stream=buffer, logger_name="repro.test_obs_logging"
        )
        assert sum(
            isinstance(h.formatter, JsonLogFormatter) for h in logger.handlers
        ) == 1
        assert again in logger.handlers


class TestLogContext:
    """Process-wide context fields (e.g. a fleet shard's name) on every line."""

    @pytest.fixture(autouse=True)
    def _clean_context(self):
        clear_log_context()
        yield
        clear_log_context()

    def test_context_field_appears_on_every_line(self, json_log):
        logger, buffer = json_log
        set_log_context(shard="3")
        logger.info("one")
        logger.warning("two")
        for document in emitted(buffer):
            assert document["shard"] == "3"

    def test_explicit_extra_wins_over_context(self, json_log):
        logger, buffer = json_log
        set_log_context(shard="3")
        logger.info("override", extra={"shard": "9"})
        (document,) = emitted(buffer)
        assert document["shard"] == "9"

    def test_none_removes_and_clear_empties(self, json_log):
        logger, buffer = json_log
        set_log_context(shard="3", region="east")
        set_log_context(region=None)
        assert log_context() == {"shard": "3"}
        clear_log_context()
        logger.info("bare")
        (document,) = emitted(buffer)
        assert "shard" not in document


class TestSlowRequestThreshold:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SLOW_REQUEST_ENV, raising=False)
        assert slow_request_threshold_s() == DEFAULT_SLOW_REQUEST_S

    def test_env_override_is_milliseconds(self, monkeypatch):
        monkeypatch.setenv(SLOW_REQUEST_ENV, "250")
        assert slow_request_threshold_s() == 0.25

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(SLOW_REQUEST_ENV, "250")
        assert slow_request_threshold_s(2.0) == 2.0

    def test_bad_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(SLOW_REQUEST_ENV, "not-a-number")
        assert slow_request_threshold_s() == DEFAULT_SLOW_REQUEST_S

    def test_negative_argument_rejected(self):
        with pytest.raises(ValueError):
            slow_request_threshold_s(-1.0)


class TestServiceSlowRequestLog:
    @pytest.fixture
    def array(self):
        return heterogeneous_array(2, 2)

    def test_threshold_zero_logs_every_request(self, array, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            with PlanService(workers=2, slow_request_s=0.0) as service:
                response = service.plan(
                    PlanRequest(model="lenet", array=array, batch=32)
                )
        records = [r for r in caplog.records if r.message == "slow plan request"]
        assert len(records) == 1
        record = records[0]
        assert record.trace_id == response.trace_id
        assert record.model == "lenet"
        assert record.latency_ms >= 0
        assert record.threshold_ms == 0.0
        assert service.metrics.value("slow_requests") == 1

    def test_large_threshold_stays_quiet(self, array, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            with PlanService(workers=2, slow_request_s=3600.0) as service:
                service.plan(PlanRequest(model="lenet", array=array, batch=32))
        assert not [r for r in caplog.records
                    if r.message == "slow plan request"]
        assert service.metrics.value("slow_requests") == 0

    def test_get_logger_namespace(self):
        assert get_logger().name == "repro"
        assert get_logger("repro.service").name == "repro.service"
