"""Cross-backend plan equivalence: every registered backend plans real
models, validates structurally, and survives a lossless serialize-v2
round trip.  This module is the CI ``plan-equivalence`` job.
"""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.plan import available_backends, get_backend, plan_diff, validate_plan

BACKENDS = available_backends()

#: vgg19's 19 weighted layers exceed brute force's default 12-layer cap
CHAIN_BACKENDS = [b for b in BACKENDS if b != "brute-force"]


def build_any(name):
    """Registry lookup that also resolves trident's self-reported name
    ("trident2" encodes its block count, which is not a registry key)."""
    return build_model("trident" if name.startswith("trident") else name)


def plan_with_backend(model_name, backend, batch=64):
    array = heterogeneous_array(2, 2)
    scheme = get_scheme("accpar", backend=backend)
    return Planner(array, scheme).plan(build_model(model_name), batch)


def assert_entries_identical(a, b, path="root"):
    """Bit-identical plan trees: same shape, same ordered typed entries."""
    assert (a is None) == (b is None), path
    if a is None:
        return
    if a.level_plan is None:
        assert b.level_plan is None, path
    else:
        assert a.level_plan.entries == b.level_plan.entries, path
    assert_entries_identical(a.left, b.left, path + "L")
    assert_entries_identical(a.right, b.right, path + "R")


class TestEveryBackendOnChain:
    @pytest.mark.parametrize("backend", CHAIN_BACKENDS)
    def test_vgg19_plans_and_validates(self, backend):
        planned = plan_with_backend("vgg19", backend)
        assert validate_plan(planned.plan, build_model("vgg19"), 64) == []

    @pytest.mark.parametrize("backend", CHAIN_BACKENDS)
    def test_vgg19_v2_roundtrip_lossless(self, backend):
        planned = plan_with_backend("vgg19", backend)
        document = plan_to_dict(planned)
        assert document["format_version"] == 2
        reloaded = plan_from_dict(document)
        assert_entries_identical(planned.plan, reloaded.plan)
        assert plan_diff(planned.plan, reloaded.plan) == []

    def test_brute_force_refuses_vgg19_with_clear_error(self):
        with pytest.raises(ValueError, match="dp"):
            plan_with_backend("vgg19", "brute-force")


class TestEveryBackendOnMultibranch:
    """trident has 10 weighted layers, small enough for brute force too."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trident_plans_and_validates(self, backend):
        planned = plan_with_backend("trident", backend)
        assert validate_plan(planned.plan, build_model("trident"), 64) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trident_v2_roundtrip_lossless(self, backend):
        planned = plan_with_backend("trident", backend)
        reloaded = plan_from_dict(plan_to_dict(planned),
                                  network_builder=build_any)
        assert_entries_identical(planned.plan, reloaded.plan)
        assert plan_diff(planned.plan, reloaded.plan) == []

    def test_dp_roundtrip_preserves_joins_and_exits(self):
        """The multi-path-aware backend emits JoinAlignment and PathExit
        entries; the v2 round trip must carry them bit-identically."""
        planned = plan_with_backend("trident", "dp")
        root = planned.root_level_plan
        assert root.joins(), "dp on trident must align fork/join tensors"
        assert root.path_exits(), "dp on trident must record path exits"
        reloaded = plan_from_dict(plan_to_dict(planned),
                                  network_builder=build_any)
        assert reloaded.root_level_plan.joins() == root.joins()
        assert reloaded.root_level_plan.path_exits() == root.path_exits()

    def test_linearizing_backends_emit_layers_only(self):
        """greedy and brute-force flatten fork/join regions to a chain, so
        their plans are pure layer assignments — still structurally valid."""
        for backend in ("greedy", "brute-force"):
            planned = plan_with_backend("trident", backend)
            root = planned.root_level_plan
            assert root.joins() == () and root.path_exits() == (), backend


class TestBackendAgreement:
    def test_dp_and_brute_force_agree_on_small_chain(self):
        """On a chain within the cap the DP must match the oracle's cost."""
        dp = plan_with_backend("lenet", "dp")
        brute = plan_with_backend("lenet", "brute-force")
        assert dp.root_level_plan.cost == pytest.approx(
            brute.root_level_plan.cost, rel=1e-9
        )

    def test_registry_and_scheme_route_identically(self):
        """AccParScheme's registry-routed search equals calling the backend
        directly — the refactor changed plumbing, not plans."""
        planned = plan_with_backend("alexnet", "dp")
        from repro.core.cost_model import PairCostModel

        tree = planned.tree
        model = PairCostModel(tree.left.group, tree.right.group,
                              planned.dtype_bytes)
        direct = get_backend("dp").search(planned.stages, model)
        assert direct.to_level_plan("accpar").entries == \
            planned.root_level_plan.entries
