"""Property-based tests for the plan tooling (serialize / quantize / verify).

Every plan the planner can produce — any scheme, any model, any array —
must survive the deployment pipeline: JSON round-trip without changing its
simulated behavior, quantize into integer splits, and verify clean.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.core.quantize import quantize_plan, quantize_ratio
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.core.verify import verify_planned
from repro.hardware import TPU_V2, TPU_V3, make_group, merge_groups
from repro.models import build_model
from repro.sim.executor import evaluate

SCHEMES = ["dp", "owt", "hypar", "accpar"]
MODELS = ["lenet", "alexnet"]


def build_array(n_v2: int, n_v3: int):
    groups = []
    if n_v2:
        groups.append(make_group(TPU_V2, n_v2))
    if n_v3:
        groups.append(make_group(TPU_V3, n_v3))
    return merge_groups(*groups)


@settings(deadline=None, max_examples=15)
@given(
    scheme=st.sampled_from(SCHEMES),
    model=st.sampled_from(MODELS),
    n_v2=st.integers(min_value=0, max_value=3),
    n_v3=st.integers(min_value=0, max_value=3),
    batch=st.sampled_from([32, 64, 256]),
)
def test_plan_pipeline_properties(scheme, model, n_v2, n_v3, batch):
    if n_v2 + n_v3 < 2:
        n_v3 = 2  # need something to partition

    array = build_array(n_v2, n_v3)
    planned = Planner(array, get_scheme(scheme)).plan(build_model(model), batch)

    # 1. verification is clean on fresh plans
    assert verify_planned(planned) == []

    # 2. JSON round-trip preserves the simulated time exactly
    reloaded = plan_from_dict(plan_to_dict(planned))
    assert evaluate(reloaded).total_time == pytest.approx(
        evaluate(planned).total_time
    )

    # 3. quantization produces a verifiable plan with bounded drift
    quantized, report = quantize_plan(planned)
    assert verify_planned(quantized) == []
    t_orig = evaluate(planned).total_time
    t_quant = evaluate(quantized).total_time
    assert t_quant <= t_orig * 1.5  # rounding cannot blow the plan up


@settings(deadline=None, max_examples=60)
@given(
    ratio=st.floats(min_value=0.001, max_value=0.999),
    extent=st.integers(min_value=2, max_value=100000),
)
def test_quantize_ratio_properties(ratio, extent):
    snapped = quantize_ratio(ratio, float(extent))
    # realizable: the split index is an integer in [1, extent-1]
    split = snapped * extent
    assert split == pytest.approx(round(split))
    assert 1 <= round(split) <= extent - 1
    # closest: no other integer split is nearer (up to the clamping at the
    # boundaries)
    if 1 / extent <= ratio <= (extent - 1) / extent:
        assert abs(snapped - ratio) <= 0.5 / extent + 1e-12
