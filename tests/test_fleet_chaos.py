"""Fault-tolerance tests: retry policy, health marking, chaos episodes.

The deterministic chaos harness (:mod:`repro.fleet.chaos`) makes failure
injection scripted and replayable, so these tests assert *exact* fleet
behavior under faults: a killed shard's keys reroute to the survivor and
every served plan stays bit-identical to a healthy single-process run;
the shard rejoins the ring on recovery; the retry/failover counters and
the ``shard_up`` gauge tell the story the episode actually had.
"""

import socket
import time

import pytest

from repro.core.serialize import plan_from_dict
from repro.fleet import (
    ChaosController,
    ChaosSpec,
    ChaosSpecError,
    DEFAULT_RETRY,
    FleetClient,
    FleetFrontend,
    HashRing,
    HealthMonitor,
    NO_RETRY,
    RetryPolicy,
    RetryPolicyError,
    ShardSupervisor,
    run_with_retries,
)
from repro.fleet.retry import classify, is_transient
from repro.fleet.shard import ShardServer
from repro.fleet.wire import FrameError, recv_frame, send_frame
from repro.obs.registry import MetricsRegistry
from repro.plan.diff import plan_diff
from repro.service.server import request_from_doc
from repro.service.service import PlanService

#: a small array keeps cold planning fast enough for tight test loops
ARRAY = "tpu-v2:2,tpu-v3:2"


def spec(model="lenet", batch=32, **extra):
    return {"model": model, "array": ARRAY, "batch": batch, **extra}


def shard_op(host, port, doc, timeout=5.0):
    """One raw frame round-trip straight to a shard (None on silence)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        send_frame(sock, doc)
        try:
            return recv_frame(sock)
        except (FrameError, OSError):
            return None


def wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_seeded_delays_are_deterministic(self):
        a = RetryPolicy(max_attempts=5, base_delay_s=0.1, seed=7)
        b = RetryPolicy(max_attempts=5, base_delay_s=0.1, seed=7)
        assert list(a.delays()) == list(b.delays())

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.1,
                             max_delay_s=0.4, jitter=0.0, seed=0)
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_budget_stops_the_delay_iterator(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.1,
                             jitter=0.0, seed=0)
        assert list(policy.delays(budget_s=0.35)) == [0.1, 0.2]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_parse_spec_string(self):
        policy = RetryPolicy.parse("attempts=3,base=0.02,max=0.1,seed=0")
        assert policy == RetryPolicy(max_attempts=3, base_delay_s=0.02,
                                     max_delay_s=0.1, seed=0)
        # omitted keys keep the dataclass defaults
        assert RetryPolicy.parse("") == RetryPolicy()
        assert RetryPolicy.parse("attempts=1").max_attempts == 1
        assert RetryPolicy.parse("jitter=0, multiplier=3").multiplier == 3.0

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(RetryPolicyError):
            RetryPolicy.parse("nope=1")
        with pytest.raises(RetryPolicyError):
            RetryPolicy.parse("attempts")
        with pytest.raises(RetryPolicyError):
            RetryPolicy.parse("base=fast")
        with pytest.raises(RetryPolicyError):
            RetryPolicy.parse("attempts=0")  # invalid policy, same error

    def test_classification(self):
        assert is_transient(ConnectionResetError())
        assert is_transient(FrameError("torn"))
        assert not is_transient(ValueError("app error"))
        assert classify(TimeoutError()) == "timeout"
        assert classify(ConnectionRefusedError()) == "connect"
        assert classify(ConnectionResetError()) == "transport"

    def test_run_with_retries_heals_transient_errors(self):
        attempts = []

        def attempt(index):
            attempts.append(index)
            if index < 2:
                raise ConnectionResetError("flaky")
            return "served"

        result = run_with_retries(DEFAULT_RETRY, attempt,
                                  sleep=lambda d: None)
        assert result == "served" and attempts == [0, 1, 2]

    def test_run_with_retries_raises_nontransient_immediately(self):
        attempts = []

        def attempt(index):
            attempts.append(index)
            raise ValueError("not a transport problem")

        with pytest.raises(ValueError):
            run_with_retries(DEFAULT_RETRY, attempt, sleep=lambda d: None)
        assert attempts == [0]

    def test_run_with_retries_respects_the_deadline(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.2,
                             jitter=0.0, seed=0)
        attempts = []

        def attempt(index):
            attempts.append(index)
            raise ConnectionResetError("always")

        with pytest.raises(ConnectionResetError):
            run_with_retries(policy, attempt, deadline_s=0.1,
                             sleep=lambda d: None)
        assert attempts == [0]  # the first 0.2 s backoff overruns 0.1 s

    def test_no_retry_is_single_attempt(self):
        attempts = []

        def attempt(index):
            attempts.append(index)
            raise ConnectionResetError("down")

        with pytest.raises(ConnectionResetError):
            run_with_retries(NO_RETRY, attempt, sleep=lambda d: None)
        assert attempts == [0]


# ----------------------------------------------------------------------
# chaos spec + controller
# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_parse_roundtrip(self):
        text = "seed=42,drop=0.1,delay=0.2,delay_ms=50.0,corrupt=0.05"
        parsed = ChaosSpec.parse(text)
        assert parsed == ChaosSpec(seed=42, drop=0.1, delay=0.2,
                                   delay_ms=50, corrupt=0.05)
        assert ChaosSpec.parse(parsed.describe()) == parsed

    def test_parse_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ChaosSpecError):
            ChaosSpec.parse("explode=1")
        with pytest.raises(ChaosSpecError):
            ChaosSpec.parse("drop=lots")
        with pytest.raises(ChaosSpecError):
            ChaosSpec.parse("drop=1.5")  # probability out of range
        with pytest.raises(ChaosSpecError):
            ChaosSpec.parse("seed")  # no '='

    def test_same_seed_replays_the_same_episode(self):
        frames = [b"\x00\x00\x00\x05hello"] * 64
        spec_ = ChaosSpec(seed=9, drop=0.3, delay=0.2, delay_ms=5,
                          corrupt=0.2)
        runs = []
        for _ in range(2):
            controller = ChaosController(spec_)
            runs.append([controller.perturb(f) for f in frames])
        assert runs[0] == runs[1]
        counts = ChaosController(spec_)
        for f in frames:
            counts.perturb(f)
        snap = counts.snapshot()
        assert snap["frames_seen"] == 64
        assert snap["frames_dropped"] > 0
        assert snap["frames_corrupted"] > 0

    def test_corrupt_flips_body_bytes_only(self):
        controller = ChaosController(ChaosSpec(seed=1, corrupt=1.0))
        frame = b"\x00\x00\x00\x0bhello world"
        for _ in range(32):
            data, _ = controller.perturb(frame)
            assert data[:4] == frame[:4]  # length prefix stays honest
            assert data[4:] != frame[4:]
            assert len(data) == len(frame)


# ----------------------------------------------------------------------
# health monitor
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def _monitor(self, threshold=3):
        ring = HashRing(["0", "1"])
        metrics = MetricsRegistry()
        events = []
        monitor = HealthMonitor(
            ["0", "1"], ring=ring, metrics=metrics,
            failure_threshold=threshold,
            on_down=lambda shard, reason: events.append(("down", shard)),
            on_up=lambda shard: events.append(("up", shard)))
        return monitor, ring, metrics, events

    def test_k_consecutive_failures_remove_the_shard_from_the_ring(self):
        monitor, ring, metrics, events = self._monitor(threshold=3)
        monitor.record_failure("0", "heartbeat")
        monitor.record_failure("0", "heartbeat")
        assert monitor.is_up("0") and "0" in ring  # below the threshold
        monitor.record_failure("0", "heartbeat")
        assert not monitor.is_up("0") and "0" not in ring
        assert events == [("down", "0")]
        assert metrics.gauge_value("shard_up", shard="0") == 0
        assert metrics.gauge_value("shard_up", shard="1") == 1
        assert metrics.value("shard_marked_down") == 1
        # every key now routes to the survivor
        assert all(ring.owner(f"key-{i}") == "1" for i in range(32))

    def test_success_resets_the_failure_streak(self):
        monitor, ring, _, events = self._monitor(threshold=3)
        for _ in range(2):
            monitor.record_failure("0")
        monitor.record_success("0")
        for _ in range(2):
            monitor.record_failure("0")
        assert monitor.is_up("0") and "0" in ring  # streak never hit 3
        assert events == []

    def test_recovery_rejoins_the_ring_at_the_old_positions(self):
        monitor, ring, metrics, events = self._monitor(threshold=1)
        before = {f"key-{i}": ring.owner(f"key-{i}") for i in range(64)}
        monitor.record_failure("0", "heartbeat")
        assert "0" not in ring
        monitor.record_success("0")
        assert "0" in ring and monitor.is_up("0")
        assert events == [("down", "0"), ("up", "0")]
        assert metrics.gauge_value("shard_up", shard="0") == 1
        assert metrics.value("shard_marked_up") == 1
        # deterministic rejoin: the healed ring routes exactly as before
        after = {f"key-{i}": ring.owner(f"key-{i}") for i in range(64)}
        assert after == before

    def test_the_last_shard_never_leaves_the_ring(self):
        monitor, ring, _, _ = self._monitor(threshold=1)
        monitor.record_failure("0")
        monitor.record_failure("1")
        assert not monitor.is_up("1")
        assert "1" in ring  # down, but still routable: fail loudly, not
        assert len(ring) == 1  # silently


# ----------------------------------------------------------------------
# chaos ops on a shard
# ----------------------------------------------------------------------
class TestShardChaosOps:
    def test_chaos_ops_refused_without_a_controller(self):
        server = ShardServer("plain")
        server.start_background()
        try:
            reply = shard_op(server.host, server.port, {"op": "chaos_kill"})
            assert reply["ok"] is False
            assert "chaos not enabled" in reply["error"]
            assert shard_op(server.host, server.port,
                            {"op": "ping"})["ok"]  # still serving
        finally:
            server.stop()

    def test_chaos_freeze_stalls_subsequent_requests(self):
        server = ShardServer("frosty", chaos="seed=3")
        server.start_background()
        try:
            reply = shard_op(server.host, server.port,
                             {"op": "chaos_freeze", "seconds": 0.4})
            assert reply["ok"] and reply["frozen_s"] == 0.4
            t0 = time.monotonic()
            assert shard_op(server.host, server.port, {"op": "ping"})["ok"]
            assert time.monotonic() - t0 >= 0.3  # served only after the thaw
        finally:
            server.stop()

    def test_stats_embed_the_chaos_snapshot(self):
        server = ShardServer("chaotic", chaos="seed=5")
        server.start_background()
        try:
            assert shard_op(server.host, server.port, {"op": "ping"})["ok"]
            reply = shard_op(server.host, server.port, {"op": "stats"})
            chaos = reply["stats"]["chaos"]
            assert chaos["spec"].startswith("seed=5")
            assert chaos["frames_seen"] >= 1  # the ping reply went through
        finally:
            server.stop()


# ----------------------------------------------------------------------
# fleet failover episodes (thread mode: fast and deterministic)
# ----------------------------------------------------------------------
@pytest.fixture
def chaotic_fleet(tmp_path):
    """A 2-shard fleet with chaos ops unlocked and fast health marking."""
    with ShardSupervisor(2, cache_dir=tmp_path, chaos="seed=1") as sup:
        frontend = FleetFrontend(
            sup.handles,
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=0.5,
            failure_threshold=2,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.02,
                              max_delay_s=0.1, seed=0),
        )
        with frontend:
            with FleetClient(port=frontend.port) as client:
                yield sup, frontend, client


class TestFailoverEpisode:
    def test_killing_a_shard_mid_batch_reroutes_and_stays_bit_identical(
            self, chaotic_fleet):
        sup, frontend, client = chaotic_fleet
        docs = [spec(batch=8 * (i + 1)) for i in range(8)]

        # a healthy warm-up batch: every shard owns some of the keys
        first = client.plan_batch([dict(d) for d in docs])
        assert first["succeeded"] == 8
        owners = {item["fingerprint"]: item["shard"]
                  for item in first["items"]}
        assert set(owners.values()) == {"0", "1"}

        # kill shard 0 like a crash: the chaos op answers with silence
        victim = sup.handles[0]
        assert shard_op(victim.host, victim.port, {"op": "chaos_kill"},
                        timeout=2.0) is None

        # the same batch must still complete — every item served by the
        # survivor, whether via dispatch failover or health rerouting
        second = client.plan_batch([dict(d, include_plan=True)
                                    for d in docs])
        assert second["succeeded"] == 8, second
        for item in second["items"]:
            assert item["shard"] == "1"

        # ... and every plan is bit-identical to a healthy single-process
        # run (determinism survives the failure path)
        with PlanService(workers=2) as local:
            for doc, item in zip(docs, second["items"]):
                response = local.plan(request_from_doc(dict(doc)))
                assert item["fingerprint"] == response.fingerprint
                served = plan_from_dict(item["plan"])
                assert plan_diff(response.planned.plan, served.plan,
                                 rel_tol=1e-9) == []

        # the metrics tell the episode's story
        counters = frontend.snapshot()["metrics"]["counters"]
        assert counters["failover_total"] >= 1
        assert counters["retries_total"] >= 1
        assert wait_until(lambda: not frontend.health.is_up("0"))
        assert frontend.metrics.gauge_value("shard_up", shard="0") == 0
        assert frontend.metrics.gauge_value("shard_up", shard="1") == 1
        assert "0" not in frontend.ring and "1" in frontend.ring

    def test_marked_down_shard_is_rerouted_before_dialing(
            self, chaotic_fleet):
        sup, frontend, client = chaotic_fleet
        victim = sup.handles[1]
        assert shard_op(victim.host, victim.port, {"op": "chaos_kill"},
                        timeout=2.0) is None
        assert wait_until(lambda: not frontend.health.is_up("1"))

        # every request now routes straight to the survivor: no failover
        # hops, no retries against the corpse
        base = frontend.snapshot()["metrics"]["counters"]
        batch = client.plan_batch([spec(batch=8 * (i + 1))
                                   for i in range(8)])
        assert batch["succeeded"] == 8
        assert all(item["shard"] == "0" for item in batch["items"])
        after = frontend.snapshot()["metrics"]["counters"]
        assert after.get("route_errors", 0) == base.get("route_errors", 0)

    def test_frozen_shard_sheds_on_deadline_then_recovers(self, tmp_path):
        with ShardSupervisor(2, cache_dir=tmp_path, chaos="seed=2") as sup:
            frontend = FleetFrontend(
                sup.handles,
                heartbeat_interval_s=0.0,  # drive health by hand
                failure_threshold=1,
            )
            with frontend, FleetClient(port=frontend.port) as client:
                # find a doc owned by shard 0, then freeze shard 0
                ring = HashRing([h.name for h in sup.handles])
                doc = next(
                    d for d in (spec(batch=8 * (i + 1)) for i in range(32))
                    if ring.owner(client.plan(dict(d))["fingerprint"])
                    == "0")
                handle = sup.handles[0]
                assert shard_op(handle.host, handle.port,
                                {"op": "chaos_freeze", "seconds": 1.0})["ok"]

                reply = client.plan(dict(doc), deadline_ms=200)
                # cache hits race the freeze only on the frozen shard's
                # *next* connection; a shed or a served hit are both
                # legal, but the deadline must hold either way
                if not reply["ok"]:
                    assert reply["error"] == "shed"
                assert wait_until(
                    lambda: client.plan(dict(doc))["ok"], timeout=5.0)


# ----------------------------------------------------------------------
# process-mode: crash, supervise, restart, rejoin
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestProcessCrashRecovery:
    def test_killed_shard_restarts_on_its_port_and_rejoins(self, tmp_path):
        restarts = []
        sup = ShardSupervisor(
            2, cache_dir=tmp_path, mode="process", chaos="seed=4",
            restart=True, monitor_interval_s=0.05,
            restart_backoff=RetryPolicy(max_attempts=5, base_delay_s=0.05,
                                        max_delay_s=0.2, seed=0),
            on_restart=lambda name, count: restarts.append((name, count)),
        )
        with sup:
            frontend = FleetFrontend(
                sup.handles,
                heartbeat_interval_s=0.1,
                heartbeat_timeout_s=0.5,
                failure_threshold=2,
                retry=RetryPolicy(max_attempts=3, base_delay_s=0.02,
                                  max_delay_s=0.1, seed=0),
            )
            with frontend, FleetClient(port=frontend.port) as client:
                docs = [spec(batch=8 * (i + 1)) for i in range(6)]
                warmup = client.plan_batch([dict(d) for d in docs])
                assert warmup["succeeded"] == 6

                victim = sup.handles[0]
                old_pid = victim.process.pid
                assert shard_op(victim.host, victim.port,
                                {"op": "chaos_kill"}, timeout=5.0) is None

                # mid-outage requests still complete (failover to "1")
                outage = client.plan_batch([dict(d) for d in docs])
                assert outage["succeeded"] == 6

                # the supervisor restarts the shard on the SAME port ...
                assert wait_until(lambda: restarts, timeout=15.0), \
                    "supervisor never restarted the killed shard"
                replacement = sup.handles[0]
                assert replacement.port == victim.port
                assert replacement.process.pid != old_pid
                assert wait_until(replacement.process.is_alive, timeout=5.0)

                # ... and heartbeats put it back on the ring
                assert wait_until(
                    lambda: frontend.health.is_up("0"), timeout=15.0)
                assert "0" in frontend.ring
                assert frontend.metrics.gauge_value(
                    "shard_up", shard="0") == 1

                # the reborn shard serves its old keyspace from its warm
                # disk tier: a key it owns comes back as a disk hit
                healed = client.plan_batch(
                    [dict(d) for d in docs])
                assert healed["succeeded"] == 6
                shard0_items = [i for i in healed["items"]
                                if i["shard"] == "0"]
                assert shard0_items, healed
                assert all(i["cache_hit"] for i in shard0_items)

                counters = frontend.snapshot()["metrics"]["counters"]
                assert counters["failover_total"] >= 1
                assert counters["shard_marked_down"] >= 1
                assert counters["shard_marked_up"] >= 1
