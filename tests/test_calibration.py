"""Unit tests for cost-model calibration."""

import pytest

from repro.core.planner import AccParPlanner, Planner
from repro.baselines import get_scheme
from repro.experiments.calibration import (
    CalibrationResult,
    Probe,
    calibrate,
    probe_from_run,
)
from repro.hardware import TPU_V2, heterogeneous_array, homogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate


class TestProbe:
    def test_validation(self):
        with pytest.raises(ValueError):
            Probe(flops=-1, network_bytes=0, measured_seconds=1)
        with pytest.raises(ValueError):
            Probe(flops=1, network_bytes=0, measured_seconds=0)

    def test_probe_from_run(self):
        planned = AccParPlanner(heterogeneous_array(2, 2)).plan(
            build_model("lenet"), batch=64
        )
        report = evaluate(planned)
        probe = probe_from_run(planned, report)
        assert probe.flops > 0
        assert probe.network_bytes > 0
        assert probe.measured_seconds == report.total_time


class TestCalibrate:
    def test_recovers_synthetic_rates(self):
        """Probes generated from known rates must recover those rates."""
        c_true, b_true = 100e12, 2e9
        probes = [
            Probe(flops=f, network_bytes=n,
                  measured_seconds=f / c_true + n / b_true)
            for f, n in [(1e12, 1e6), (5e12, 1e9), (1e10, 5e9), (8e13, 1e8)]
        ]
        result = calibrate(probes)
        assert result.effective_flops == pytest.approx(c_true, rel=1e-6)
        assert result.effective_network_bandwidth == pytest.approx(b_true, rel=1e-6)
        assert result.residual_rms == pytest.approx(0.0, abs=1e-9)

    def test_needs_two_probes(self):
        with pytest.raises(ValueError, match="two probes"):
            calibrate([Probe(1e9, 1e6, 1.0)])

    def test_collinear_probes_rejected(self):
        probes = [
            Probe(flops=1e9, network_bytes=1e6, measured_seconds=1.0),
            Probe(flops=2e9, network_bytes=2e6, measured_seconds=2.0),
        ]
        with pytest.raises(ValueError, match="collinear"):
            calibrate(probes)

    def test_missing_network_term_rejected(self):
        probes = [
            Probe(flops=1e9, network_bytes=0.0, measured_seconds=1.0),
            Probe(flops=2e9, network_bytes=0.0, measured_seconds=2.0),
        ]
        with pytest.raises(ValueError, match="network"):
            calibrate(probes)

    def test_apply_to_spec(self):
        result = CalibrationResult(
            effective_flops=90e12,
            effective_network_bandwidth=0.8e9,
            residual_rms=0.0,
            n_probes=3,
        )
        calibrated = result.apply_to(TPU_V2)
        assert calibrated.flops == 90e12
        assert calibrated.network_bandwidth == 0.8e9
        assert calibrated.memory_bytes == TPU_V2.memory_bytes
        assert "calibrated" in calibrated.name


class TestClosedLoop:
    def test_simulated_probes_round_trip(self):
        """Probes taken from the simulator itself should fit with a small
        residual (the simulator has memory/overlap terms the 2-parameter
        model folds into the effective rates)."""
        array = homogeneous_array(4)
        probes = []
        for model, scheme in [("lenet", "dp"), ("alexnet", "dp"),
                              ("alexnet", "accpar"), ("vgg11", "accpar")]:
            planned = Planner(array, get_scheme(scheme)).plan(
                build_model(model), batch=64
            )
            report = evaluate(planned)
            probes.append(probe_from_run(planned, report))
        result = calibrate(probes)
        assert result.effective_flops > 0
        assert result.effective_network_bandwidth > 0
        mean_t = sum(p.measured_seconds for p in probes) / len(probes)
        assert result.residual_rms < mean_t  # the fit explains most of it
