"""Property-based tests for the convolution primitives (im2col engine)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numeric.conv_reference import (
    col2im,
    conv_forward,
    conv_input_grad,
    conv_weight_grad,
    im2col,
)

geometry = st.tuples(
    st.integers(min_value=1, max_value=3),   # batch
    st.integers(min_value=1, max_value=4),   # channels
    st.integers(min_value=3, max_value=8),   # height
    st.integers(min_value=3, max_value=8),   # width
    st.sampled_from([1, 2, 3]),              # kernel
    st.sampled_from([1, 2]),                 # stride
    st.sampled_from([0, 1]),                 # padding
)


@settings(deadline=None, max_examples=40)
@given(geometry, st.integers(min_value=0, max_value=1000))
def test_im2col_col2im_adjoint(geom, seed):
    """<im2col(x), y> == <x, col2im(y)> for every geometry: the exactness of
    the backward pass reduces to this adjoint identity."""
    b, c, h, w, k, stride, pad = geom
    if h + 2 * pad < k or w + 2 * pad < k:
        return  # geometry collapses; nothing to convolve
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((b, c, h, w))
    cols = im2col(x, k, stride, pad)
    y = rng.standard_normal(cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * col2im(y, x.shape, k, stride, pad)))
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


@settings(deadline=None, max_examples=25)
@given(geometry, st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=1000))
def test_conv_linearity_in_input(geom, c_out, seed):
    """conv(a*x1 + x2) == a*conv(x1) + conv(x2)."""
    b, c, h, w, k, stride, pad = geom
    if h + 2 * pad < k or w + 2 * pad < k:
        return
    rng = np.random.default_rng(seed)
    wgt = rng.standard_normal((c, c_out, k, k))
    x1 = rng.standard_normal((b, c, h, w))
    x2 = rng.standard_normal((b, c, h, w))
    a = 2.5
    lhs = conv_forward(a * x1 + x2, wgt, stride, pad)
    rhs = a * conv_forward(x1, wgt, stride, pad) + conv_forward(
        x2, wgt, stride, pad
    )
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)


@settings(deadline=None, max_examples=25)
@given(geometry, st.integers(min_value=2, max_value=3),
       st.integers(min_value=0, max_value=1000))
def test_channel_partition_additivity(geom, c_out, seed):
    """Splitting the input channels and summing partial convolutions equals
    the full convolution — the algebra behind Type-II's forward psum."""
    b, c, h, w, k, stride, pad = geom
    if c < 2 or h + 2 * pad < k or w + 2 * pad < k:
        return
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((b, c, h, w))
    wgt = rng.standard_normal((c, c_out, k, k))
    cut = c // 2
    partial = conv_forward(x[:, :cut], wgt[:cut], stride, pad) + conv_forward(
        x[:, cut:], wgt[cut:], stride, pad
    )
    np.testing.assert_allclose(
        partial, conv_forward(x, wgt, stride, pad), rtol=1e-9, atol=1e-9
    )


@settings(deadline=None, max_examples=25)
@given(geometry, st.integers(min_value=2, max_value=3),
       st.integers(min_value=0, max_value=1000))
def test_gradient_transpose_identity(geom, c_out, seed):
    """<conv(x, W), dz> == <x, conv_input_grad(dz, W)>
                        == <W, conv_weight_grad(x, dz)>."""
    b, c, h, w, k, stride, pad = geom
    if h + 2 * pad < k or w + 2 * pad < k:
        return
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((b, c, h, w))
    wgt = rng.standard_normal((c, c_out, k, k))
    z = conv_forward(x, wgt, stride, pad)
    dz = rng.standard_normal(z.shape)
    inner = float(np.sum(z * dz))
    via_x = float(np.sum(x * conv_input_grad(dz, wgt, x.shape, stride, pad)))
    via_w = float(np.sum(wgt * conv_weight_grad(x, dz, wgt.shape, stride, pad)))
    assert inner == pytest.approx(via_x, rel=1e-9, abs=1e-8)
    assert inner == pytest.approx(via_w, rel=1e-9, abs=1e-8)
