"""Unit tests for ratio quantization."""

import pytest

from repro.core.planner import AccParPlanner
from repro.core.quantize import (
    QuantizationError,
    partitioned_extent,
    quantize_plan,
    quantize_ratio,
)
from repro.core.types import PartitionType, ShardedWorkload
from repro.core.verify import verify_planned
from repro.graph.layers import LayerWorkload
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


class TestQuantizeRatio:
    def test_exact_split_unchanged(self):
        assert quantize_ratio(0.5, 512) == 0.5

    def test_rounds_to_nearest(self):
        assert quantize_ratio(0.70003, 512) == pytest.approx(358 / 512)

    def test_keeps_both_sides_nonempty(self):
        assert quantize_ratio(0.001, 4) == 0.25
        assert quantize_ratio(0.999, 4) == 0.75

    def test_tiny_axis_raises(self):
        with pytest.raises(QuantizationError):
            quantize_ratio(0.5, 1.0)

    def test_fractional_extent_uses_floor(self):
        # an effective length of 7.9 allows splits of a 7-long axis
        assert quantize_ratio(0.5, 7.9) == pytest.approx(4 / 7)


class TestPartitionedExtent:
    def test_per_type(self):
        sw = ShardedWorkload(
            LayerWorkload("l", 8, 6, 4, (1, 1), (1, 1), (1, 1), False)
        )
        assert partitioned_extent(sw, I) == 8
        assert partitioned_extent(sw, II) == 6
        assert partitioned_extent(sw, III) == 4


class TestQuantizePlan:
    @pytest.fixture(scope="class")
    def planned(self):
        return AccParPlanner(heterogeneous_array(2, 2)).plan(
            build_model("alexnet"), batch=512
        )

    def test_all_ratios_become_integer_splits(self, planned):
        quantized, report = quantize_plan(planned)
        assert report.n_ratios > 0
        assert report.levels_quantized == len(quantized.level_plans())
        # check the root level explicitly
        from repro.core.stages import iter_sharded_workloads

        by_name = {sw.name: sw for sw in iter_sharded_workloads(planned.stages)}
        for name, lp in quantized.root_level_plan.layer_assignments().items():
            extent = int(partitioned_extent(by_name[name], lp.ptype))
            assert lp.ratio * extent == pytest.approx(round(lp.ratio * extent))

    def test_quantized_plan_verifies(self, planned):
        quantized, _ = quantize_plan(planned)
        assert verify_planned(quantized) == []

    def test_cost_drift_is_small(self, planned):
        """Rounding 512-long axes moves ratios by < 1/256 and the simulated
        time by well under a percent."""
        quantized, report = quantize_plan(planned)
        t_orig = evaluate(planned).total_time
        t_quant = evaluate(quantized).total_time
        assert abs(t_quant - t_orig) / t_orig < 0.05

    def test_report_shift_bounded_by_half_step(self, planned):
        _, report = quantize_plan(planned)
        # alexnet's smallest partitionable extents are large; shifts from
        # interior rounding stay below one full step of the smallest axis,
        # except where the solver pinned alpha at the boundary (0.999)
        assert report.max_ratio_shift < 0.2

    def test_original_plan_untouched(self, planned):
        before = {
            name: lp.ratio
            for name, lp in planned.root_level_plan.assignments.items()
        }
        quantize_plan(planned)
        after = {
            name: lp.ratio
            for name, lp in planned.root_level_plan.assignments.items()
        }
        assert before == after


class TestUnrealizableAxes:
    def test_deep_hierarchy_counts_unrealizable(self):
        """At full depth on 256 boards some axes shard below 2 elements;
        non-strict quantization reports them instead of crashing."""
        planned = AccParPlanner(heterogeneous_array(128, 128)).plan(
            build_model("alexnet"), batch=512
        )
        quantized, report = quantize_plan(planned)
        assert report.unrealizable >= 0
        assert report.n_ratios > 0
        # the quantized plan still evaluates
        evaluate(quantized)

    def test_strict_mode_raises_on_unsplittable(self):
        planned = AccParPlanner(heterogeneous_array(128, 128)).plan(
            build_model("alexnet"), batch=512
        )
        _, report = quantize_plan(planned, strict=False)
        if report.unrealizable:
            with pytest.raises(QuantizationError):
                quantize_plan(planned, strict=True)
