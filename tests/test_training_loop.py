"""Multi-step training: partitioned and reference loops must coincide.

The strongest end-to-end claim of Section 3's algebra: a whole training run
(not just one step) on two devices with any type assignment matches the
single-device run exactly, under every update rule of Section 2.1, and the
loss actually goes down.
"""

import itertools

import pytest

from repro.core.types import PartitionType
from repro.numeric import LayerPlanNumeric, MlpSpec
from repro.training.loop import (
    compare_runs,
    synthetic_task,
    train_partitioned,
    train_reference,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

SPEC = MlpSpec([8, 12, 8, 4])
BATCH = 16


@pytest.fixture(scope="module")
def task():
    return synthetic_task(SPEC, BATCH, seed=0)


class TestLossDecreases:
    @pytest.mark.parametrize(
        "optimizer,kwargs",
        [("sgd", {}), ("momentum", {}), ("adam", {"lr": 0.02})],
    )
    def test_reference_learns(self, task, optimizer, kwargs):
        x, target = task
        run = train_reference(SPEC, x, target, steps=40, optimizer=optimizer,
                              **kwargs)
        assert run.final_loss < run.losses[0] * 0.5

    def test_partitioned_learns(self, task):
        x, target = task
        plan = [LayerPlanNumeric(I, 0.5), LayerPlanNumeric(II, 0.5),
                LayerPlanNumeric(III, 0.5)]
        run = train_partitioned(SPEC, plan, x, target, steps=40)
        assert run.final_loss < run.losses[0] * 0.5


class TestPartitionedMatchesReference:
    @pytest.mark.parametrize("optimizer", ["sgd", "momentum", "adam"])
    def test_mixed_plan_all_optimizers(self, task, optimizer):
        x, target = task
        plan = [LayerPlanNumeric(II, 0.5), LayerPlanNumeric(III, 0.5),
                LayerPlanNumeric(I, 0.5)]
        ref = train_reference(SPEC, x, target, steps=25, optimizer=optimizer)
        par = train_partitioned(SPEC, plan, x, target, steps=25,
                                optimizer=optimizer)
        assert compare_runs(ref, par) < 1e-8
        for a, b in zip(ref.losses, par.losses):
            assert a == pytest.approx(b, rel=1e-10)

    @pytest.mark.parametrize("t0,t1,t2",
                             list(itertools.product((I, II, III), repeat=3)))
    def test_every_type_combination_with_momentum(self, task, t0, t1, t2):
        x, target = task
        plan = [LayerPlanNumeric(t0, 0.5), LayerPlanNumeric(t1, 0.5),
                LayerPlanNumeric(t2, 0.5)]
        ref = train_reference(SPEC, x, target, steps=8, optimizer="momentum")
        par = train_partitioned(SPEC, plan, x, target, steps=8,
                                optimizer="momentum")
        assert compare_runs(ref, par) < 1e-8

    def test_asymmetric_ratio_training(self, task):
        x, target = task
        plan = [LayerPlanNumeric(I, 0.25), LayerPlanNumeric(II, 0.75),
                LayerPlanNumeric(III, 0.25)]
        ref = train_reference(SPEC, x, target, steps=15)
        par = train_partitioned(SPEC, plan, x, target, steps=15)
        assert compare_runs(ref, par) < 1e-8


class TestSyntheticTask:
    def test_task_is_deterministic(self):
        x1, t1 = synthetic_task(SPEC, BATCH, seed=5)
        x2, t2 = synthetic_task(SPEC, BATCH, seed=5)
        assert (x1 == x2).all() and (t1 == t2).all()

    def test_task_shapes(self, task):
        x, target = task
        assert x.shape == (BATCH, 8)
        assert target.shape == (BATCH, 4)


class TestConvTrainingLoop:
    @pytest.fixture(scope="class")
    def conv_setup(self):
        from repro.numeric.conv_reference import CnnSpec, ConvLayerSpec
        from repro.training.loop import conv_synthetic_task

        spec = CnnSpec(4, 8, 8, [ConvLayerSpec(4, 6, kernel=3, padding=1),
                                 ConvLayerSpec(6, 4, kernel=3, padding=1)])
        x, target = conv_synthetic_task(spec, batch=4)
        return spec, x, target

    def test_conv_reference_learns(self, conv_setup):
        from repro.training.loop import train_reference_conv

        spec, x, target = conv_setup
        run = train_reference_conv(spec, x, target, steps=30, lr=0.002)
        assert run.final_loss < run.losses[0] * 0.7

    @pytest.mark.parametrize("optimizer", ["sgd", "momentum"])
    def test_conv_partitioned_matches_reference(self, conv_setup, optimizer):
        from repro.numeric.conv_partitioned import ConvLayerPlan
        from repro.training.loop import (
            train_partitioned_conv,
            train_reference_conv,
        )

        spec, x, target = conv_setup
        plan = [ConvLayerPlan(II, 0.5), ConvLayerPlan(III, 0.5)]
        ref = train_reference_conv(spec, x, target, steps=10,
                                   optimizer=optimizer, lr=0.002)
        par = train_partitioned_conv(spec, plan, x, target, steps=10,
                                     optimizer=optimizer, lr=0.002)
        assert compare_runs(ref, par) < 1e-8
        for a, b in zip(ref.losses, par.losses):
            assert a == pytest.approx(b, rel=1e-10)
