"""Tests of the model zoo against the architectures' published structure."""

import pytest

from repro.graph import ParallelStage, count_stage_layers
from repro.models import (
    PAPER_MODELS,
    RESNET_MODELS,
    VGG_MODELS,
    available_models,
    build_model,
    register_model,
)
from repro.models.registry import _BUILDERS


def parameter_count(net, batch=1):
    return sum(w.weight.size for w in net.workloads(batch))


class TestRegistry:
    def test_nine_paper_models(self):
        assert len(PAPER_MODELS) == 9

    def test_all_available(self):
        for name in PAPER_MODELS:
            assert name in available_models()

    def test_case_insensitive(self):
        assert build_model("LeNet").name == "lenet"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("transformer")

    def test_register_and_build_custom(self):
        from repro.graph import Input, Linear, Network

        def tiny():
            net = Network("tiny-mlp", Input("in", channels=4))
            net.add(Linear("fc", 4, 2))
            return net

        register_model("tiny-mlp", tiny)
        try:
            assert build_model("tiny-mlp").name == "tiny-mlp"
            with pytest.raises(KeyError, match="already registered"):
                register_model("tiny-mlp", tiny)
            register_model("tiny-mlp", tiny, overwrite=True)
        finally:
            _BUILDERS.pop("tiny-mlp", None)

    def test_subsets(self):
        assert set(VGG_MODELS) <= set(PAPER_MODELS)
        assert set(RESNET_MODELS) <= set(PAPER_MODELS)


class TestLenet:
    def test_weighted_layer_count(self):
        assert len(build_model("lenet").workloads(1)) == 5

    def test_classifier_output(self):
        net = build_model("lenet")
        shapes = net.infer_shapes(1)
        assert shapes[net.output_name].channels == 10

    def test_parameter_count(self):
        # 150 + 2400 + 48000 + 10080 + 840 = 61470 kernel weights (no biases)
        assert parameter_count(build_model("lenet")) == 61470


class TestAlexnet:
    def test_layer_names_match_figure7(self):
        names = [w.name for w in build_model("alexnet").workloads(1)]
        assert names == ["cv1", "cv2", "cv3", "cv4", "cv5", "fc1", "fc2", "fc3"]

    def test_feature_extractor_geometry(self):
        net = build_model("alexnet")
        shapes = net.infer_shapes(1)
        assert (shapes["cv1"].height, shapes["cv1"].width) == (55, 55)
        assert (shapes["pool2"].height, shapes["pool2"].width) == (13, 13)
        assert (shapes["pool5"].height, shapes["pool5"].width) == (6, 6)

    def test_parameter_count_close_to_61m(self):
        params = parameter_count(build_model("alexnet"))
        # ~60.9M kernel weights in the single-tower variant (biases excluded)
        assert 58e6 < params < 63e6

    def test_fc_dominates_weights(self):
        net = build_model("alexnet")
        fc = sum(w.weight.size for w in net.workloads(1) if not w.is_conv)
        total = parameter_count(net)
        assert fc / total > 0.9


class TestVgg:
    @pytest.mark.parametrize(
        "name,n_conv", [("vgg11", 8), ("vgg13", 10), ("vgg16", 13), ("vgg19", 16)]
    )
    def test_conv_counts(self, name, n_conv):
        net = build_model(name)
        convs = [w for w in net.workloads(1) if w.is_conv]
        assert len(convs) == n_conv
        assert len(net.workloads(1)) == n_conv + 3

    def test_vgg16_parameter_count(self):
        params = parameter_count(build_model("vgg16"))
        # canonical VGG-16: ~138M parameters; kernels only ≈ 138.3M
        assert 130e6 < params < 140e6

    def test_final_spatial_is_7x7(self):
        net = build_model("vgg19")
        shapes = net.infer_shapes(1)
        assert (shapes["pool5"].height, shapes["pool5"].width) == (7, 7)

    def test_unknown_config_raises(self):
        from repro.models.vgg import vgg

        with pytest.raises(ValueError):
            vgg("vgg99")


class TestResnet:
    @pytest.mark.parametrize(
        "name,n_weighted", [("resnet18", 21), ("resnet34", 37), ("resnet50", 54)]
    )
    def test_weighted_counts(self, name, n_weighted):
        assert len(build_model(name).workloads(1)) == n_weighted

    @pytest.mark.parametrize(
        "name,n_blocks", [("resnet18", 8), ("resnet34", 16), ("resnet50", 16)]
    )
    def test_block_count_equals_parallel_stages(self, name, n_blocks):
        stages = build_model(name).stages(1)
        parallel = [s for s in stages if isinstance(s, ParallelStage)]
        assert len(parallel) == n_blocks

    def test_resnet50_parameter_count(self):
        params = parameter_count(build_model("resnet50"))
        # ~25.5M params; conv kernels only ≈ 23.5M
        assert 20e6 < params < 26e6

    def test_downsample_blocks_have_two_weighted_paths(self):
        stages = build_model("resnet18").stages(1)
        parallel = [s for s in stages if isinstance(s, ParallelStage)]
        # stages 2-4 first blocks have projection skips: 3 of the 8 blocks
        projection = [p for p in parallel if all(len(path) > 0 for path in p.paths)]
        assert len(projection) == 3

    def test_stage_layers_match_workloads(self):
        for name in RESNET_MODELS:
            net = build_model(name)
            assert count_stage_layers(net.stages(1)) == len(net.workloads(1))

    def test_final_classifier_input(self):
        net = build_model("resnet50")
        shapes = net.infer_shapes(1)
        assert shapes["flatten"].channels == 2048

    def test_spatial_pyramid(self):
        net = build_model("resnet18")
        shapes = net.infer_shapes(1)
        assert (shapes["pool1"].height, shapes["pool1"].width) == (56, 56)
        assert (shapes["s2b1_add"].height, shapes["s2b1_add"].width) == (28, 28)
        assert (shapes["s4b2_add"].height, shapes["s4b2_add"].width) == (7, 7)

    def test_unknown_config_raises(self):
        from repro.models.resnet import resnet

        with pytest.raises(ValueError):
            resnet("resnet1001")


class TestAllModels:
    @pytest.mark.parametrize("name", PAPER_MODELS)
    def test_shape_inference_succeeds_at_paper_batch(self, name):
        net = build_model(name)
        shapes = net.infer_shapes(512)
        assert shapes[net.output_name].batch == 512

    @pytest.mark.parametrize("name", PAPER_MODELS)
    def test_classifier_heads(self, name):
        net = build_model(name)
        out = net.infer_shapes(2)[net.output_name]
        assert out.channels == (10 if name == "lenet" else 1000)
