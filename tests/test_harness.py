"""Unit tests for the experiment harness."""

import math

import pytest

from repro.experiments.harness import (
    RunResult,
    SpeedupTable,
    geometric_mean,
    run_scheme,
    sweep,
)
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import build_model


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRunScheme:
    def test_accepts_model_name(self):
        result = run_scheme("lenet", "dp", homogeneous_array(2), batch=32)
        assert result.model == "lenet"
        assert result.scheme == "dp"
        assert result.time > 0.0

    def test_accepts_network_object(self):
        result = run_scheme(build_model("lenet"), "dp", homogeneous_array(2),
                            batch=32)
        assert result.model == "lenet"

    def test_levels_forwarded(self):
        result = run_scheme("lenet", "dp", homogeneous_array(8), batch=32,
                            levels=1)
        assert result.planned.hierarchy_levels() == 1


class TestSweep:
    @pytest.fixture(scope="class")
    def table(self):
        return sweep(["lenet", "alexnet"], heterogeneous_array(2, 2), batch=64)

    def test_dp_normalizes_to_one(self, table):
        for model in table.models:
            assert table.speedup(model, "dp") == pytest.approx(1.0)

    def test_speedups_positive(self, table):
        for model in table.models:
            for scheme in table.schemes:
                assert table.speedup(model, scheme) > 0.0

    def test_geomean_consistent(self, table):
        values = table.speedups_for("accpar")
        assert table.geomean("accpar") == pytest.approx(geometric_mean(values))

    def test_accpar_beats_dp(self, table):
        assert table.geomean("accpar") > 1.0

    def test_requires_dp_baseline(self):
        with pytest.raises(ValueError, match="dp"):
            sweep(["lenet"], homogeneous_array(2), schemes=["owt", "accpar"],
                  batch=32)

    def test_custom_scheme_subset(self):
        table = sweep(["lenet"], homogeneous_array(2),
                      schemes=["dp", "accpar"], batch=32)
        assert table.schemes == ["dp", "accpar"]


class TestEngineConfigPassthrough:
    def test_run_scheme_accepts_custom_config(self):
        from repro.sim.engine import EngineConfig
        from repro.training.optimizers import ADAM

        fast = run_scheme("lenet", "dp", homogeneous_array(2), batch=32)
        heavy = run_scheme("lenet", "dp", homogeneous_array(2), batch=32,
                           config=EngineConfig(optimizer=ADAM,
                                               overlap_compute_memory=False))
        assert heavy.report.total_time >= fast.report.total_time

    def test_dtype_bytes_passthrough(self):
        thin = run_scheme("lenet", "dp", homogeneous_array(2), batch=32,
                          dtype_bytes=2)
        wide = run_scheme("lenet", "dp", homogeneous_array(2), batch=32,
                          dtype_bytes=4)
        assert wide.report.total_time > thin.report.total_time
