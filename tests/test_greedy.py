"""Unit tests for the greedy strawman search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_model import PairCostModel
from repro.core.dp_search import search_stages
from repro.core.greedy import greedy_chain
from repro.core.stages import ShardedLayerStage, to_sharded_stages
from repro.core.types import PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.models import build_model


def chain(*dims, batch=32):
    stages = []
    for idx in range(len(dims) - 1):
        w = LayerWorkload(f"fc{idx}", batch, dims[idx], dims[idx + 1],
                          (1, 1), (1, 1), (1, 1), False)
        stages.append(ShardedLayerStage(ShardedWorkload(w)))
    return stages


@pytest.fixture
def model():
    return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))


class TestGreedy:
    def test_assigns_every_layer(self, model):
        result = greedy_chain(chain(64, 64, 64), model)
        assert set(result.assignments) == {"fc0", "fc1"}

    def test_rejects_parallel_stages(self, model):
        stages = to_sharded_stages(build_model("resnet18").stages(8))
        with pytest.raises(TypeError):
            greedy_chain(stages, model)

    def test_empty_space_rejected(self, model):
        with pytest.raises(ValueError):
            greedy_chain(chain(4, 4), model, space=())

    def test_single_layer_matches_dp(self, model):
        stages = chain(512, 128)
        assert greedy_chain(stages, model).cost == pytest.approx(
            search_stages(stages, model).cost
        )

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.integers(min_value=2, max_value=4096), min_size=2,
                 max_size=6),
        st.integers(min_value=1, max_value=256),
    )
    def test_never_beats_dp(self, widths, batch):
        """The DP is optimal; greedy can at best tie it."""
        stages = chain(*widths, batch=batch)
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))
        dp = search_stages(stages, model)
        greedy = greedy_chain(stages, model)
        assert greedy.cost >= dp.cost - 1e-12

    def test_exists_chain_where_greedy_is_suboptimal(self):
        """A myopically-cheap first choice can force an expensive
        transition later; find such a case to prove the DP earns its keep."""
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))
        # layer 1: Type-II is myopically cheapest (B*d_out < B*d_in < A(W)),
        # but layer 2's optimum is Type-II as well, and II->II transitions
        # cost beta*A(E) while III->II is free: the DP takes Type-III first
        stages = chain(4096, 4000, 8, batch=4)
        dp = search_stages(stages, model)
        greedy = greedy_chain(stages, model)
        assert greedy.cost > dp.cost * 1.2  # ~30% gap on this chain
