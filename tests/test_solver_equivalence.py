"""Property tests for the planner hot-path overhaul.

Two equivalence guarantees back the optimizations:

* the closed-form Eq. 10 solver (:func:`solve_balanced_ratio_poly` over
  polynomial coefficients) agrees with the bracketed bisection to within
  1e-9 in α, for every Table 5 transition, over every workload of every
  registered model, on both a heterogeneous and a homogeneous pair;
* step-decision memoization changes nothing: end-to-end hierarchical plans
  are bit-identical (types, ratios, per-level costs) with the cache on and
  off.
"""

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.hierarchy import collect_level_plans
from repro.core.planner import AccParScheme, Planner
from repro.core.ratio import solve_balanced_ratio, solve_balanced_ratio_poly
from repro.core.types import ALL_TYPES, ShardedWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.hardware.presets import heterogeneous_array
from repro.models import available_models, build_model

#: every Eq. 9 entry condition: the free entry boundary plus the nine
#: (prev, cur) Table 5 transitions
TRANSITIONS = [(None, t) for t in ALL_TYPES] + [
    (p, t) for p in ALL_TYPES for t in ALL_TYPES
]


def _pair_models():
    hetero = PairCostModel(make_group(TPU_V3, 4), make_group(TPU_V2, 4))
    homo = PairCostModel(make_group(TPU_V3, 4), make_group(TPU_V3, 4))
    return {"hetero": hetero, "homo": homo}


class TestClosedFormMatchesBisection:
    @pytest.mark.parametrize("model_name", available_models())
    def test_alpha_within_1e9_across_registry(self, model_name):
        net = build_model(model_name)
        pairs = _pair_models()
        checked = 0
        for workload in net.workloads(batch=16):
            sw = ShardedWorkload(workload)
            for pair_name, model in pairs.items():
                for prev, cur in TRANSITIONS:
                    poly = model.step_poly(sw, prev, cur)
                    alpha_closed, _ = solve_balanced_ratio_poly(poly)
                    alpha_bisect = solve_balanced_ratio(
                        lambda a: model.step_pair_costs(sw, prev, cur, a)[:2]
                    )
                    assert abs(alpha_closed - alpha_bisect) <= 1e-9, (
                        model_name, pair_name, workload.name, prev, cur,
                        alpha_closed, alpha_bisect,
                    )
                    checked += 1
        assert checked == len(list(net.workloads(batch=16))) * 2 * len(TRANSITIONS)

    def test_poly_costs_match_closure_costs(self):
        """The coefficient derivation must reproduce step_pair_costs exactly
        at arbitrary α, not just at the balanced point."""
        net = build_model("alexnet")
        model = PairCostModel(make_group(TPU_V3, 4), make_group(TPU_V2, 4))
        for workload in net.workloads(batch=16):
            sw = ShardedWorkload(workload)
            for prev, cur in TRANSITIONS:
                poly = model.step_poly(sw, prev, cur)
                for alpha in (0.001, 0.25, 0.5, 0.75, 0.999):
                    ci, cj = model.step_pair_costs(sw, prev, cur, alpha)[:2]
                    pi, pj = poly.costs(alpha)
                    assert pi == pytest.approx(ci, rel=1e-12)
                    assert pj == pytest.approx(cj, rel=1e-12)


class TestMemoizationChangesNothing:
    @pytest.mark.parametrize("model_name", ["lenet", "alexnet", "resnet18", "trident"])
    def test_plans_bit_identical_with_and_without_memo(self, model_name):
        net = build_model(model_name)
        array = heterogeneous_array()
        with_memo = Planner(array, AccParScheme(memoize=True)).plan(net, 64)
        without = Planner(array, AccParScheme(memoize=False)).plan(net, 64)

        memo_levels = collect_level_plans(with_memo.plan)
        plain_levels = collect_level_plans(without.plan)
        assert len(memo_levels) == len(plain_levels)
        for memo, plain in zip(memo_levels, plain_levels):
            assert memo.cost == plain.cost  # bit-identical, not approx
            assert set(memo.assignments) == set(plain.assignments)
            for key in memo.assignments:
                m, p = memo.assignments[key], plain.assignments[key]
                assert m.ptype is p.ptype, (model_name, key)
                assert m.ratio == p.ratio, (model_name, key)

    def test_homogeneous_array_also_identical(self):
        net = build_model("alexnet")
        array = make_group(TPU_V3, 16)
        with_memo = Planner(array, AccParScheme(memoize=True)).plan(net, 64)
        without = Planner(array, AccParScheme(memoize=False)).plan(net, 64)
        for memo, plain in zip(
            collect_level_plans(with_memo.plan), collect_level_plans(without.plan)
        ):
            assert memo.cost == plain.cost
            assert {k: (v.ptype, v.ratio) for k, v in memo.assignments.items()} == {
                k: (v.ptype, v.ratio) for k, v in plain.assignments.items()
            }
