"""Documentation tests: the README's code must actually run.

Extracts every ``python`` fenced block from README.md and executes it in a
shared namespace — documentation rot fails CI instead of users.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(path: Path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_readme_exists_with_snippets(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README should contain python examples"

    def test_readme_snippets_execute(self):
        namespace = {}
        for block in python_blocks(ROOT / "README.md"):
            exec(compile(block, "README.md", "exec"), namespace)

    def test_quickstart_import_line_is_valid(self):
        import repro

        for name in ("AccParPlanner", "build_model", "evaluate",
                     "heterogeneous_array"):
            assert hasattr(repro, name)


class TestTutorialSnippets:
    def test_tutorial_snippets_execute(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # snippets write plan files into cwd
        namespace = {}
        for block in python_blocks(ROOT / "docs" / "tutorial.md"):
            exec(compile(block, "tutorial.md", "exec"), namespace)


class TestProjectDocs:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/paper_mapping.md", "docs/tutorial.md",
                 "docs/serving.md", "docs/performance.md",
                 "docs/observability.md", "docs/plan-format.md"]
    )
    def test_documents_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists()
        assert len(path.read_text()) > 500

    def test_design_references_real_bench_files(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"benchmarks/(\w+\.py)", text):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_experiments_references_real_artifacts(self):
        """EXPERIMENTS.md may only cite result files a bench produces."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        bench_sources = "".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("*.py")
        )
        for match in set(re.findall(r"results/([\w.]+\.txt)", text)):
            assert match in bench_sources, match
