"""Unit tests for the partition algebra (Section 3 / Tables 3 and 6)."""

import pytest

from repro.core.types import (
    ALL_TYPES,
    HYPAR_TYPES,
    PARTITIONED_DIM,
    PSUM_PHASE,
    PartitionType,
    Phase,
    REPLICATED_TENSOR,
    ShardedWorkload,
)
from repro.graph.layers import LayerWorkload
from repro.plan.ir import JoinAlignment, LayerAssignment, LayerPartition, LevelPlan


def fc_workload(batch=8, d_in=6, d_out=4, name="fc"):
    return LayerWorkload(name, batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)


def conv_workload(batch=2, d_in=3, d_out=5, in_hw=(8, 8), out_hw=(8, 8),
                  kernel=(3, 3), name="cv"):
    return LayerWorkload(name, batch, d_in, d_out, in_hw, out_hw, kernel, True)


class TestTypeSpace:
    def test_three_types(self):
        assert len(ALL_TYPES) == 3

    def test_hypar_misses_type_iii(self):
        assert PartitionType.TYPE_III not in HYPAR_TYPES
        assert set(HYPAR_TYPES) == {PartitionType.TYPE_I, PartitionType.TYPE_II}

    def test_str(self):
        assert str(PartitionType.TYPE_III) == "Type-III"

    def test_table3_rotational_symmetry(self):
        """Each type partitions a distinct dimension, replicates a distinct
        tensor and psums in a distinct phase — the paper's Table 3."""
        assert PARTITIONED_DIM[PartitionType.TYPE_I] == "B"
        assert PARTITIONED_DIM[PartitionType.TYPE_II] == "D_i"
        assert PARTITIONED_DIM[PartitionType.TYPE_III] == "D_o"
        assert len(set(PARTITIONED_DIM.values())) == 3
        assert len(set(REPLICATED_TENSOR.values())) == 3
        assert len(set(PSUM_PHASE.values())) == 3
        assert PSUM_PHASE[PartitionType.TYPE_I] is Phase.GRADIENT
        assert PSUM_PHASE[PartitionType.TYPE_II] is Phase.FORWARD
        assert PSUM_PHASE[PartitionType.TYPE_III] is Phase.BACKWARD


class TestShardedWorkloadSizes:
    def test_unsharded_fc_sizes(self):
        sw = ShardedWorkload(fc_workload())
        assert sw.a_input_fm() == 8 * 6
        assert sw.a_output_fm() == 8 * 4
        assert sw.a_weight() == 6 * 4

    def test_unsharded_conv_sizes(self):
        sw = ShardedWorkload(conv_workload())
        assert sw.a_input_fm() == 2 * 3 * 64
        assert sw.a_output_fm() == 2 * 5 * 64
        assert sw.a_weight() == 3 * 5 * 9

    def test_psum_tensor_per_type(self):
        sw = ShardedWorkload(fc_workload())
        assert sw.a_psum(PartitionType.TYPE_I) == sw.a_weight()
        assert sw.a_psum(PartitionType.TYPE_II) == sw.a_output_fm()
        assert sw.a_psum(PartitionType.TYPE_III) == sw.a_input_fm()

    def test_replicated_tensor_per_type(self):
        sw = ShardedWorkload(fc_workload())
        assert sw.a_replicated(PartitionType.TYPE_I) == sw.a_weight()
        assert sw.a_replicated(PartitionType.TYPE_II) == sw.a_output_fm()
        assert sw.a_replicated(PartitionType.TYPE_III) == sw.a_input_fm()


class TestTable6Flops:
    def test_fc_forward(self):
        # A(F_{l+1}) * (2 D_i - 1)
        sw = ShardedWorkload(fc_workload(batch=8, d_in=6, d_out=4))
        assert sw.flops_forward() == 32 * 11

    def test_fc_backward(self):
        # A(E_l) * (2 D_o - 1)
        sw = ShardedWorkload(fc_workload(batch=8, d_in=6, d_out=4))
        assert sw.flops_backward() == 48 * 7

    def test_fc_gradient(self):
        # A(W) * (2 B - 1)
        sw = ShardedWorkload(fc_workload(batch=8, d_in=6, d_out=4))
        assert sw.flops_gradient() == 24 * 15

    def test_conv_forward_scales_with_kernel(self):
        # per Section 4.3: reduction length = D_i * K_h * K_w
        sw = ShardedWorkload(conv_workload())
        assert sw.flops_forward() == sw.a_output_fm() * (2 * 3 * 9 - 1)

    def test_conv_gradient_scales_with_output_map(self):
        sw = ShardedWorkload(conv_workload())
        assert sw.flops_gradient() == sw.a_weight() * (2 * 2 * 64 - 1)

    def test_total_is_sum_of_phases(self):
        sw = ShardedWorkload(conv_workload())
        assert sw.flops_total() == pytest.approx(
            sw.flops_forward() + sw.flops_backward() + sw.flops_gradient()
        )

    def test_phase_accessor(self):
        sw = ShardedWorkload(fc_workload())
        assert sw.flops_phase(Phase.FORWARD) == sw.flops_forward()
        assert sw.flops_phase(Phase.BACKWARD) == sw.flops_backward()
        assert sw.flops_phase(Phase.GRADIENT) == sw.flops_gradient()

    def test_subunit_reduction_never_negative(self):
        sw = ShardedWorkload(fc_workload(d_in=6), din_frac=0.01)
        assert sw.flops_forward() >= 0.0


class TestSharding:
    def test_type_i_shards_batch(self):
        sw = ShardedWorkload(fc_workload()).shard(PartitionType.TYPE_I, 0.25)
        assert sw.batch == pytest.approx(2.0)
        assert sw.d_in == 6 and sw.d_out == 4

    def test_type_ii_shards_din(self):
        sw = ShardedWorkload(fc_workload()).shard(PartitionType.TYPE_II, 0.5)
        assert sw.d_in == pytest.approx(3.0)

    def test_type_iii_shards_dout(self):
        sw = ShardedWorkload(fc_workload()).shard(PartitionType.TYPE_III, 0.5)
        assert sw.d_out == pytest.approx(2.0)

    def test_shards_compose_multiplicatively(self):
        sw = (
            ShardedWorkload(fc_workload())
            .shard(PartitionType.TYPE_I, 0.5)
            .shard(PartitionType.TYPE_I, 0.5)
        )
        assert sw.batch_frac == pytest.approx(0.25)

    def test_shard_volume_conservation(self):
        """The alpha- and beta-shards partition the split dimension exactly
        and leave the other two dimensions untouched."""
        for ptype in ALL_TYPES:
            base = ShardedWorkload(conv_workload())
            left = base.shard(ptype, 0.3)
            right = base.shard(ptype, 0.7)
            if ptype is PartitionType.TYPE_I:
                assert left.batch + right.batch == pytest.approx(base.batch)
                assert left.d_in == base.d_in and left.d_out == base.d_out
            elif ptype is PartitionType.TYPE_II:
                assert left.d_in + right.d_in == pytest.approx(base.d_in)
                assert left.batch == base.batch and left.d_out == base.d_out
            else:
                assert left.d_out + right.d_out == pytest.approx(base.d_out)
                assert left.batch == base.batch and left.d_in == base.d_in

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            ShardedWorkload(fc_workload()).shard(PartitionType.TYPE_I, 0.0)
        with pytest.raises(ValueError):
            ShardedWorkload(fc_workload()).shard(PartitionType.TYPE_I, 1.5)

    def test_invalid_fraction_field_raises(self):
        with pytest.raises(ValueError):
            ShardedWorkload(fc_workload(), batch_frac=0.0)

    def test_key_distinguishes_fractions(self):
        a = ShardedWorkload(fc_workload(), batch_frac=0.5)
        b = ShardedWorkload(fc_workload(), batch_frac=0.25)
        assert a.key() != b.key()
        assert a.key() == ShardedWorkload(fc_workload(), batch_frac=0.5).key()


class TestLayerPartition:
    def test_ratio_bounds(self):
        with pytest.raises(ValueError):
            LayerPartition(PartitionType.TYPE_I, 0.0)
        with pytest.raises(ValueError):
            LayerPartition(PartitionType.TYPE_I, 1.0)

    def test_str(self):
        lp = LayerPartition(PartitionType.TYPE_II, 0.25)
        assert "Type-II" in str(lp) and "0.250" in str(lp)


class TestLevelPlan:
    def test_layer_assignments_filter_join_entries(self):
        plan = LevelPlan(
            entries=(
                LayerAssignment("c1", PartitionType.TYPE_I),
                JoinAlignment("fork@x", PartitionType.TYPE_II),
            )
        )
        assert list(plan.layer_assignments()) == ["c1"]
        assert [j.stage for j in plan.joins()] == ["fork@x"]

    def test_type_counts(self):
        plan = LevelPlan(
            entries=(
                LayerAssignment("a", PartitionType.TYPE_I),
                LayerAssignment("b", PartitionType.TYPE_I),
                LayerAssignment("c", PartitionType.TYPE_III),
            )
        )
        counts = plan.type_counts()
        assert counts[PartitionType.TYPE_I] == 2
        assert counts[PartitionType.TYPE_II] == 0
        assert counts[PartitionType.TYPE_III] == 1
