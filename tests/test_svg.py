"""Unit tests for the SVG chart generator."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.harness import SpeedupTable
from repro.experiments.svg import _nice_ceiling, grouped_bar_svg, line_chart_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def table():
    t = SpeedupTable(models=["m1", "m2"], schemes=["dp", "accpar"])
    t.times = {
        "m1": {"dp": 10.0, "accpar": 2.0},
        "m2": {"dp": 8.0, "accpar": 4.0},
    }
    return t


class TestNiceCeiling:
    @pytest.mark.parametrize("value,expected", [
        (0.7, 1.0), (1.0, 1.0), (3.4, 5.0), (7.2, 10.0), (16.0, 20.0),
        (42.0, 50.0), (99.0, 100.0),
    ])
    def test_values(self, value, expected):
        assert _nice_ceiling(value) == expected

    def test_nonpositive(self):
        assert _nice_ceiling(0.0) == 1.0


class TestGroupedBars:
    def test_valid_xml(self, table):
        root = ET.fromstring(grouped_bar_svg(table, "demo"))
        assert root.tag == f"{SVG_NS}svg"

    def test_bar_count(self, table):
        root = ET.fromstring(grouped_bar_svg(table, "demo"))
        rects = root.findall(f"{SVG_NS}rect")
        # background + 4 bars + 2 legend swatches
        assert len(rects) == 1 + 4 + 2

    def test_tooltips_carry_values(self, table):
        svg = grouped_bar_svg(table, "demo")
        assert "m1 / accpar: 5.00x" in svg

    def test_title_escaped(self, table):
        svg = grouped_bar_svg(table, "a < b & c")
        assert "a &lt; b &amp; c" in svg


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart_svg([1, 2, 3], {"accpar": [1.0, 2.0, 3.0]}, "t")
        root = ET.fromstring(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 1
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == 3

    def test_multiple_series(self):
        svg = line_chart_svg(
            [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]}, "t", x_label="h"
        )
        root = ET.fromstring(svg)
        assert len(root.findall(f"{SVG_NS}polyline")) == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            line_chart_svg([1, 2], {"a": [1.0]}, "t")

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            line_chart_svg([1], {}, "t")
