"""Unit tests for the reference numpy trainer (the numeric ground truth)."""

import numpy as np
import pytest

from repro.numeric.reference import (
    MlpSpec,
    numerical_gradients,
    reference_step,
    relu,
    relu_grad,
)


class TestMlpSpec:
    def test_layer_count(self):
        assert MlpSpec([4, 8, 2]).n_layers == 2

    def test_rejects_single_width(self):
        with pytest.raises(ValueError):
            MlpSpec([4])

    def test_rejects_unsplittable_width(self):
        with pytest.raises(ValueError):
            MlpSpec([4, 1, 4])

    def test_init_weights_shapes_and_determinism(self):
        spec = MlpSpec([4, 8, 2])
        w1 = spec.init_weights(seed=3)
        w2 = spec.init_weights(seed=3)
        assert [w.shape for w in w1] == [(4, 8), (8, 2)]
        for a, b in zip(w1, w2):
            np.testing.assert_array_equal(a, b)


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0])
        )

    def test_relu_grad(self):
        np.testing.assert_array_equal(
            relu_grad(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 1.0])
        )


class TestReferenceStep:
    @pytest.fixture
    def setup(self):
        spec = MlpSpec([6, 10, 4])
        rng = np.random.default_rng(0)
        weights = spec.init_weights(0)
        x = rng.standard_normal((5, 6))
        target = rng.standard_normal((5, 4))
        return spec, weights, x, target

    def test_shapes(self, setup):
        spec, weights, x, target = setup
        trace = reference_step(weights, x, target)
        assert trace.activations[0].shape == (5, 6)
        assert trace.activations[-1].shape == (5, 4)
        assert [g.shape for g in trace.gradients] == [(6, 10), (10, 4)]

    def test_loss_definition(self, setup):
        _, weights, x, target = setup
        trace = reference_step(weights, x, target)
        expected = 0.5 * np.sum((trace.activations[-1] - target) ** 2)
        assert trace.loss == pytest.approx(expected)

    def test_hidden_activations_nonnegative(self, setup):
        _, weights, x, target = setup
        trace = reference_step(weights, x, target)
        assert np.all(trace.activations[1] >= 0.0)

    def test_output_error_is_residual(self, setup):
        _, weights, x, target = setup
        trace = reference_step(weights, x, target)
        np.testing.assert_allclose(
            trace.errors[-1], trace.activations[-1] - target
        )

    def test_gradients_match_finite_differences(self, setup):
        """The decisive check: analytic backward/gradient vs central
        differences of the loss."""
        _, weights, x, target = setup
        trace = reference_step(weights, x, target)
        sampled = numerical_gradients(weights, x, target)
        for layer_idx, entries in enumerate(sampled):
            for (i, j), fd in entries:
                analytic = trace.gradients[layer_idx][i, j]
                assert analytic == pytest.approx(fd, rel=1e-5, abs=1e-6)

    def test_deeper_network_gradcheck(self):
        spec = MlpSpec([5, 7, 6, 3])
        rng = np.random.default_rng(11)
        weights = spec.init_weights(11)
        x = rng.standard_normal((4, 5))
        target = rng.standard_normal((4, 3))
        trace = reference_step(weights, x, target)
        sampled = numerical_gradients(weights, x, target, max_entries=10)
        for layer_idx, entries in enumerate(sampled):
            for (i, j), fd in entries:
                assert trace.gradients[layer_idx][i, j] == pytest.approx(
                    fd, rel=1e-4, abs=1e-6
                )
