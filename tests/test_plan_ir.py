"""Unit tests for the typed plan IR (repro.plan.ir)."""

import pytest

from repro.core.types import PartitionType
from repro.plan.ir import (
    HierarchicalPlan,
    JoinAlignment,
    LayerAssignment,
    LayerPartition,
    LevelPlan,
    PathExit,
    SearchResult,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


class TestEntryTypes:
    def test_layer_assignment_partition_view(self):
        entry = LayerAssignment("cv1", II, 0.25)
        assert entry.ratio == 0.25
        lp = entry.partition
        assert isinstance(lp, LayerPartition)
        assert lp.ptype is II and lp.ratio == 0.25

    def test_join_alignment_partition_view(self):
        entry = JoinAlignment("fork@x", III, 0.4)
        assert entry.partition.ptype is III

    def test_path_exit_partition_view(self):
        entry = PathExit("fork@x", 1, I, 0.6)
        assert entry.path_index == 1
        assert entry.partition.ptype is I

    def test_entries_tolerate_invalid_alpha(self):
        """Entry constructors accept out-of-range alphas so that invalid
        plans can be *loaded and reported* rather than crash on read."""
        assert LayerAssignment("x", I, 1.5).alpha == 1.5
        assert JoinAlignment("s", I, -0.1).alpha == -0.1

    def test_layer_partition_still_validates(self):
        with pytest.raises(ValueError):
            LayerPartition(I, 1.5)

    def test_invalid_alpha_partition_view_raises(self):
        with pytest.raises(ValueError):
            _ = LayerAssignment("x", I, 1.5).partition


class TestLevelPlanConstruction:
    def test_duplicate_layer_rejected(self):
        with pytest.raises(ValueError):
            LevelPlan(entries=(LayerAssignment("a", I),
                               LayerAssignment("a", II)))

    def test_duplicate_join_rejected(self):
        with pytest.raises(ValueError):
            LevelPlan(entries=(JoinAlignment("s", I), JoinAlignment("s", II)))

    def test_duplicate_exit_rejected(self):
        with pytest.raises(ValueError):
            LevelPlan(entries=(PathExit("s", 0, I), PathExit("s", 0, II)))

    def test_same_stage_different_paths_allowed(self):
        level = LevelPlan(entries=(PathExit("s", 0, I), PathExit("s", 1, II)))
        assert len(level.path_exits()) == 2


class TestLevelPlanAccessors:
    @pytest.fixture
    def level(self):
        return LevelPlan(
            entries=(
                LayerAssignment("pre", I, 0.5),
                PathExit("blk", 0, II, 0.5),
                PathExit("blk", 1, I, 0.5),
                JoinAlignment("blk", III, 0.5),
                LayerAssignment("post", III, 0.3),
            ),
            cost=4.2,
            scheme="accpar",
        )

    def test_layers_in_entry_order(self, level):
        assert [e.name for e in level.layers()] == ["pre", "post"]

    def test_assignment_and_partition(self, level):
        assert level.assignment("post").ptype is III
        assert level.partition("post").ratio == pytest.approx(0.3)
        with pytest.raises(KeyError):
            level.assignment("ghost")

    def test_alignment_for(self, level):
        assert level.alignment_for("blk").state is III
        assert level.alignment_for("nope") is None

    def test_path_exit(self, level):
        assert level.path_exit("blk", 0).state is II
        assert level.path_exit("blk", 2) is None

    def test_alignments_for_orders_exits_then_join(self, level):
        seq = level.alignments_for("blk")
        assert [type(e).__name__ for e in seq] == [
            "PathExit", "PathExit", "JoinAlignment"
        ]
        assert [getattr(e, "path_index", None) for e in seq] == [0, 1, None]

    def test_assignments_property_is_fresh_copy(self, level):
        view = level.assignments
        assert set(view) == {"pre", "post"}
        view["pre"] = LayerPartition(II, 0.9)
        assert level.assignments["pre"].ptype is I

    def test_layer_assignments_excludes_synthetic_entries(self, level):
        assert set(level.layer_assignments()) == {"pre", "post"}

    def test_equality_ignores_caches(self, level):
        clone = LevelPlan(entries=level.entries, cost=level.cost,
                          scheme=level.scheme)
        clone.layer_assignments()  # populate internal cache on one side only
        assert clone == level

    def test_type_counts(self, level):
        counts = level.type_counts()
        assert counts[I] == 1 and counts[III] == 1 and counts[II] == 0


class TestHierarchicalPlan:
    def test_leaf_depth(self):
        leaf = HierarchicalPlan(level_plan=None)
        assert leaf.is_leaf and leaf.depth() == 0

    def test_nested_depth(self):
        inner = HierarchicalPlan(LevelPlan())
        outer = HierarchicalPlan(LevelPlan(), left=inner,
                                 right=HierarchicalPlan(None))
        assert outer.depth() == 2

    def test_validate_delegates(self):
        from repro.models import build_model

        plan = HierarchicalPlan(LevelPlan())  # empty level: all layers missing
        issues = plan.validate(build_model("lenet"), batch=8)
        assert any("without assignment" in msg for msg in issues)


class TestSearchResult:
    def test_to_level_plan_preserves_entries_and_cost(self):
        entries = (LayerAssignment("a", I, 0.5), JoinAlignment("s", II, 0.5))
        result = SearchResult(entries=entries, cost=2.5, exit_state=II)
        level = result.to_level_plan("dp")
        assert level.entries == entries
        assert level.cost == 2.5 and level.scheme == "dp"

    def test_assignments_view_layers_only(self):
        result = SearchResult(
            entries=(LayerAssignment("a", I, 0.5), JoinAlignment("s", II, 0.5)),
            cost=0.0,
            exit_state=None,
        )
        assert set(result.assignments) == {"a"}
        assert result.types() == {"a": I}


class TestNoMagicKeyLiterals:
    def test_no_source_outside_plan_and_serialize_uses_magic_keys(self):
        """The @join:/@exit: string convention must not leak outside the
        serializer's v1-migration shim (grep-enforced acceptance criterion)."""
        from pathlib import Path

        # construct the needles dynamically so this file never matches itself
        needles = ("@" + "join:", "@" + "exit:")
        src = Path(__file__).resolve().parent.parent / "src"
        offenders = []
        for path in src.rglob("*.py"):
            rel = path.relative_to(src).as_posix()
            if rel.startswith("repro/plan/") or rel == "repro/core/serialize.py":
                continue
            text = path.read_text()
            if any(needle in text for needle in needles):
                offenders.append(rel)
        assert offenders == []
