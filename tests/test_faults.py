"""Unit tests for failure injection and straggler recovery."""

import pytest

from repro.core.planner import AccParPlanner
from repro.experiments.faults import (
    StragglerOutcome,
    degrade_tree,
    straggler_experiment,
    throttle_spec,
)
from repro.hardware import TPU_V3, bisection_tree, homogeneous_array
from repro.models import build_model


class TestThrottleSpec:
    def test_compute_throttled(self):
        degraded = throttle_spec(TPU_V3, 0.5, 1.0)
        assert degraded.flops == TPU_V3.flops * 0.5
        assert degraded.network_bandwidth == TPU_V3.network_bandwidth
        assert degraded.memory_bytes == TPU_V3.memory_bytes
        assert "degraded" in degraded.name

    def test_network_throttled(self):
        degraded = throttle_spec(TPU_V3, 1.0, 0.25)
        assert degraded.network_bandwidth == TPU_V3.network_bandwidth * 0.25

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            throttle_spec(TPU_V3, 0.0, 1.0)
        with pytest.raises(ValueError):
            throttle_spec(TPU_V3, 1.0, 1.5)


class TestDegradeTree:
    @pytest.fixture
    def tree(self):
        return bisection_tree(homogeneous_array(8), levels=3)

    def test_structure_preserved(self, tree):
        degraded = degrade_tree(tree, 2, compute_factor=0.5)
        assert degraded.depth() == tree.depth()
        assert len(list(degraded.leaves())) == len(list(tree.leaves()))

    def test_exactly_n_boards_degraded(self, tree):
        degraded = degrade_tree(tree, 3, compute_factor=0.5)
        throttled = [m for m in degraded.group.members if "degraded" in m.name]
        assert len(throttled) == 3

    def test_internal_groups_rebuilt(self, tree):
        degraded = degrade_tree(tree, 1, compute_factor=0.5)
        # the root group's flops dropped by exactly half of one board
        assert degraded.group.flops == pytest.approx(
            tree.group.flops - 0.5 * TPU_V3.flops
        )
        # and the containing subtree reflects it too
        sides = [degraded.left.group.flops, degraded.right.group.flops]
        assert min(sides) < max(sides)

    def test_zero_degraded_identity(self, tree):
        degraded = degrade_tree(tree, 0)
        assert degraded.group.signature() == tree.group.signature()

    def test_bad_count_rejected(self, tree):
        with pytest.raises(ValueError):
            degrade_tree(tree, 9)


class TestStragglerExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        return straggler_experiment("alexnet", homogeneous_array(8),
                                    scheme="accpar", n_degraded=1,
                                    compute_factor=0.25, batch=128)

    def test_straggler_slows_stale_plan(self, outcome):
        assert outcome.stale_plan_time >= outcome.healthy_time

    def test_replanning_recovers(self, outcome):
        assert outcome.replanned_time < outcome.stale_plan_time
        assert outcome.recovery_gain > 1.0

    def test_dp_cannot_adapt(self):
        """Equal-ratio DP re-plans to the same 1/2 splits: no recovery."""
        outcome = straggler_experiment("alexnet", homogeneous_array(8),
                                       scheme="dp", n_degraded=1,
                                       compute_factor=0.25, batch=128)
        assert outcome.recovery_gain == pytest.approx(1.0, abs=1e-9)

    def test_hypar_cannot_adapt_either(self):
        outcome = straggler_experiment("alexnet", homogeneous_array(8),
                                       scheme="hypar", n_degraded=1,
                                       compute_factor=0.25, batch=128)
        assert outcome.recovery_gain == pytest.approx(1.0, abs=1e-9)

    def test_accpar_recovery_beats_dp(self, outcome):
        dp = straggler_experiment("alexnet", homogeneous_array(8),
                                  scheme="dp", n_degraded=1,
                                  compute_factor=0.25, batch=128)
        assert outcome.recovery_gain > dp.recovery_gain

    def test_network_straggler(self):
        outcome = straggler_experiment("alexnet", homogeneous_array(8),
                                       scheme="accpar", n_degraded=1,
                                       compute_factor=1.0,
                                       network_factor=0.25, batch=128)
        assert outcome.stale_plan_time > outcome.healthy_time
        assert outcome.recovery_gain >= 1.0 - 1e-9
