"""Core search/cost edge cases beyond the main unit suites."""

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.dp_search import SearchResult, search_stages
from repro.core.hierarchy import collect_level_plans, plan_tree
from repro.core.planner import AccParScheme, Planner
from repro.core.stages import (
    ShardedLayerStage,
    ShardedParallelStage,
    to_sharded_stages,
)
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.plan.ir import HierarchicalPlan, LayerAssignment, LevelPlan
from repro.baselines import get_scheme
from repro.graph.layers import LayerWorkload
from repro.hardware import (
    TPU_V2,
    TPU_V3,
    bisection_tree,
    heterogeneous_array,
    homogeneous_array,
    make_group,
    merge_groups,
)
from repro.models import build_model

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def fc_stage(name, batch=16, d_in=32, d_out=32):
    w = LayerWorkload(name, batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    return ShardedLayerStage(ShardedWorkload(w))


class TestBoundaryStepTaxonomy:
    """boundary_step's cost class for all nine (from, to) pairs."""

    @pytest.fixture
    def model(self):
        return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))

    def test_free_transitions(self, model):
        for tt, t in [(I, I), (II, III), (III, II)]:
            assert model.boundary_step(1e6, tt, t).cost == 0.0

    def test_single_tensor_transitions(self, model):
        alpha = model.nominal_alpha()
        for tt, t in [(I, III), (III, III), (II, I), (II, II)]:
            d = model.boundary_step(1e6, tt, t)
            expected_i = (1 - alpha) * 1e6 * 2 / model.b_i
            expected_j = alpha * 1e6 * 2 / model.b_j
            assert d.cost == pytest.approx(max(expected_i, expected_j))

    def test_cross_transitions(self, model):
        alpha = model.nominal_alpha()
        for tt, t in [(I, II), (III, I)]:
            d = model.boundary_step(1e6, tt, t)
            amount = alpha * (1 - alpha) * 2e6 * 2
            assert d.cost == pytest.approx(
                max(amount / model.b_i, amount / model.b_j)
            )

    def test_explicit_alpha_override(self, model):
        a = model.boundary_step(1e6, I, III, alpha=0.9).cost
        b = model.boundary_step(1e6, I, III, alpha=0.1).cost
        assert a != b


class TestSearchDegeneracies:
    def test_singleton_space(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1))
        result = search_stages([fc_stage("a"), fc_stage("b")], model,
                               space=(II,))
        assert set(result.types().values()) == {II}

    def test_identical_layers_get_identical_types(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1))
        stages = [fc_stage(f"l{i}") for i in range(6)]
        result = search_stages(stages, model)
        # all-but-first layers see identical step costs; the plan should not
        # oscillate through costly transitions
        types = list(result.types().values())
        transitions = set(zip(types, types[1:]))
        from repro.core.cost_model import ZERO_TRANSITIONS

        assert transitions <= set(ZERO_TRANSITIONS) | {
            (t, t) for t in ALL_TYPES
        }

    def test_search_result_types_view(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1))
        result = search_stages([fc_stage("x")], model)
        assert isinstance(result, SearchResult)
        assert set(result.types()) == {"x"}


class TestHierarchyEdgeCases:
    def test_three_way_heterogeneous_array(self):
        """Three accelerator generations bisect into clean type groups."""
        gen_a = TPU_V2
        gen_b = TPU_V3
        from repro.hardware import AcceleratorSpec

        gen_c = AcceleratorSpec("gen-c", flops=800e12, memory_bytes=2**37,
                                memory_bandwidth=8e12, network_bandwidth=4e9)
        array = merge_groups(
            make_group(gen_a, 4), make_group(gen_b, 4), make_group(gen_c, 8)
        )
        tree = bisection_tree(array, levels=4)
        # the first split must put the fastest generation on one side alone
        left_names = {m.name for m in tree.left.group.members}
        right_names = {m.name for m in tree.right.group.members}
        assert left_names == {"gen-c"} or right_names == {"gen-c"}

    def test_plan_tree_on_unbalanced_tree(self):
        """Odd-sized arrays produce unbalanced pairing trees; planning and
        evaluation must still work."""
        from repro.sim.executor import evaluate

        array = homogeneous_array(6)
        planned = Planner(array, get_scheme("accpar")).plan(
            build_model("lenet"), batch=32
        )
        report = evaluate(planned)
        assert report.total_time > 0.0

    def test_level_plans_collected_in_preorder(self):
        tree = bisection_tree(homogeneous_array(4), levels=2)
        stages = to_sharded_stages(build_model("lenet").stages(16))
        plan = plan_tree(tree, stages, AccParScheme())
        plans = collect_level_plans(plan)
        assert len(plans) == 3
        assert plans[0] is plan.level_plan

    def test_hierarchical_plan_depth_of_leaf(self):
        leaf = HierarchicalPlan(level_plan=None)
        assert leaf.depth() == 0
        assert leaf.is_leaf

    def test_level_plan_partition_accessor(self):
        level = LevelPlan(entries=(LayerAssignment("a", I, 0.5),))
        assert level.partition("a").ptype is I
        with pytest.raises(KeyError):
            level.partition("ghost")


class TestPlannerCornerCases:
    def test_zero_level_plan_on_multiboard_array(self):
        planned = Planner(homogeneous_array(4), get_scheme("accpar"),
                          levels=0).plan(build_model("lenet"), 16)
        assert planned.hierarchy_levels() == 0
        assert planned.plan.is_leaf

    def test_network_without_weighted_layers(self):
        from repro.graph import Input, Network, ReLU

        net = Network("empty", Input("in", channels=4, height=2, width=2))
        net.add(ReLU("r"))
        planned = Planner(homogeneous_array(2), get_scheme("accpar")).plan(
            net, batch=4
        )
        assert planned.root_level_plan.layer_assignments() == {}

    def test_levels_deeper_than_array_saturate(self):
        planned = Planner(homogeneous_array(4), get_scheme("dp"),
                          levels=10).plan(build_model("lenet"), 16)
        assert planned.hierarchy_levels() == 2
