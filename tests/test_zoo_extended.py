"""Tests for the extended model zoo (beyond the paper's nine) and
cross-model planning smoke coverage."""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.core.verify import verify_planned
from repro.graph import ParallelStage, validate_network
from repro.hardware import heterogeneous_array
from repro.models import PAPER_MODELS, available_models, build_model
from repro.sim.executor import evaluate


def parameter_count(net, batch=1):
    return sum(w.weight.size for w in net.workloads(batch))


class TestDeepResnets:
    @pytest.mark.parametrize(
        "name,n_weighted", [("resnet101", 105), ("resnet152", 156)]
    )
    def test_weighted_counts(self, name, n_weighted):
        assert len(build_model(name).workloads(1)) == n_weighted

    @pytest.mark.parametrize("name", ["resnet101", "resnet152"])
    def test_validate(self, name):
        assert validate_network(build_model(name)) == []

    def test_resnet101_parameter_count(self):
        # ~44.5M params; conv kernels only ≈ 42.4M
        params = parameter_count(build_model("resnet101"))
        assert 40e6 < params < 46e6

    def test_resnet152_parameter_count(self):
        # ~60.2M params; conv kernels only ≈ 58M
        params = parameter_count(build_model("resnet152"))
        assert 55e6 < params < 62e6

    def test_block_counts(self):
        stages = build_model("resnet101").stages(2)
        blocks = [s for s in stages if isinstance(s, ParallelStage)]
        assert len(blocks) == 3 + 4 + 23 + 3

    def test_not_in_paper_models(self):
        assert "resnet101" not in PAPER_MODELS
        assert "resnet152" not in PAPER_MODELS
        assert "resnet101" in available_models()

    def test_resnet101_plans_and_simulates(self):
        planned = Planner(heterogeneous_array(2, 2), get_scheme("accpar")).plan(
            build_model("resnet101"), batch=32
        )
        assert verify_planned(planned) == []
        report = evaluate(planned)
        assert report.total_time > 0.0
        assert report.fits_memory


class TestZooConsistency:
    def test_family_parameter_ordering(self):
        params = [
            parameter_count(build_model(n))
            for n in ("resnet18", "resnet34", "resnet50", "resnet101",
                      "resnet152")
        ]
        assert params == sorted(params)

    def test_vgg_family_parameter_ordering(self):
        params = [
            parameter_count(build_model(n))
            for n in ("vgg11", "vgg13", "vgg16", "vgg19")
        ]
        assert params == sorted(params)

    def test_deeper_models_have_more_flops(self):
        from repro.core.types import ShardedWorkload

        def flops(name):
            return sum(
                ShardedWorkload(w).flops_total()
                for w in build_model(name).workloads(8)
            )

        assert flops("resnet152") > flops("resnet101") > flops("resnet50")

    def test_all_registry_models_build_and_validate(self):
        for name in available_models():
            net = build_model(name)
            warnings = validate_network(net)
            assert warnings == [], (name, warnings)
