"""Profile aggregation, trace persistence, and atomic artifact writes."""

import json

import pytest

from repro.ioutil import atomic_write_text
from repro.obs.export import (
    chrome_trace_document,
    profile_rows,
    render_profile,
    save_trace_document,
)
from repro.obs.tracing import Tracer


def synthetic_spans():
    """A deterministic two-thread-free span tree with known durations.

    parent (10ms) -> child_a (2ms), child_b (3ms); grandchild (1ms) under
    child_b; plus a second root `parent` instance (4ms, no children).
    """
    t = Tracer(enabled=True)
    with t.span("parent"):
        with t.span("child_a"):
            pass
        with t.span("child_b"):
            with t.span("grandchild"):
                pass
    with t.span("parent"):
        pass
    spans = t.drain()
    by_id = sorted(spans, key=lambda s: s.span_id)
    parent1, child_a, child_b, grandchild, parent2 = by_id
    ms = 1_000_000
    # keep every start_ns > 0: Span.complete treats 0 as "never started"
    parent1.start_ns, parent1.end_ns = 1 * ms, 11 * ms
    child_a.start_ns, child_a.end_ns = 2 * ms, 4 * ms
    child_b.start_ns, child_b.end_ns = 5 * ms, 8 * ms
    grandchild.start_ns, grandchild.end_ns = 6 * ms, 7 * ms
    parent2.start_ns, parent2.end_ns = 13 * ms, 17 * ms
    return spans


class TestProfileRows:
    def test_cumulative_and_self_time(self):
        rows = {r.name: r for r in profile_rows(synthetic_spans())}
        # parent: 10ms + 4ms cumulative; self excludes direct children only
        assert rows["parent"].count == 2
        assert rows["parent"].cumulative_ms == pytest.approx(14.0)
        assert rows["parent"].self_ms == pytest.approx(14.0 - 2.0 - 3.0)
        # child_b's self time excludes the grandchild
        assert rows["child_b"].self_ms == pytest.approx(2.0)
        assert rows["child_b"].cumulative_ms == pytest.approx(3.0)
        # leaves: self == cumulative
        assert rows["child_a"].self_ms == rows["child_a"].cumulative_ms
        assert rows["grandchild"].self_ms == pytest.approx(1.0)

    def test_self_time_sums_to_root_cumulative(self):
        rows = profile_rows(synthetic_spans())
        total_self = sum(r.self_ms for r in rows)
        root_cumulative = 14.0  # both `parent` instances
        assert total_self == pytest.approx(root_cumulative)

    def test_sorted_by_descending_self_time(self):
        rows = profile_rows(synthetic_spans())
        assert [r.self_ms for r in rows] == sorted(
            (r.self_ms for r in rows), reverse=True
        )
        assert rows[0].name == "parent"

    def test_self_time_floored_at_zero(self):
        """Clock skew (children summing past the parent) must not go
        negative in the table."""
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
        outer, inner = sorted(t.drain(), key=lambda s: s.span_id)
        outer.start_ns, outer.end_ns = 1, 1_000_001
        inner.start_ns, inner.end_ns = 1, 2_000_001  # "longer" than parent
        rows = {r.name: r for r in profile_rows([outer, inner])}
        assert rows["outer"].self_ms == 0.0

    def test_render_profile_table(self):
        text = render_profile(synthetic_spans())
        lines = text.splitlines()
        assert lines[0] == "planner profile"
        assert "self ms" in lines[1] and "cum ms" in lines[1]
        assert any("parent" in line and "14.000" in line for line in lines)

    def test_render_profile_empty(self):
        assert "(no spans collected)" in render_profile([])


class TestSaveTraceDocument:
    def test_round_trip_and_no_temp_residue(self, tmp_path):
        document = chrome_trace_document(synthetic_spans())
        target = tmp_path / "trace.json"
        save_trace_document(document, target)
        loaded = json.loads(target.read_text())
        assert loaded == document
        assert len(loaded["traceEvents"]) == 5
        assert list(tmp_path.iterdir()) == [target]


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "artifact.txt"
        returned = atomic_write_text(target, "hello\n")
        assert returned == target
        assert target.read_text() == "hello\n"
        assert list(tmp_path.iterdir()) == [target]

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failure_leaves_target_and_no_temp_file(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("original")
        with pytest.raises(TypeError):
            atomic_write_text(target, 123)  # not a str: write() raises
        assert target.read_text() == "original"
        assert list(tmp_path.iterdir()) == [target]
