"""Unit tests for the plan diagnostics module."""

import pytest

from repro.core.planner import AccParPlanner
from repro.core.types import PartitionType
from repro.experiments.analysis import (
    dominant_layers,
    render_breakdown,
    render_level_summary,
    root_level_breakdown,
    type_histogram,
)
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate


@pytest.fixture(scope="module")
def planned():
    return AccParPlanner(heterogeneous_array(4, 4)).plan(
        build_model("alexnet"), batch=128
    )


class TestBreakdown:
    def test_one_row_per_weighted_layer(self, planned):
        rows = root_level_breakdown(planned)
        assert [r.name for r in rows] == [
            "cv1", "cv2", "cv3", "cv4", "cv5", "fc1", "fc2", "fc3"
        ]

    def test_components_nonnegative(self, planned):
        for row in root_level_breakdown(planned):
            assert row.compute >= 0
            assert row.intra >= 0
            assert row.inter >= 0
            assert row.total == pytest.approx(row.compute + row.intra + row.inter)

    def test_first_layer_has_no_inter(self, planned):
        rows = root_level_breakdown(planned)
        assert rows[0].inter == 0.0

    def test_rows_reflect_plan_types(self, planned):
        assignments = planned.root_level_plan.layer_assignments()
        for row in root_level_breakdown(planned):
            assert row.ptype is assignments[row.name].ptype

    def test_leafless_plan_raises(self):
        planned = AccParPlanner(homogeneous_array(1)).plan(
            build_model("lenet"), batch=8
        )
        with pytest.raises(ValueError):
            root_level_breakdown(planned)

    def test_render(self, planned):
        text = render_breakdown(root_level_breakdown(planned))
        assert "cv1" in text and "TOTAL" in text


class TestDominantLayers:
    def test_sorted_descending(self, planned):
        top = dominant_layers(root_level_breakdown(planned), top=3)
        assert len(top) == 3
        assert top[0].total >= top[1].total >= top[2].total


class TestLevelSummary:
    def test_render(self, planned):
        report = evaluate(planned)
        text = render_level_summary(report)
        assert "level" in text and "total" in text


class TestTypeHistogram:
    def test_counts_cover_all_levels(self, planned):
        histogram = type_histogram(planned)
        per_level = len(planned.root_level_plan.layer_assignments())
        n_levels = len(planned.level_plans())
        assert sum(histogram.values()) == per_level * n_levels

    def test_alexnet_uses_model_partitioning(self, planned):
        histogram = type_histogram(planned)
        assert histogram[PartitionType.TYPE_II] + histogram[PartitionType.TYPE_III] > 0
