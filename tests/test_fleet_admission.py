"""Admission control: deadline sheds, queue pressure, EWMA estimates."""

import pytest

from repro.fleet.admission import ADMIT, DEGRADE, SHED, AdmissionController


@pytest.fixture
def ctl():
    return AdmissionController(
        max_queue_depth=10, degrade_depth=4, safety_factor=1.0,
        initial_cold_s=0.2, initial_hit_s=0.002)


class TestDeadlineShed:
    def test_deadline_below_hit_floor_is_shed(self, ctl):
        decision = ctl.decide("fp", deadline_s=0.0001, queue_depth=0)
        assert decision.action == SHED
        assert "cache-hit" in decision.reason

    def test_quick_shed_matches_decide_for_impossible_deadlines(self, ctl):
        quick = ctl.quick_shed(0.0001)
        assert quick is not None and quick.action == SHED
        # a meetable deadline does not quick-shed; it needs the full decide
        assert ctl.quick_shed(1.0) is None
        assert ctl.quick_shed(None) is None

    def test_cold_request_with_midrange_deadline_is_shed(self, ctl):
        # deadline above the hit floor but below the cold estimate: only
        # sheddable once the fingerprint is known to be cold
        decision = ctl.decide("cold-fp", deadline_s=0.05, queue_depth=0)
        assert decision.action == SHED
        assert "estimate" in decision.reason

    def test_warm_hint_admits_the_same_deadline(self, ctl):
        ctl.note_warm("warm-fp")
        decision = ctl.decide("warm-fp", deadline_s=0.05, queue_depth=0)
        assert decision.action == ADMIT

    def test_no_deadline_is_never_deadline_shed(self, ctl):
        assert ctl.decide("fp", deadline_s=None, queue_depth=0).action == ADMIT


class TestQueuePressure:
    def test_full_queue_sheds(self, ctl):
        decision = ctl.decide("fp", deadline_s=None, queue_depth=10)
        assert decision.action == SHED and decision.reason == "queue full"

    def test_pressure_band_degrades(self, ctl):
        decision = ctl.decide("fp", deadline_s=None, queue_depth=5)
        assert decision.action == DEGRADE
        assert decision.admitted  # degraded items still run

    def test_below_degrade_depth_admits(self, ctl):
        assert ctl.decide("fp", deadline_s=None, queue_depth=3).action == ADMIT

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=4, degrade_depth=8)


class TestEstimates:
    def test_ewma_tracks_observations(self):
        ctl = AdmissionController(initial_cold_s=0.1, alpha=0.5)
        for _ in range(20):
            ctl.observe("fp", 0.4, cache_hit=False)
        assert ctl.estimate("other") == pytest.approx(0.4, rel=0.01)

    def test_hit_and_cold_estimates_are_split(self):
        ctl = AdmissionController(alpha=0.5)
        for _ in range(20):
            ctl.observe("hit-fp", 0.001, cache_hit=True)
            ctl.observe("cold-fp", 0.5, cache_hit=False)
        assert ctl.estimate("hit-fp") < 0.01 < ctl.estimate("never-seen")

    def test_observation_marks_fingerprint_warm(self, ctl):
        ctl.observe("fp", 0.1, cache_hit=False)
        assert ctl.estimate("fp") == ctl.floor_s

    def test_hint_set_is_bounded(self):
        ctl = AdmissionController(max_hints=10)
        for i in range(100):
            ctl.note_warm(f"fp-{i}")
        assert ctl.snapshot()["warm_hints"] <= 10

    def test_safety_factor_shrinks_the_budget(self):
        tight = AdmissionController(safety_factor=10.0, initial_hit_s=0.002)
        # 10 ms is 5x the hit floor, but /10 safety leaves only 1 ms
        assert tight.decide("fp", deadline_s=0.010, queue_depth=0).action == SHED


class TestSnapshot:
    def test_decisions_are_counted(self, ctl):
        ctl.decide("a", deadline_s=None, queue_depth=0)     # admit
        ctl.decide("b", deadline_s=0.00001, queue_depth=0)  # shed
        ctl.decide("c", deadline_s=None, queue_depth=5)     # degrade
        snap = ctl.snapshot()
        assert snap["decisions"] == {"admit": 1, "shed": 1, "degrade": 1}
        assert snap["est_hit_ms"] == pytest.approx(2.0)
        assert snap["max_queue_depth"] == 10
