"""Cross-layer consistency: the analytic cost model vs the numeric executor.

The planner prices communication with closed forms (Tables 4/5 via
``ShardedWorkload`` and ``inter_layer_elements``); the numeric executor
*counts* transferred elements while actually training.  These tests tie the
two together on identical workloads: the closed forms must equal the
counted elements exactly, layer by layer and boundary by boundary.
"""

import itertools

import numpy as np
import pytest

from repro.core.cost_model import inter_layer_elements
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.numeric import (
    LayerPlanNumeric,
    MlpSpec,
    TwoDeviceExecutor,
    expected_intra_elements,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

WIDTHS = [16, 12, 8, 20]
BATCH = 8
SPEC = MlpSpec(WIDTHS)


def analytic_workloads():
    """The spec's layers expressed as the planner's ShardedWorkloads."""
    return [
        ShardedWorkload(
            LayerWorkload(f"layer{k}", BATCH, WIDTHS[k], WIDTHS[k + 1],
                          (1, 1), (1, 1), (1, 1), False)
        )
        for k in range(SPEC.n_layers)
    ]


def run_numeric(plan):
    rng = np.random.default_rng(0)
    weights = SPEC.init_weights(0)
    x = rng.standard_normal((BATCH, WIDTHS[0]))
    target = rng.standard_normal((BATCH, WIDTHS[-1]))
    return TwoDeviceExecutor(SPEC, weights, plan, BATCH).step(x, target)


class TestIntraConsistency:
    @pytest.mark.parametrize("ptype", ALL_TYPES)
    def test_psum_closed_form_equals_counted(self, ptype):
        """a_psum(t) (the planner's Table 4 quantity) equals what the
        executor actually moved for every layer."""
        plan = [LayerPlanNumeric(ptype, 0.5) for _ in range(SPEC.n_layers)]
        trace = run_numeric(plan)
        for k, sw in enumerate(analytic_workloads()):
            if ptype is III and k == 0:
                continue  # first layer's backward psum never runs
            counted_i, counted_j = trace.comm.intra[f"layer{k}"]
            assert counted_i == sw.a_psum(ptype)
            assert counted_j == sw.a_psum(ptype)

    def test_expected_helper_agrees_with_planner_quantities(self):
        """numeric.validate's hand-derived expectations equal a_psum too."""
        for ptype in ALL_TYPES:
            plan = [LayerPlanNumeric(ptype, 0.5) for _ in range(SPEC.n_layers)]
            expected = expected_intra_elements(SPEC, plan, BATCH)
            for k, sw in enumerate(analytic_workloads()):
                if ptype is III and k == 0:
                    continue
                assert expected[f"layer{k}"] == (
                    sw.a_psum(ptype), sw.a_psum(ptype)
                )


class TestInterConsistency:
    @pytest.mark.parametrize(
        "tt,t", list(itertools.product(ALL_TYPES, repeat=2))
    )
    def test_boundary_closed_form_equals_counted(self, tt, t):
        """Table 5's closed form equals the executor's counted re-sharding
        traffic at the layer0/layer1 boundary, per device, F+E combined."""
        plan = [LayerPlanNumeric(tt, 0.5)] + [
            LayerPlanNumeric(t, 0.5) for _ in range(SPEC.n_layers - 1)
        ]
        trace = run_numeric(plan)
        boundary_elements = float(BATCH * WIDTHS[1])
        expect_i, expect_j = inter_layer_elements(boundary_elements, tt, t, 0.5)
        fwd = trace.comm.inter_forward.get("boundary1", (0, 0))
        bwd = trace.comm.inter_backward.get("boundary1", (0, 0))
        assert fwd[0] + bwd[0] == pytest.approx(expect_i)
        assert fwd[1] + bwd[1] == pytest.approx(expect_j)

    def test_asymmetric_ratio_consistency(self):
        """Same check at alpha=0.25 on an exactly divisible axis."""
        tt, t = I, III
        plan = [LayerPlanNumeric(tt, 0.25)] + [
            LayerPlanNumeric(t, 0.25) for _ in range(SPEC.n_layers - 1)
        ]
        trace = run_numeric(plan)
        boundary_elements = float(BATCH * WIDTHS[1])
        expect_i, expect_j = inter_layer_elements(boundary_elements, tt, t, 0.25)
        fwd = trace.comm.inter_forward.get("boundary1", (0, 0))
        bwd = trace.comm.inter_backward.get("boundary1", (0, 0))
        assert fwd[0] + bwd[0] == pytest.approx(expect_i)
        assert fwd[1] + bwd[1] == pytest.approx(expect_j)


class TestFlopConsistency:
    def test_table6_flops_match_reference_mat_muls(self):
        """The cost model's FLOP counts equal the actual multiply/add counts
        of the reference implementation's mat-muls (2K-1 per output)."""
        for k, sw in enumerate(analytic_workloads()):
            b, d_in, d_out = BATCH, WIDTHS[k], WIDTHS[k + 1]
            assert sw.flops_forward() == (b * d_out) * (2 * d_in - 1)
            assert sw.flops_backward() == (b * d_in) * (2 * d_out - 1)
            assert sw.flops_gradient() == (d_in * d_out) * (2 * b - 1)
