"""End-to-end fleet tests: routing, batching, shedding, replication, traces.

Thread-mode shards keep these fast and deterministic; one test runs the
process topology (spawned shard processes) to cover the production mode
and genuinely cross-process trace aggregation.
"""

import json
import socket
import struct

import pytest

from repro.core.serialize import plan_from_dict
from repro.fleet import (
    AdmissionController,
    FleetClient,
    FleetFrontend,
    HashRing,
    ShardSupervisor,
)
from repro.fleet.admission import DEGRADE, Decision
from repro.fleet.wire import (
    MAX_REQUEST_FRAME_BYTES,
    recv_frame,
    send_frame,
)
from repro.obs import chrome_trace_from_dicts, tracer
from repro.plan.diff import plan_diff
from repro.service.server import request_from_doc
from repro.service.service import PlanService

#: a small array keeps cold planning fast enough for tight test loops
ARRAY = "tpu-v2:2,tpu-v3:2"


def spec(model="lenet", batch=32, **extra):
    return {"model": model, "array": ARRAY, "batch": batch, **extra}


@pytest.fixture
def fleet(tmp_path):
    """A fresh 2-shard thread-mode fleet with its frontend and a client."""
    with ShardSupervisor(2, cache_dir=tmp_path) as sup:
        with FleetFrontend(sup.handles) as frontend:
            with FleetClient(port=frontend.port) as client:
                yield sup, frontend, client


class TestBatchedRouting:
    def test_16_spec_batch_routes_by_consistent_hash(self, fleet):
        sup, frontend, client = fleet
        items = [spec(batch=8 * (i + 1)) for i in range(16)]
        reply = client.plan_batch(items)
        assert reply["ok"] and reply["count"] == 16
        assert reply["succeeded"] == 16

        # every item went to the shard the ring says owns its fingerprint
        ring = HashRing([h.name for h in sup.handles])
        routed = {h.name: 0 for h in sup.handles}
        for item in reply["items"]:
            assert item["ok"]
            assert item["shard"] == ring.owner(item["fingerprint"])
            routed[item["shard"]] += 1
        assert sum(routed.values()) == 16
        assert all(count > 0 for count in routed.values()), routed

        # and the shard-labelled metrics agree with the routing counts
        stats = client.stats()
        for name, count in routed.items():
            shard_requests = stats["shards"][name]["metrics"]["counters"][
                "requests"]
            assert shard_requests == count

    def test_batch_item_statuses_are_independent(self, fleet):
        _, _, client = fleet
        reply = client.plan_batch([
            spec(),
            {"model": "no-such-model", "array": ARRAY},
            spec(batch=64),
        ])
        assert reply["ok"]  # the batch served; items carry their own status
        ok_flags = [item["ok"] for item in reply["items"]]
        assert ok_flags == [True, False, True]
        assert reply["succeeded"] == 2
        assert "no-such-model" in reply["items"][1]["error"]

    def test_batch_level_deadline_applies_to_every_item(self, fleet):
        _, _, client = fleet
        reply = client.plan_batch([spec(), spec(batch=64)],
                                  deadline_ms=0.0001)
        assert [item["error"] for item in reply["items"]] == ["shed", "shed"]

    def test_repeat_batch_hits_warm_shards(self, fleet):
        _, _, client = fleet
        items = [spec(batch=b) for b in (16, 32, 48)]
        client.plan_batch(items)
        again = client.plan_batch(items)
        assert all(item["cache_hit"] for item in again["items"])


class TestShedding:
    def test_unmeetable_deadline_shed_fast(self, fleet):
        _, _, client = fleet
        reply = client.plan(spec(), deadline_ms=0.0001)
        assert not reply["ok"] and reply["error"] == "shed"
        assert "cache-hit" in reply["reason"]
        # the acceptance bound: shed in well under 5 ms, measured
        # server-side (no fingerprinting, no planning, no routing)
        assert reply["latency_ms"] < 5.0

    def test_shed_is_pre_fingerprint(self, fleet):
        _, frontend, client = fleet
        client.plan(spec(), deadline_ms=0.0001)
        snap = frontend.snapshot()
        assert snap["metrics"]["counters"]["shed_deadline"] == 1
        # the item never reached admission's full decide with a fingerprint
        assert snap["admission"]["decisions"]["admit"] == 0

    def test_generous_deadline_is_served(self, fleet):
        _, _, client = fleet
        reply = client.plan(spec(), deadline_ms=60_000)
        assert reply["ok"] and not reply["degraded"]


class TestDegradeUnderPressure:
    def test_degrade_forwards_zero_deadline(self, tmp_path):
        class ForceDegrade(AdmissionController):
            def quick_shed(self, deadline_s):
                return None

            def decide(self, fingerprint, deadline_s, queue_depth):
                return Decision(DEGRADE, "forced for test", 0.1)

        with ShardSupervisor(2, cache_dir=tmp_path) as sup:
            frontend = FleetFrontend(sup.handles, admission=ForceDegrade())
            with frontend, FleetClient(port=frontend.port) as client:
                reply = client.plan(spec(model="alexnet", batch=512))
                assert reply["ok"]
                # the owning shard served its deadline fallback
                assert reply["degraded"] and reply["source"] == "degraded"
                counters = frontend.snapshot()["metrics"]["counters"]
                assert counters["degraded_pressure"] == 1


class TestPlanFidelity:
    def test_fleet_plans_bit_identical_to_single_process(self, fleet):
        _, _, client = fleet
        doc = spec(model="alexnet", batch=64)
        reply = client.plan(dict(doc), include_plan=True)
        assert reply["ok"]
        fleet_planned = plan_from_dict(reply["plan"])

        with PlanService(workers=2) as local:
            local_response = local.plan(request_from_doc(dict(doc)))
        assert reply["fingerprint"] == local_response.fingerprint
        assert plan_diff(local_response.planned.plan, fleet_planned.plan,
                         rel_tol=1e-9) == []


class TestWarmReplication:
    def test_warm_replicates_to_every_shard(self, fleet):
        sup, _, client = fleet
        reply = client.warm([spec(), spec(model="alexnet", batch=64)])
        assert reply["ok"]
        for item in reply["items"]:
            assert item["ok"] and item["replicated"] == 1  # one peer shard

        # every shard now holds every fingerprint, owner or not: ask each
        # shard directly (cache sizes include both warmed entries)
        for handle in sup.handles:
            with FleetClient(host=handle.host, port=handle.port) as shard:
                stats = shard.request({"op": "stats"})["stats"]
                assert stats["cache"]["memory_entries"] == 2

    def test_warm_primes_the_admission_floor(self, fleet):
        _, frontend, client = fleet
        client.warm([spec()])
        fingerprint = client.plan(spec())["fingerprint"]
        assert frontend.admission.estimate(fingerprint) == \
            frontend.admission.floor_s


class TestProtocol:
    def test_oversized_frame_rejected_with_structured_error(self, fleet):
        _, frontend, _ = fleet
        sock = socket.create_connection(("127.0.0.1", frontend.port), 5.0)
        sock.settimeout(5.0)
        # declare a frame bigger than the request cap; send no body
        sock.sendall(struct.pack(">I", MAX_REQUEST_FRAME_BYTES + 1))
        reply = recv_frame(sock)
        assert reply == {"ok": False, "error": "request too large",
                         "limit_bytes": MAX_REQUEST_FRAME_BYTES,
                         "got_bytes": MAX_REQUEST_FRAME_BYTES + 1}
        sock.close()

    def test_future_protocol_version_refused(self, fleet):
        _, frontend, _ = fleet
        sock = socket.create_connection(("127.0.0.1", frontend.port), 5.0)
        sock.settimeout(5.0)
        send_frame(sock, {"op": "hello", "proto": 3})
        reply = recv_frame(sock)
        assert not reply["ok"] and reply["error"] == "unsupported protocol"
        assert reply["proto"] == 2
        sock.close()

    def test_unknown_op_names_the_known_ones(self, fleet):
        _, _, client = fleet
        reply = client.request({"op": "explode"})
        assert not reply["ok"]
        assert "plan_batch" in reply["known_ops"]
        assert "warm" in reply["known_ops"]

    def test_request_id_echoed(self, fleet):
        _, _, client = fleet
        assert client.request({"op": "ping", "id": 41})["id"] == 41

    def test_v1_json_lines_over_tcp(self, fleet):
        """A v1 client (raw JSON lines) works against the fleet port."""
        _, frontend, _ = fleet
        sock = socket.create_connection(("127.0.0.1", frontend.port), 30.0)
        sock.settimeout(30.0)
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write(json.dumps(spec(id="v1-a")) + "\n")
        stream.flush()
        first = json.loads(stream.readline())
        assert first["ok"] and first["id"] == "v1-a"
        assert "shard" in first  # served by the fleet, not a local loop
        stream.write(json.dumps({"op": "stats"}) + "\n")
        stream.flush()
        stats = json.loads(stream.readline())
        assert stats["ok"] and set(stats["shards"]) == {"0", "1"}
        sock.close()

    def test_stdin_loop_compat(self, fleet):
        """The stdin/stdout v1 loop drives the fleet (CLI without --port)."""
        import io

        _, frontend, _ = fleet
        lines = [
            json.dumps(spec(id=1)),
            "not json at all",
            json.dumps({"op": "shutdown"}),
        ]
        out = io.StringIO()
        served = frontend.serve_stdin(lines, out)
        results = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 3
        assert results[0]["ok"] and results[0]["id"] == 1
        assert not results[1]["ok"]
        assert results[2]["ok"] and results[2]["op"] == "shutdown"
        assert set(results[2]["shards"]) == {"0", "1"}


class TestTraceAggregation:
    def test_trace_op_merges_spans_with_trace_ids(self, tmp_path):
        with ShardSupervisor(2, cache_dir=tmp_path, trace=True) as sup:
            frontend = FleetFrontend(sup.handles)
            with frontend, FleetClient(port=frontend.port) as client:
                try:
                    tracer.enable()
                    client.plan_batch([spec(), spec(batch=64)])
                    reply = client.trace()
                finally:
                    tracer.disable()
                    tracer.clear()
        assert reply["ok"] and reply["count"] > 0
        doc = chrome_trace_from_dicts(reply["spans"])
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        trace_ids = {e["args"]["trace_id"] for e in events
                     if "trace_id" in e["args"]}
        # one distinct id per batch item, stamped by the frontend and
        # adopted by the owning shard's service spans
        assert len(trace_ids) >= 2
        item_events = [e for e in events if e["name"] == "fleet.item"]
        assert len(item_events) == 2
        request_events = [e for e in events if e["name"] == "service.request"]
        assert {e["args"]["trace_id"] for e in item_events} <= \
            {e["args"]["trace_id"] for e in request_events}


class TestShutdown:
    def test_shutdown_drains_every_shard(self, tmp_path):
        with ShardSupervisor(2, cache_dir=tmp_path) as sup:
            frontend = FleetFrontend(sup.handles)
            with frontend, FleetClient(port=frontend.port) as client:
                client.plan(spec())
                ack = client.shutdown()
                assert ack["ok"] and ack["op"] == "shutdown"
                assert set(ack["shards"]) == {"0", "1"}
                for drained in ack["shards"].values():
                    assert isinstance(drained, int)
            frontend.wait()  # the ack also stops the frontend


@pytest.mark.slow
class TestProcessMode:
    def test_process_shards_serve_and_trace_across_processes(self, tmp_path):
        """The production topology: spawned shard processes, one timeline."""
        with ShardSupervisor(2, mode="process", cache_dir=tmp_path,
                             trace=True) as sup:
            assert all(h.process.is_alive() for h in sup.handles)
            frontend = FleetFrontend(sup.handles)
            with frontend, FleetClient(port=frontend.port) as client:
                reply = client.plan_batch(
                    [spec(batch=8 * (i + 1)) for i in range(4)])
                assert reply["succeeded"] == 4
                ring = HashRing([h.name for h in sup.handles])
                for item in reply["items"]:
                    assert item["shard"] == ring.owner(item["fingerprint"])
                trace = client.trace()
            doc = chrome_trace_from_dicts(trace["spans"])
            processes = {e["args"]["name"] for e in doc["traceEvents"]
                         if e["ph"] == "M"}
            # spans from both shard processes merged onto one timeline
            assert {"shard-0", "shard-1"} <= processes
        assert all(not h.process.is_alive() for h in sup.handles)
