"""Tests of the synthetic workload generator plus planner fuzzing."""

import pytest

from repro.baselines import get_scheme
from repro.core.brute_force import brute_force_chain
from repro.core.cost_model import PairCostModel
from repro.core.dp_search import search_stages
from repro.core.planner import Planner
from repro.core.stages import ShardedLayerStage, to_sharded_stages
from repro.core.types import ShardedWorkload
from repro.core.verify import verify_planned
from repro.graph import validate_network
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, heterogeneous_array, make_group
from repro.models.synthetic import (
    SyntheticConfig,
    random_chain_widths,
    random_network,
)
from repro.sim.executor import evaluate


class TestRandomNetwork:
    def test_deterministic(self):
        a = random_network(7)
        b = random_network(7)
        assert a.layer_names() == b.layer_names()

    def test_seeds_differ(self):
        a = random_network(1)
        b = random_network(2)
        # kernel sizes and fc widths are random; workloads should differ
        wa = [(w.name, w.kernel_hw) for w in a.workloads(4)]
        wb = [(w.name, w.kernel_hw) for w in b.workloads(4)]
        assert wa != wb

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_networks_validate(self, seed):
        config = SyntheticConfig(residual_probability=0.5)
        net = random_network(seed, config)
        assert validate_network(net) == []

    def test_residual_stages_appear(self):
        config = SyntheticConfig(residual_probability=1.0, convs_per_stage=2,
                                 n_conv_stages=3)
        net = random_network(3, config)
        from repro.graph import ParallelStage

        parallel = [s for s in net.stages(4) if isinstance(s, ParallelStage)]
        assert len(parallel) == 3  # every stage body became residual

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_fc_layers=0)
        with pytest.raises(ValueError):
            SyntheticConfig(residual_probability=2.0)
        with pytest.raises(ValueError):
            SyntheticConfig(image_size=4, n_conv_stages=5)


class TestRandomChains:
    def test_deterministic(self):
        assert random_chain_widths(5) == random_chain_widths(5)

    def test_bounds(self):
        widths = random_chain_widths(9, min_layers=3, max_layers=6,
                                     min_width=4, max_width=512)
        assert 4 <= len(widths) <= 7
        assert all(4 <= w <= 512 for w in widths)


class TestPlannerFuzzing:
    """Random workloads through the full pipeline: the planner must always
    produce verifiable plans and the DP must always match brute force."""

    @pytest.mark.parametrize("seed", range(4))
    def test_full_pipeline_on_random_networks(self, seed):
        net = random_network(seed, SyntheticConfig(residual_probability=0.4))
        for scheme in ("dp", "owt", "hypar", "accpar"):
            planned = Planner(heterogeneous_array(2, 2),
                              get_scheme(scheme)).plan(net, batch=16)
            assert verify_planned(planned) == []
            report = evaluate(planned)
            assert report.total_time > 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_dp_optimal_on_random_chains(self, seed):
        widths = random_chain_widths(seed, min_layers=2, max_layers=5)
        stages = [
            ShardedLayerStage(
                ShardedWorkload(
                    LayerWorkload(f"fc{i}", 32, widths[i], widths[i + 1],
                                  (1, 1), (1, 1), (1, 1), False)
                )
            )
            for i in range(len(widths) - 1)
        ]
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))
        dp = search_stages(stages, model)
        bf = brute_force_chain(stages, model)
        assert dp.cost == pytest.approx(bf.cost, rel=1e-9)
