"""Unit tests for the what-if (layer-type sensitivity) diagnostics."""

import pytest

from repro.core.planner import AccParPlanner
from repro.core.types import ALL_TYPES
from repro.experiments.analysis import (
    WhatIfRow,
    layer_type_sensitivity,
    render_what_if,
)
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import build_model


@pytest.fixture(scope="module")
def planned():
    return AccParPlanner(heterogeneous_array(2, 2)).plan(
        build_model("alexnet"), batch=128
    )


class TestLayerTypeSensitivity:
    def test_one_row_per_layer(self, planned):
        rows = layer_type_sensitivity(planned)
        assert {r.name for r in rows} == set(
            planned.root_level_plan.layer_assignments()
        )

    def test_three_costs_per_row(self, planned):
        for row in layer_type_sensitivity(planned):
            assert set(row.costs) == set(ALL_TYPES)
            assert all(c > 0 for c in row.costs.values())

    def test_chosen_type_is_optimal_per_layer(self, planned):
        """Pinning a layer to its chosen type must reproduce the optimum;
        pinning to any other type can only cost more."""
        optimum = min(
            min(row.costs.values()) for row in layer_type_sensitivity(planned)
        )
        for row in layer_type_sensitivity(planned):
            assert row.costs[row.chosen] == pytest.approx(optimum, rel=1e-9)
            for t, cost in row.costs.items():
                assert cost >= row.costs[row.chosen] - 1e-12

    def test_fc1_is_a_sensitive_layer(self, planned):
        """AlexNet's fc1 carries 60% of the weights; forcing it to Type-I
        must hurt clearly."""
        rows = {r.name: r for r in layer_type_sensitivity(planned)}
        assert rows["fc1"].regret_of_worst_choice > 1.05

    def test_leafless_plan_raises(self):
        planned = AccParPlanner(homogeneous_array(1)).plan(
            build_model("lenet"), batch=8
        )
        with pytest.raises(ValueError):
            layer_type_sensitivity(planned)

    def test_render(self, planned):
        text = render_what_if(layer_type_sensitivity(planned))
        assert "pin I" in text and "fc1" in text and "*" in text
