"""Tests of N-way (>2 path) multi-path planning via the trident models."""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.core.verify import verify_planned
from repro.graph import ParallelStage, validate_network
from repro.models.multibranch import trident
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.sim.executor import evaluate


class TestTridentModel:
    def test_validates(self):
        assert validate_network(trident()) == []

    def test_four_paths_per_block(self):
        stages = trident(n_blocks=1).stages(batch=8)
        parallel = [s for s in stages if isinstance(s, ParallelStage)]
        assert len(parallel) == 1
        # three conv branches + one identity skip
        assert len(parallel[0].paths) == 4
        sizes = sorted(len(p) for p in parallel[0].paths)
        assert sizes == [0, 1, 1, 2]

    def test_weighted_layer_count(self):
        # stem + per block (1 + 1 + 2) + fc
        net = trident(n_blocks=2)
        assert len(net.workloads(8)) == 1 + 2 * 4 + 1

    def test_bad_block_count(self):
        with pytest.raises(ValueError):
            trident(n_blocks=0)


class TestNWayPlanning:
    @pytest.mark.parametrize("scheme", ["dp", "owt", "hypar", "accpar"])
    def test_all_schemes_plan_and_verify(self, scheme):
        planned = Planner(heterogeneous_array(2, 2), get_scheme(scheme)).plan(
            trident(), batch=32
        )
        assert verify_planned(planned) == []
        assert evaluate(planned).total_time > 0.0

    def test_every_branch_layer_assigned(self):
        net = trident(n_blocks=2)
        planned = Planner(homogeneous_array(4), get_scheme("accpar")).plan(
            net, batch=32
        )
        assigned = set(planned.root_level_plan.layer_assignments())
        expected = {w.name for w in net.workloads(32)}
        assert assigned == expected

    def test_accpar_beats_dp_on_multibranch(self):
        array = heterogeneous_array(4, 4)
        times = {
            scheme: evaluate(
                Planner(array, get_scheme(scheme)).plan(trident(), batch=64)
            ).total_time
            for scheme in ("dp", "accpar")
        }
        assert times["accpar"] < times["dp"]

    def test_n_way_join_state_recorded(self):
        planned = Planner(homogeneous_array(2), get_scheme("accpar")).plan(
            trident(n_blocks=1), batch=16
        )
        assert len(planned.root_level_plan.joins()) == 1
