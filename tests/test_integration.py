"""Integration tests: the paper's qualitative claims end-to-end.

These run the full pipeline (model zoo → planner → simulator → speedups) at
reduced array sizes so the suite stays fast, and assert the *shapes* of the
paper's results rather than absolute numbers.
"""

import pytest

from repro.core.planner import AccParScheme, Planner
from repro.core.types import PartitionType
from repro.experiments.harness import run_scheme, sweep
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import RESNET_MODELS, VGG_MODELS
from repro.sim.executor import evaluate

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

ARRAY = heterogeneous_array(8, 8)
BATCH = 128


@pytest.fixture(scope="module")
def hetero_table():
    return sweep(["alexnet", "vgg11", "resnet18"], ARRAY, batch=BATCH)


class TestSection62Heterogeneous:
    def test_accpar_is_best_on_every_model(self, hetero_table):
        for model in hetero_table.models:
            best = max(
                hetero_table.speedup(model, s) for s in hetero_table.schemes
            )
            assert hetero_table.speedup(model, "accpar") == pytest.approx(best)

    def test_flexibility_ordering_on_geomean(self, hetero_table):
        """Table 8: DP ≺ OWT ≺ HyPar ≺ AccPar (flexibility → performance)."""
        assert hetero_table.geomean("accpar") > hetero_table.geomean("hypar")
        assert hetero_table.geomean("hypar") > hetero_table.geomean("dp")
        assert hetero_table.geomean("owt") > hetero_table.geomean("dp")

    def test_vgg_speedups_exceed_resnet(self):
        table = sweep(["vgg11", "resnet18"], ARRAY, batch=BATCH,
                      schemes=["dp", "accpar"])
        assert table.speedup("vgg11", "accpar") > table.speedup("resnet18", "accpar")


class TestSection63Homogeneous:
    def test_accpar_still_wins_homogeneous(self):
        table = sweep(["alexnet", "resnet18"], homogeneous_array(16), batch=BATCH)
        assert table.geomean("accpar") >= table.geomean("hypar") - 1e-9
        assert table.geomean("accpar") > table.geomean("dp")

    def test_heterogeneity_amplifies_accpar_gap(self):
        models = ["alexnet", "vgg11"]
        hetero = sweep(models, ARRAY, batch=BATCH, schemes=["dp", "hypar", "accpar"])
        homo = sweep(models, homogeneous_array(16), batch=BATCH,
                     schemes=["dp", "hypar", "accpar"])
        gap_hetero = hetero.geomean("accpar") / hetero.geomean("hypar")
        gap_homo = homo.geomean("accpar") / homo.geomean("hypar")
        assert gap_hetero > gap_homo


class TestPlanQuality:
    def test_accpar_simulated_time_beats_baselines_per_model(self):
        """The simulator is independent of the planner objective; AccPar's
        plan must still win there (Section 6's methodology)."""
        for model in ["alexnet", "vgg11", "resnet18"]:
            times = {
                s: run_scheme(model, s, ARRAY, batch=BATCH).time
                for s in ["dp", "owt", "hypar", "accpar"]
            }
            assert times["accpar"] <= min(times.values()) * (1 + 1e-9)

    def test_complete_space_beats_hypar_space(self):
        """Ablation: the Type-III-complete space can only help (Section 3.5).

        On the planner's own Eq. 9 objective the dominance is exact; on the
        independent simulator small inversions are possible because the
        objective is a model of (not identical to) the simulated time, so
        there we only require near-parity.
        """
        from repro.models import build_model

        restricted_scheme = AccParScheme(space=(I, II), name="accpar-2type")
        for model in ["alexnet", "vgg11"]:
            planned_full = Planner(ARRAY, AccParScheme()).plan(
                build_model(model), BATCH
            )
            planned_restricted = Planner(ARRAY, restricted_scheme).plan(
                build_model(model), BATCH
            )
            # exact dominance on the search objective at the root level
            # (deeper levels see different sub-problems, so only the root is
            # an apples-to-apples comparison)
            assert (planned_full.root_level_plan.cost
                    <= planned_restricted.root_level_plan.cost * (1 + 1e-9))
            # near-parity on the independent simulator
            t_full = evaluate(planned_full).total_time
            t_restricted = evaluate(planned_restricted).total_time
            assert t_full <= t_restricted * 1.10

    def test_flexible_ratio_beats_equal_ratio_on_hetero(self):
        """Ablation: Eq. 10 ratios vs forced 1/2 on the heterogeneous array."""
        from repro.models import build_model

        equal_scheme = AccParScheme(ratio_mode="equal", name="accpar-eq")
        for model in ["vgg11", "resnet18"]:
            t_flex = evaluate(
                Planner(ARRAY, AccParScheme()).plan(build_model(model), BATCH)
            ).total_time
            t_eq = evaluate(
                Planner(ARRAY, equal_scheme).plan(build_model(model), BATCH)
            ).total_time
            assert t_flex <= t_eq * (1 + 1e-6)


class TestMemoryFeasibility:
    @pytest.mark.parametrize("model", ["alexnet", "vgg19", "resnet50"])
    def test_paper_configurations_fit_hbm(self, model):
        result = run_scheme(model, "accpar", heterogeneous_array(8, 8), batch=512)
        assert result.report.fits_memory

    def test_memory_utilization_reported(self):
        result = run_scheme("vgg19", "dp", homogeneous_array(4), batch=512)
        mem = result.report.memory_worst
        assert mem is not None
        assert mem.total_bytes > 0
