"""Unit tests for plan serialization and verification."""

import json

import pytest

from repro.core.planner import AccParPlanner, Planner
from repro.core.serialize import (
    FORMAT_VERSION,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.core.types import PartitionType
from repro.core.verify import PlanVerificationError, verify_planned
from repro.plan.ir import LayerAssignment, LevelPlan
from repro.baselines import get_scheme
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate
from repro.training.optimizers import ADAM


@pytest.fixture
def planned():
    return AccParPlanner(heterogeneous_array(2, 2)).plan(
        build_model("alexnet"), batch=64
    )


def _without_layer(level, name):
    """A copy of ``level`` with one layer's assignment entry dropped."""
    kept = tuple(
        e for e in level.entries
        if not (isinstance(e, LayerAssignment) and e.name == name)
    )
    assert len(kept) < len(level.entries), f"{name} not present"
    return LevelPlan(entries=kept, cost=level.cost, scheme=level.scheme)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_simulation(self, planned):
        data = plan_to_dict(planned)
        reloaded = plan_from_dict(data)
        assert reloaded.network_name == planned.network_name
        assert reloaded.batch == planned.batch
        assert reloaded.scheme == planned.scheme
        assert evaluate(reloaded).total_time == pytest.approx(
            evaluate(planned).total_time
        )

    def test_file_roundtrip(self, planned, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(planned, path)
        reloaded = load_plan(path)
        assert reloaded.hierarchy_levels() == planned.hierarchy_levels()
        # the document is genuine JSON
        document = json.loads(path.read_text())
        assert document["format_version"] == FORMAT_VERSION

    def test_assignments_preserved(self, planned):
        reloaded = plan_from_dict(plan_to_dict(planned))
        original = planned.root_level_plan.assignments
        restored = reloaded.root_level_plan.assignments
        assert set(original) == set(restored)
        for name in original:
            assert original[name].ptype is restored[name].ptype
            assert original[name].ratio == pytest.approx(restored[name].ratio)

    def test_multipath_model_roundtrip(self):
        planned = Planner(homogeneous_array(4), get_scheme("accpar")).plan(
            build_model("resnet18"), batch=32
        )
        reloaded = plan_from_dict(plan_to_dict(planned))
        assert evaluate(reloaded).total_time == pytest.approx(
            evaluate(planned).total_time
        )

    def test_unknown_version_raises(self, planned):
        data = plan_to_dict(planned)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            plan_from_dict(data)

    def test_depth_mismatch_raises(self, planned):
        data = plan_to_dict(planned)
        data["levels"] = 1  # tree will be shallower than the stored plan
        with pytest.raises(ValueError, match="depth"):
            plan_from_dict(data)

    def test_custom_network_builder(self, planned):
        data = plan_to_dict(planned)
        calls = []

        def builder(name):
            calls.append(name)
            return build_model(name)

        plan_from_dict(data, network_builder=builder)
        assert calls == ["alexnet"]


class TestVerifyPlanned:
    def test_fresh_plan_verifies_clean(self, planned):
        assert verify_planned(planned) == []

    def test_all_schemes_verify(self):
        for scheme in ("dp", "owt", "hypar", "accpar"):
            planned = Planner(heterogeneous_array(2, 2), get_scheme(scheme)).plan(
                build_model("resnet18"), batch=32
            )
            assert verify_planned(planned) == []

    def test_missing_assignment_detected(self, planned):
        planned.plan.level_plan = _without_layer(planned.root_level_plan, "cv1")
        issues = verify_planned(planned)
        assert any("cv1" in issue for issue in issues)

    def test_unknown_layer_detected(self, planned):
        level = planned.root_level_plan
        planned.plan.level_plan = LevelPlan(
            entries=level.entries + (
                LayerAssignment("ghost", PartitionType.TYPE_I, 0.5),
            ),
            cost=level.cost,
            scheme=level.scheme,
        )
        issues = verify_planned(planned)
        assert any("ghost" in issue for issue in issues)

    def test_strict_mode_raises(self, planned):
        planned.plan.level_plan = _without_layer(planned.root_level_plan, "cv1")
        with pytest.raises(PlanVerificationError):
            verify_planned(planned, strict=True)

    def test_memory_overflow_detected(self):
        from repro.hardware import AcceleratorSpec, make_group

        tiny = AcceleratorSpec("tiny", flops=1e12, memory_bytes=1e6,
                               memory_bandwidth=1e9, network_bandwidth=1e9)
        planned = AccParPlanner(make_group(tiny, 2)).plan(
            build_model("alexnet"), batch=64
        )
        issues = verify_planned(planned)
        assert any("GiB" in issue for issue in issues)

    def test_optimizer_state_counts_against_memory(self, planned):
        # Adam triples the weight-adjacent footprint; still fits TPU HBM here
        assert verify_planned(planned, optimizer=ADAM) == []
