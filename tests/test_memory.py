"""Unit tests for memory-footprint accounting."""

import pytest

from repro.core.stages import iter_sharded_workloads, shard_stages, to_sharded_stages
from repro.core.types import PartitionType
from repro.plan.ir import LayerPartition
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.models import build_model
from repro.sim.memory import leaf_memory_report

I, II = PartitionType.TYPE_I, PartitionType.TYPE_II


@pytest.fixture
def stages():
    return to_sharded_stages(build_model("alexnet").stages(batch=64))


class TestFootprint:
    def test_weight_bytes(self, stages):
        report = leaf_memory_report(stages, make_group(TPU_V3, 1))
        expected = sum(sw.a_weight() for sw in iter_sharded_workloads(stages)) * 2
        assert report.weight_bytes == pytest.approx(expected)

    def test_gradients_mirror_weights(self, stages):
        report = leaf_memory_report(stages, make_group(TPU_V3, 1))
        assert report.gradient_bytes == report.weight_bytes

    def test_total_is_components_sum(self, stages):
        report = leaf_memory_report(stages, make_group(TPU_V3, 1))
        assert report.total_bytes == pytest.approx(
            report.weight_bytes + report.gradient_bytes + report.activation_bytes
        )

    def test_alexnet_fits_on_one_board(self, stages):
        report = leaf_memory_report(stages, make_group(TPU_V2, 1))
        assert report.fits
        assert 0.0 < report.utilization < 1.0

    def test_sharding_reduces_footprint(self, stages):
        assignments = {
            sw.name: LayerPartition(II, 0.5)
            for sw in iter_sharded_workloads(stages)
        }
        left = shard_stages(stages, assignments, "left")
        full = leaf_memory_report(stages, make_group(TPU_V3, 1))
        half = leaf_memory_report(left, make_group(TPU_V3, 1))
        assert half.weight_bytes == pytest.approx(full.weight_bytes / 2)

    def test_capacity_from_group(self, stages):
        one = leaf_memory_report(stages, make_group(TPU_V3, 1))
        two = leaf_memory_report(stages, make_group(TPU_V3, 2))
        assert two.capacity_bytes == pytest.approx(2 * one.capacity_bytes)

    def test_overflow_detected(self, stages):
        from repro.hardware import AcceleratorSpec

        tiny = AcceleratorSpec("tiny", flops=1e12, memory_bytes=1e6,
                               memory_bandwidth=1e9, network_bandwidth=1e9)
        report = leaf_memory_report(stages, make_group(tiny, 1))
        assert not report.fits
        assert report.utilization > 1.0
