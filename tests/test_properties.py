"""Property-based tests (hypothesis) of the core invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brute_force import brute_force_chain
from repro.core.cost_model import PairCostModel, inter_layer_elements
from repro.core.dp_search import search_stages
from repro.core.ratio import RATIO_HI, RATIO_LO, solve_balanced_ratio
from repro.core.stages import ShardedLayerStage
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.graph.shapes import TensorShape
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.sim.trace import EventKind, TraceEvent
from repro.core.types import Phase

types_st = st.sampled_from(list(ALL_TYPES))
ratio_st = st.floats(min_value=0.01, max_value=0.99)
fm_st = st.floats(min_value=1.0, max_value=1e9)


dims_st = st.integers(min_value=1, max_value=512)
batch_st = st.integers(min_value=1, max_value=256)


def make_fc(batch, d_in, d_out, name="fc"):
    return ShardedWorkload(
        LayerWorkload(name, batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    )


class TestInterLayerProperties:
    @given(fm_st, types_st, types_st, ratio_st)
    def test_amounts_nonnegative_and_bounded(self, a_fm, tt, t, alpha):
        amount_i, amount_j = inter_layer_elements(a_fm, tt, t, alpha)
        assert 0.0 <= amount_i <= 2.0 * a_fm + 1e-9
        assert 0.0 <= amount_j <= 2.0 * a_fm + 1e-9

    @given(fm_st, types_st, types_st, ratio_st)
    def test_party_swap_symmetry(self, a_fm, tt, t, alpha):
        """Evaluating at beta with parties swapped gives the mirrored costs."""
        forward = inter_layer_elements(a_fm, tt, t, alpha)
        mirrored = inter_layer_elements(a_fm, tt, t, 1.0 - alpha)
        assert forward[0] == pytest.approx(mirrored[1], rel=1e-9, abs=1e-9)
        assert forward[1] == pytest.approx(mirrored[0], rel=1e-9, abs=1e-9)

    @given(fm_st, types_st, ratio_st)
    def test_rotation_free_transitions(self, a_fm, t, alpha):
        """Type-II→III and III→II are always free, like I→I (Figure 2)."""
        for tt, t2 in [
            (PartitionType.TYPE_I, PartitionType.TYPE_I),
            (PartitionType.TYPE_II, PartitionType.TYPE_III),
            (PartitionType.TYPE_III, PartitionType.TYPE_II),
        ]:
            assert inter_layer_elements(a_fm, tt, t2, alpha) == (0.0, 0.0)

    @given(fm_st, ratio_st)
    def test_amount_scales_linearly_with_tensor(self, a_fm, alpha):
        one = inter_layer_elements(a_fm, PartitionType.TYPE_I,
                                   PartitionType.TYPE_III, alpha)
        two = inter_layer_elements(2 * a_fm, PartitionType.TYPE_I,
                                   PartitionType.TYPE_III, alpha)
        assert two[0] == pytest.approx(2 * one[0])


class TestShardedWorkloadProperties:
    @given(batch_st, dims_st, dims_st, types_st, ratio_st)
    def test_shard_conserves_split_dimension(self, batch, d_in, d_out, t, alpha):
        base = make_fc(batch, d_in, d_out)
        left = base.shard(t, alpha)
        right = base.shard(t, 1.0 - alpha)
        assert left.batch + right.batch == pytest.approx(base.batch + (
            base.batch if t is not PartitionType.TYPE_I else 0.0
        )) or t is PartitionType.TYPE_I
        if t is PartitionType.TYPE_I:
            assert left.batch + right.batch == pytest.approx(base.batch)
        elif t is PartitionType.TYPE_II:
            assert left.d_in + right.d_in == pytest.approx(base.d_in)
        else:
            assert left.d_out + right.d_out == pytest.approx(base.d_out)

    @given(batch_st, dims_st, dims_st, types_st, ratio_st)
    def test_flops_nonnegative_and_monotone(self, batch, d_in, d_out, t, alpha):
        base = make_fc(batch, d_in, d_out)
        sharded = base.shard(t, alpha)
        assert sharded.flops_total() >= 0.0
        assert sharded.flops_total() <= base.flops_total() + 1e-6

    @given(batch_st, dims_st, dims_st, types_st)
    def test_psum_matches_replicated_tensor_size(self, batch, d_in, d_out, t):
        """Table 3: the psum tensor and the replicated tensor have the same
        shape under every type (rotational symmetry)."""
        sw = make_fc(batch, d_in, d_out)
        assert sw.a_psum(t) == sw.a_replicated(t)


class TestRatioSolverProperties:
    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_affine_costs_balance_or_minimax(self, vi, vj, ui, uj):
        def pair(a):
            return ui + vi * a, uj + vj * (1.0 - a)

        alpha = solve_balanced_ratio(pair)
        assert RATIO_LO <= alpha <= RATIO_HI
        ci, cj = pair(alpha)
        exact = (uj + vj - ui) / (vi + vj)
        if RATIO_LO < exact < RATIO_HI:
            assert ci == pytest.approx(cj, rel=1e-4, abs=1e-6)
        else:
            # no interior balance: result must sit at (or near) a boundary
            assert alpha <= RATIO_LO + 0.02 or alpha >= RATIO_HI - 0.02

    @given(st.floats(min_value=1.0, max_value=1e15),
           st.floats(min_value=1.0, max_value=1e15))
    def test_proportional_ratio_in_bounds(self, ci, cj):
        from repro.core.ratio import compute_proportional_ratio

        assert RATIO_LO <= compute_proportional_ratio(ci, cj) <= RATIO_HI


class TestDpOptimalityProperty:
    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(st.integers(min_value=2, max_value=2048), min_size=2, max_size=5),
        st.integers(min_value=1, max_value=512),
        st.sampled_from(["balanced", "equal", "comm-volume"]),
    )
    def test_dp_equals_brute_force(self, widths, batch, ratio_mode):
        stages = [
            ShardedLayerStage(make_fc(batch, widths[i], widths[i + 1], f"fc{i}"))
            for i in range(len(widths) - 1)
        ]
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                              ratio_mode=ratio_mode)
        dp = search_stages(stages, model)
        bf = brute_force_chain(stages, model)
        assert dp.cost == pytest.approx(bf.cost, rel=1e-9)

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(st.integers(min_value=2, max_value=2048), min_size=2, max_size=4),
        st.lists(types_st, min_size=3, max_size=3),
        st.integers(min_value=1, max_value=128),
    )
    def test_dp_beats_any_fixed_assignment(self, widths, fixed_types, batch):
        stages = [
            ShardedLayerStage(make_fc(batch, widths[i], widths[i + 1], f"fc{i}"))
            for i in range(len(widths) - 1)
        ]
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))
        optimal = search_stages(stages, model)
        pinned = search_stages(
            stages,
            model,
            space_fn=lambda w: (fixed_types[int(w.name[2:]) % 3],),
        )
        assert optimal.cost <= pinned.cost + 1e-9


class TestTraceProperties:
    @given(st.floats(min_value=0.0, max_value=1e12),
           st.integers(min_value=1, max_value=1024))
    def test_quantization_bounds(self, amount, granule):
        e = TraceEvent(EventKind.LOAD, "l", Phase.FORWARD, amount, granule)
        q = e.quantized_amount()
        assert q >= amount - 1e-6
        assert q < amount + granule + 1e-6
        if granule > 1:
            # quantized amounts land on whole granules; granule-1 (FC) traces
            # keep fractional effective amounts untouched
            assert math.isclose(q % granule, 0.0, abs_tol=1e-6) or math.isclose(
                q % granule, granule, abs_tol=1e-6
            )


class TestShapeProperties:
    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=5))
    def test_size_is_product(self, dims):
        assert TensorShape(tuple(dims)).size == math.prod(dims)
