"""SLO engine: config parsing, burn-rate windows, Prometheus rendering."""

import pytest

from repro.obs.registry import LatencyHistogram, render_prometheus
from repro.obs.slo import (
    SLOConfig,
    SLOSpecError,
    SLOTracker,
    render_slo_lines,
)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSLOConfig:
    def test_defaults(self):
        config = SLOConfig()
        assert config.latency_ms == 250.0
        assert config.objective == 0.99
        assert config.error_budget == pytest.approx(0.01)
        assert config.latency_s == 0.25

    def test_parse_round_trip(self):
        config = SLOConfig.parse(
            "latency_ms=100,objective=0.999,window_fast_s=60,"
            "window_slow_s=600")
        assert config.latency_ms == 100.0
        assert config.objective == 0.999
        assert config.window_fast_s == 60.0
        assert SLOConfig.parse(config.describe()) == config

    def test_partial_spec_keeps_defaults(self):
        config = SLOConfig.parse("latency_ms=50")
        assert config.latency_ms == 50.0
        assert config.objective == 0.99

    @pytest.mark.parametrize("text", [
        "latency_ms=0",
        "objective=1.5",
        "objective=0",
        "window_fast_s=-1",
        "window_fast_s=600,window_slow_s=60",
        "nonsense=1",
        "latency_ms=abc",
        "latency_ms",
    ])
    def test_bad_specs_raise(self, text):
        with pytest.raises(SLOSpecError):
            SLOConfig.parse(text)


class TestSLOTracker:
    def test_attainment_and_budget(self):
        tracker = SLOTracker("latency_ms=100,objective=0.9")
        for _ in range(9):
            assert tracker.observe(0.05) is True
        assert tracker.observe(0.5) is False  # too slow
        snap = tracker.snapshot()
        assert snap["good_total"] == 9
        assert snap["bad_total"] == 1
        assert snap["attainment"] == pytest.approx(0.9)
        # 10% errors against a 10% budget: budget exactly spent
        assert snap["error_budget_remaining"] == pytest.approx(0.0)

    def test_not_ok_is_always_bad(self):
        tracker = SLOTracker("latency_ms=100,objective=0.9")
        assert tracker.observe(0.001, ok=False) is False
        assert tracker.snapshot()["bad_total"] == 1

    def test_injected_bad_counted_separately(self):
        tracker = SLOTracker("latency_ms=100,objective=0.9")
        tracker.observe(0.5, injected=True)
        tracker.observe(0.5)
        snap = tracker.snapshot()
        assert snap["bad_total"] == 2
        assert snap["injected_bad_total"] == 1

    def test_deadline_attainment(self):
        tracker = SLOTracker()
        tracker.observe(0.01, deadline_met=True)
        tracker.observe(0.01, deadline_met=False)
        tracker.observe(0.01)  # no deadline: not in the denominator
        snap = tracker.snapshot()
        assert snap["deadline_total"] == 2
        assert snap["deadline_met_total"] == 1
        assert snap["deadline_attainment"] == pytest.approx(0.5)

    def test_burn_rate_windows_with_fake_clock(self):
        clock = FakeClock()
        tracker = SLOTracker(
            "latency_ms=100,objective=0.9,window_fast_s=60,window_slow_s=600",
            clock=clock)
        # an old burst of errors: 4 bad, 4 good
        for _ in range(4):
            tracker.observe(0.5)
            tracker.observe(0.05)
        # fast window sees 50% errors over a 10% budget: burn 5x
        assert tracker.burn_rate() == pytest.approx(5.0)
        # 2 minutes later the burst has left the fast window...
        clock.advance(120.0)
        tracker.observe(0.05)
        assert tracker.burn_rate() == pytest.approx(0.0)
        # ...but still burns the slow window
        assert tracker.burn_rate(600.0) == pytest.approx(
            (4 / 9) / 0.1)
        # and past the slow window everything is forgotten
        clock.advance(700.0)
        tracker.observe(0.05)
        assert tracker.burn_rate(600.0) == pytest.approx(0.0)

    def test_idle_tracker_is_quiet(self):
        tracker = SLOTracker()
        assert tracker.burn_rate() == 0.0
        snap = tracker.snapshot()
        assert snap["attainment"] is None
        assert snap["error_budget_remaining"] == 1.0
        assert snap["burn_rate_fast"] == 0.0

    def test_render_lines(self):
        tracker = SLOTracker("latency_ms=100,objective=0.9")
        tracker.observe(0.01, deadline_met=True)
        text = tracker.render(title="slo (test)")
        assert "slo (test)" in text
        assert "good=1" in text
        assert "met=1/1" in text
        # the offline renderer accepts a raw snapshot too
        assert render_slo_lines(tracker.snapshot()).startswith("slo")


class TestPrometheusSLOSection:
    def test_slo_series_rendered(self):
        tracker = SLOTracker("latency_ms=100,objective=0.9")
        tracker.observe(0.01, deadline_met=True)
        tracker.observe(0.5, injected=True)
        text = render_prometheus({"slo": tracker.snapshot()},
                                 include_defaults=False)
        assert "repro_slo_good_total 1" in text
        assert "repro_slo_bad_total 1" in text
        assert "repro_slo_injected_bad_total 1" in text
        assert "repro_slo_deadline_total 1" in text
        assert "repro_slo_latency_target_seconds 0.1" in text
        assert "repro_slo_objective 0.9" in text
        assert "repro_slo_attainment 0.5" in text
        assert 'repro_slo_burn_rate{window="fast"}' in text
        assert 'repro_slo_burn_rate{window="slow"}' in text

    def test_tracer_and_telemetry_sections(self):
        snapshot = {
            "tracer": {"enabled": True, "spans_started": 7,
                       "spans_dropped": 2, "buffer_len": 5,
                       "buffer_high_water": 6, "max_spans": 200000},
            "telemetry": {"enabled": True, "events_written": 11,
                          "events_dropped": 0, "bytes_written": 1024,
                          "segments_rotated": 1, "segments_deleted": 0,
                          "segment_seq": 1},
        }
        text = render_prometheus(snapshot, include_defaults=False)
        assert "repro_tracer_spans_started_total 7" in text
        assert "repro_tracer_spans_dropped_total 2" in text
        assert "repro_tracer_buffer_high_water 6" in text
        assert "repro_tracer_max_spans 200000" in text
        assert "repro_telemetry_events_written_total 11" in text
        assert "repro_telemetry_segment_seq 1" in text


class TestPrometheusHistogramSeries:
    def _rendered(self, values):
        hist = LatencyHistogram("request_latency_s")
        for value in values:
            hist.observe(value)
        snapshot = {"metrics": {"histograms": {
            "request_latency_s": hist.summary()}}}
        return values, render_prometheus(snapshot, include_defaults=False)

    def test_buckets_are_monotone_and_end_at_count(self):
        values = [0.0001, 0.001, 0.001, 0.01, 0.1, 1.0, 200.0]
        _, text = self._rendered(values)
        bucket_counts = []
        for line in text.splitlines():
            if line.startswith(
                    "repro_service_request_latency_hist_seconds_bucket"):
                bucket_counts.append(int(line.rsplit(" ", 1)[1]))
        assert bucket_counts, "histogram bucket series missing"
        assert bucket_counts == sorted(bucket_counts), "le must be cumulative"
        assert bucket_counts[-1] == len(values)  # +Inf == _count
        assert ('repro_service_request_latency_hist_seconds_count '
                f'{len(values)}') in text

    def test_sum_matches_exact_total(self):
        values = [0.25, 0.5, 0.125]
        _, text = self._rendered(values)
        for line in text.splitlines():
            if line.startswith(
                    "repro_service_request_latency_hist_seconds_sum"):
                assert float(line.rsplit(" ", 1)[1]) == \
                    pytest.approx(sum(values))
                return
        raise AssertionError("_sum series missing")

    def test_observation_beyond_last_bound_lands_in_inf(self):
        hist = LatencyHistogram("request_latency_s", buckets=(0.1, 1.0))
        hist.observe(50.0)
        buckets = hist.buckets()
        assert buckets["bounds"] == [0.1, 1.0]
        assert buckets["counts"] == [0, 0, 1]
