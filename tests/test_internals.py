"""Direct unit tests for internals exercised only indirectly elsewhere."""

import numpy as np
import pytest

from repro.core.cost_model import PairCostModel
from repro.core.dp_search import (
    TransitionInfo,
    _BackNode,
    dp_over_stages,
    layer_stage_transitions,
)
from repro.core.stages import ShardedLayerStage
from repro.core.types import (
    ALL_TYPES,
    PartitionType,
    Phase,
    ShardedWorkload,
)
from repro.graph.layers import LayerWorkload
from repro.plan.ir import LayerAssignment
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.numeric.sharding import AxisShard, reassemble, take
from repro.numeric.two_device import (
    CommLog,
    LayerPlanNumeric,
    Layout,
    error_consumer_layout,
    error_producer_layout,
)
from repro.sim.trace import EventKind, optimizer_update_events, total_amount
from repro.training.optimizers import ADAM, SGD

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def fc_stage(name="fc", batch=8, d_in=6, d_out=4):
    w = LayerWorkload(name, batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    return ShardedLayerStage(ShardedWorkload(w))


@pytest.fixture
def model():
    return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))


class TestBacktracking:
    def test_backtrack_restores_stage_order(self):
        first = _BackNode((LayerAssignment("x", I, 0.5),), parent=None)
        second = _BackNode((LayerAssignment("y", II, 0.5),), parent=first)
        assert [e.name for e in second.backtrack()] == ["x", "y"]

    def test_empty_groups_skipped(self):
        first = _BackNode((LayerAssignment("x", I, 0.5),), parent=None)
        empty = _BackNode((), parent=first)
        assert [e.name for e in empty.backtrack()] == ["x"]

    def test_shared_prefix_not_copied(self):
        # two branches share the same parent chain object (O(N) memory)
        prefix = _BackNode((LayerAssignment("x", I, 0.5),), parent=None)
        left = _BackNode((LayerAssignment("l", II, 0.5),), parent=prefix)
        right = _BackNode((LayerAssignment("r", III, 0.5),), parent=prefix)
        assert left.parent is right.parent
        assert [e.name for e in left.backtrack()] == ["x", "l"]
        assert [e.name for e in right.backtrack()] == ["x", "r"]

    def test_transition_info_is_plain_record(self):
        info = TransitionInfo(1.0, (LayerAssignment("x", I, 0.5),))
        assert info.cost == 1.0
        by_name = {e.name: e for e in info.entries}
        assert by_name["x"].ptype is I


class TestDpInternals:
    def test_layer_transitions_cover_in_states_times_space(self, model):
        stage = fc_stage()
        transitions = layer_stage_transitions(stage, model, ALL_TYPES,
                                              [None, I])
        assert len(transitions) == 2 * 3
        for (tt, t), info in transitions.items():
            assert info.cost > 0
            by_name = {e.name: e for e in info.entries}
            assert by_name["fc"].ptype is t

    def test_dp_over_stages_exposes_all_exits(self, model):
        exits = dp_over_stages([fc_stage()], model, ALL_TYPES, {None: 0.0})
        assert set(exits) == set(ALL_TYPES)

    def test_entry_costs_shift_results(self, model):
        handicap = 100.0
        exits = dp_over_stages(
            [fc_stage()], model, ALL_TYPES, {I: handicap, II: 0.0}
        )
        # every path through the handicapped entry is at least that expensive
        for state, (cost, _) in exits.items():
            assert cost < handicap  # the II entry is always preferable

    def test_empty_entry_rejected(self, model):
        with pytest.raises(ValueError):
            dp_over_stages([fc_stage()], model, ALL_TYPES, {})


class TestStepPairCosts:
    def test_decomposition_sums(self, model):
        sw = fc_stage().workload
        ci, cj, (cp_i, cp_j), (cm_i, cm_j) = model.step_pair_costs(
            sw, I, II, 0.5
        )
        assert ci == pytest.approx(cp_i + cm_i)
        assert cj == pytest.approx(cp_j + cm_j)


class TestShardingHelpers:
    def test_slice_of(self):
        shard = AxisShard(10, 3)
        assert shard.slice_of(0) == slice(0, 3)
        assert shard.slice_of(1) == slice(3, 10)
        with pytest.raises(ValueError):
            shard.slice_of(2)

    def test_take_reassemble_roundtrip(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((6, 4))
        shard = AxisShard(6, 2)
        parts = [take(m, shard, d, axis=0) for d in (0, 1)]
        np.testing.assert_array_equal(reassemble(*parts, axis=0), m)

    def test_layout_owned_extent(self):
        row = Layout("row", AxisShard(8, 3))
        assert row.owned_extent(0, (8, 5)) == (3, 5)
        assert row.owned_extent(1, (8, 5)) == (5, 5)
        full = Layout("full")
        assert full.owned_extent(0, (8, 5)) == (8, 5)

    def test_layout_device_part(self):
        m = np.arange(12).reshape(3, 4)
        col = Layout("col", AxisShard(4, 1))
        np.testing.assert_array_equal(col.device_part(m, 0), m[:, :1])
        np.testing.assert_array_equal(col.device_part(m, 1), m[:, 1:])


class TestErrorLayouts:
    def test_consumer_layouts(self):
        dims = (8, 4, 4)
        assert error_consumer_layout(LayerPlanNumeric(I, 0.5), *dims).kind == "row"
        assert error_consumer_layout(LayerPlanNumeric(II, 0.5), *dims).kind == "full"
        assert error_consumer_layout(LayerPlanNumeric(III, 0.5), *dims).kind == "col"

    def test_producer_layouts(self):
        dims = (8, 4, 4)
        assert error_producer_layout(LayerPlanNumeric(I, 0.5), *dims).kind == "row"
        assert error_producer_layout(LayerPlanNumeric(II, 0.5), *dims).kind == "col"
        assert error_producer_layout(LayerPlanNumeric(III, 0.5), *dims).kind == "full"

    def test_effective_alpha_tracks_integer_split(self):
        plan = LayerPlanNumeric(I, 0.3)
        assert plan.effective_alpha(10, 4, 4) == pytest.approx(0.3)
        # with a tiny axis the snap is coarse
        assert LayerPlanNumeric(I, 0.3).effective_alpha(3, 4, 4) == pytest.approx(1 / 3)


class TestCommLog:
    def test_record_accumulates(self):
        log = CommLog()
        log.record(log.intra, "layer0", 5, 7)
        log.record(log.intra, "layer0", 1, 2)
        assert log.intra["layer0"] == (6, 9)

    def test_total_elements(self):
        log = CommLog()
        log.record(log.intra, "a", 1, 2)
        log.record(log.inter_forward, "b", 3, 4)
        log.record(log.inter_backward, "c", 5, 6)
        assert log.total_elements() == 21


class TestOptimizerUpdateEvents:
    def test_sgd_event_amounts(self):
        sw = fc_stage().workload
        events = optimizer_update_events(sw, SGD)
        assert total_amount(events, EventKind.LOAD, quantized=False) == (
            2 * sw.a_weight()
        )
        assert total_amount(events, EventKind.STORE, quantized=False) == (
            sw.a_weight()
        )
        assert total_amount(events, EventKind.ADD, quantized=False) == (
            SGD.flops_per_weight * sw.a_weight()
        )

    def test_adam_touches_more_state(self):
        sw = fc_stage().workload
        sgd_loads = total_amount(optimizer_update_events(sw, SGD),
                                 EventKind.LOAD, quantized=False)
        adam_loads = total_amount(optimizer_update_events(sw, ADAM),
                                  EventKind.LOAD, quantized=False)
        assert adam_loads == sgd_loads + 2 * sw.a_weight()

    def test_update_events_have_no_network(self):
        sw = fc_stage().workload
        events = optimizer_update_events(sw, ADAM)
        assert total_amount(events, EventKind.NET_READ) == 0.0


class TestNetworkAccessors:
    def test_input_name_and_successors(self):
        from repro.graph import Input, Linear, Network

        net = Network("n", Input("in", channels=4))
        net.add(Linear("fc", 4, 2))
        assert net.input_name == "in"
        assert net.successors("in") == ["fc"]
        assert net.predecessors("fc") == ["in"]
