"""Unit tests for the timing engine."""

import pytest

from repro.core.types import Phase
from repro.hardware import AcceleratorSpec, make_group
from repro.sim.engine import EngineConfig, TimingEngine
from repro.sim.trace import EventKind, TraceEvent


def spec(flops=100.0, mem_bw=50.0, net_bw=10.0):
    return AcceleratorSpec("test", flops=flops, memory_bytes=1e9,
                           memory_bandwidth=mem_bw, network_bandwidth=net_bw)


def ev(kind, amount, granule=1):
    return TraceEvent(kind, "l", Phase.FORWARD, amount, granule)


class TestBreakdown:
    def test_compute_time(self):
        engine = TimingEngine()
        b = engine.breakdown([ev(EventKind.MULT, 50), ev(EventKind.ADD, 50)],
                             make_group(spec(), 1))
        assert b.compute == pytest.approx(1.0)
        assert b.memory == 0.0
        assert b.network == 0.0

    def test_memory_time_uses_dtype(self):
        engine = TimingEngine(EngineConfig(dtype_bytes=2))
        b = engine.breakdown([ev(EventKind.LOAD, 25)], make_group(spec(), 1))
        assert b.memory == pytest.approx(25 * 2 / 50.0)

    def test_network_time(self):
        engine = TimingEngine(EngineConfig(dtype_bytes=2))
        b = engine.breakdown([ev(EventKind.NET_READ, 5)], make_group(spec(), 1))
        assert b.network == pytest.approx(1.0)

    def test_group_aggregation_speeds_up(self):
        engine = TimingEngine()
        events = [ev(EventKind.MULT, 100)]
        t1 = engine.breakdown(events, make_group(spec(), 1)).compute
        t4 = engine.breakdown(events, make_group(spec(), 4)).compute
        assert t4 == pytest.approx(t1 / 4)

    def test_quantization_applies(self):
        engine = TimingEngine()
        b = engine.breakdown([ev(EventKind.MULT, 10, granule=9)],
                             make_group(spec(), 1))
        assert b.compute == pytest.approx(18 / 100.0)

    def test_busy_is_sum(self):
        engine = TimingEngine()
        events = [ev(EventKind.MULT, 100), ev(EventKind.LOAD, 25),
                  ev(EventKind.NET_READ, 5)]
        b = engine.breakdown(events, make_group(spec(), 1))
        assert b.busy == pytest.approx(b.compute + b.memory + b.network)


class TestElapsed:
    def test_overlap_takes_max_of_compute_memory(self):
        engine = TimingEngine(EngineConfig(overlap_compute_memory=True))
        events = [ev(EventKind.MULT, 100), ev(EventKind.LOAD, 100)]
        t = engine.elapsed(events, make_group(spec(), 1))
        assert t == pytest.approx(max(1.0, 100 * 2 / 50.0))

    def test_serialized_sums(self):
        engine = TimingEngine(EngineConfig(overlap_compute_memory=False))
        events = [ev(EventKind.MULT, 100), ev(EventKind.LOAD, 100)]
        t = engine.elapsed(events, make_group(spec(), 1))
        assert t == pytest.approx(1.0 + 100 * 2 / 50.0)

    def test_network_never_overlapped(self):
        engine = TimingEngine(EngineConfig(overlap_compute_memory=True))
        events = [ev(EventKind.MULT, 100), ev(EventKind.NET_READ, 5)]
        t = engine.elapsed(events, make_group(spec(), 1))
        assert t == pytest.approx(1.0 + 1.0)

    def test_empty_events(self):
        engine = TimingEngine()
        assert engine.elapsed([], make_group(spec(), 1)) == 0.0


class TestConfig:
    def test_bad_dtype_raises(self):
        with pytest.raises(ValueError):
            EngineConfig(dtype_bytes=0)

    def test_defaults_are_paper_settings(self):
        config = EngineConfig()
        assert config.dtype_bytes == 2  # bfloat16
        assert config.overlap_compute_memory


class TestLinkLatency:
    def test_latency_adds_per_transfer(self):
        fast = TimingEngine(EngineConfig(dtype_bytes=2))
        slow = TimingEngine(EngineConfig(dtype_bytes=2, link_latency_s=0.5))
        events = [ev(EventKind.NET_READ, 5), ev(EventKind.NET_READ, 5)]
        group = make_group(spec(), 1)
        assert slow.breakdown(events, group).network == pytest.approx(
            fast.breakdown(events, group).network + 1.0
        )

    def test_zero_latency_is_paper_model(self):
        config = EngineConfig()
        assert config.link_latency_s == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(link_latency_s=-1.0)
