"""v1 → v2 serialize migration against committed fixture files.

The fixtures in ``tests/fixtures/plans_v1/`` were written by the
pre-refactor serializer (format_version 1: flat ``assignments`` dicts with
``@join:``/``@exit:`` magic keys).  They are frozen: the reader must keep
loading them bit-identically through the migration shim forever, and the
plans they encode pin the AccPar search's decisions across refactors.
"""

import json
from pathlib import Path

import pytest

from repro.core.planner import Planner
from repro.core.serialize import (
    PlanFormatError,
    load_plan,
    plan_from_dict,
    plan_to_dict,
)
from repro.baselines import get_scheme
from repro.models import build_model
from repro.plan import plan_diff, validate_plan
from repro.plan.ir import JoinAlignment, LayerAssignment, PathExit

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "plans_v1"
FIXTURE_FILES = sorted(FIXTURES.glob("*.json"))
FIXTURE_IDS = [p.stem for p in FIXTURE_FILES]


def build_any(name):
    return build_model("trident" if name.startswith("trident") else name)


def count_magic_keys(document):
    joins = exits = 0

    def walk(node):
        nonlocal joins, exits
        if node is None:
            return
        for key in node.get("assignments", {}):
            if key.startswith("@" + "join:"):
                joins += 1
            elif key.startswith("@" + "exit:"):
                exits += 1
        walk(node.get("left"))
        walk(node.get("right"))

    walk(document["plan"])
    return joins, exits


def entries_per_node(plan):
    out = []

    def walk(node, path):
        if node is None:
            return
        out.append((path, None if node.level_plan is None
                    else node.level_plan.entries))
        walk(node.left, path + "L")
        walk(node.right, path + "R")

    walk(plan, "root")
    return out


class TestFixturesAreGenuineV1:
    def test_fixture_set_is_committed(self):
        assert len(FIXTURE_FILES) == 5

    @pytest.mark.parametrize("path", FIXTURE_FILES, ids=FIXTURE_IDS)
    def test_format_version_is_one(self, path):
        assert json.loads(path.read_text())["format_version"] == 1

    def test_multibranch_fixtures_contain_magic_keys(self):
        """The fixtures must actually exercise the @join:/@exit: migration."""
        doc = json.loads((FIXTURES / "resnet18_homo_accpar.json").read_text())
        joins, exits = count_magic_keys(doc)
        assert joins > 0 and exits > 0


class TestV1Migration:
    @pytest.mark.parametrize("path", FIXTURE_FILES, ids=FIXTURE_IDS)
    def test_v1_fixture_loads_and_validates(self, path):
        planned = load_plan(path, network_builder=build_any)
        network = build_any(planned.network_name)
        assert validate_plan(planned.plan, network, planned.batch) == []

    @pytest.mark.parametrize("path", FIXTURE_FILES, ids=FIXTURE_IDS)
    def test_every_magic_key_becomes_one_typed_entry(self, path):
        document = json.loads(path.read_text())
        joins, exits = count_magic_keys(document)
        planned = load_plan(path, network_builder=build_any)
        typed_joins = typed_exits = layers = 0
        for level in planned.level_plans():
            typed_joins += len(level.joins())
            typed_exits += len(level.path_exits())
            layers += len(level.layers())
        assert typed_joins == joins
        assert typed_exits == exits
        # nothing is silently dropped: every v1 key maps to an entry
        total_keys = sum(
            len(node)
            for node in _assignment_dicts(document["plan"])
        )
        assert layers + typed_joins + typed_exits == total_keys

    @pytest.mark.parametrize("path", FIXTURE_FILES, ids=FIXTURE_IDS)
    def test_v1_loads_identical_to_its_v2_reencoding(self, path):
        """The property the format guarantees: migrate(v1) == read(write(v2))."""
        from_v1 = load_plan(path, network_builder=build_any)
        v2_document = plan_to_dict(from_v1)
        assert v2_document["format_version"] == 2
        from_v2 = plan_from_dict(v2_document, network_builder=build_any)
        assert entries_per_node(from_v1.plan) == entries_per_node(from_v2.plan)
        assert plan_diff(from_v1.plan, from_v2.plan) == []

    @pytest.mark.parametrize("path", FIXTURE_FILES, ids=FIXTURE_IDS)
    def test_v2_reencoding_has_no_magic_keys(self, path):
        planned = load_plan(path, network_builder=build_any)
        text = json.dumps(plan_to_dict(planned))
        assert ("@" + "join:") not in text
        assert ("@" + "exit:") not in text

    def test_malformed_exit_key_is_a_format_error(self):
        document = json.loads(
            (FIXTURES / "alexnet_hetero_accpar.json").read_text()
        )
        document["plan"]["assignments"]["@" + "exit:block:notanumber"] = {
            "type": "I", "ratio": 0.5,
        }
        with pytest.raises(PlanFormatError, match="path-exit"):
            plan_from_dict(document)


class TestAccParRegression:
    """Pre-refactor AccPar decisions, pinned by the committed fixtures:
    today's planner must reproduce them with identical types and ratios
    equal within 1e-9."""

    @pytest.mark.parametrize(
        "stem", ["alexnet_hetero_accpar", "vgg19_hetero_accpar",
                 "resnet18_homo_accpar", "trident_hetero_accpar"]
    )
    def test_replanning_matches_fixture(self, stem):
        path = FIXTURES / f"{stem}.json"
        fixture = load_plan(path, network_builder=build_any)
        levels = json.loads(path.read_text())["levels"]
        replanned = Planner(
            fixture.tree.group, get_scheme("accpar"), levels=levels
        ).plan(build_any(fixture.network_name), fixture.batch)
        diffs = plan_diff(fixture.plan, replanned.plan)
        assert diffs == [], "\n".join(str(d) for d in diffs)

    def test_greedy_fixture_matches_replan(self):
        from repro.core.planner import GreedyScheme

        path = FIXTURES / "lenet_hetero_greedy.json"
        fixture = load_plan(path)
        levels = json.loads(path.read_text())["levels"]
        replanned = Planner(
            fixture.tree.group, GreedyScheme(), levels=levels
        ).plan(build_model(fixture.network_name), fixture.batch)
        assert plan_diff(fixture.plan, replanned.plan) == []


def _assignment_dicts(node):
    if node is None:
        return
    yield node.get("assignments", {})
    yield from _assignment_dicts(node.get("left"))
    yield from _assignment_dicts(node.get("right"))
