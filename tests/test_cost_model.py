"""Unit tests for the cost model: Tables 4, 5, 6 and the step policies."""

import pytest

from repro.core.cost_model import (
    CROSS_TRANSITIONS,
    E_TRANSITIONS,
    F_TRANSITIONS,
    PairCostModel,
    ZERO_TRANSITIONS,
    inter_layer_elements,
)
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def fc_sw(batch=8, d_in=6, d_out=4):
    return ShardedWorkload(
        LayerWorkload("fc", batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    )


@pytest.fixture
def hetero_model():
    return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                         dtype_bytes=2, ratio_mode="balanced")


@pytest.fixture
def homo_model():
    return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1),
                         dtype_bytes=2, ratio_mode="balanced")


class TestTransitionTaxonomy:
    def test_nine_transitions_partitioned(self):
        all_pairs = {(a, b) for a in ALL_TYPES for b in ALL_TYPES}
        covered = (
            set(ZERO_TRANSITIONS) | set(CROSS_TRANSITIONS)
            | set(F_TRANSITIONS) | set(E_TRANSITIONS)
        )
        assert covered == all_pairs
        # and the four classes are disjoint
        total = (len(ZERO_TRANSITIONS) + len(CROSS_TRANSITIONS)
                 + len(F_TRANSITIONS) + len(E_TRANSITIONS))
        assert total == 9

    def test_zero_transitions_match_figure2(self):
        assert (I, I) in ZERO_TRANSITIONS
        assert (II, III) in ZERO_TRANSITIONS
        assert (III, II) in ZERO_TRANSITIONS


class TestTable5InterLayer:
    """inter_layer_elements against the closed forms of Table 5."""

    A_FM = 1000.0

    def test_zero_cost_transitions(self):
        for tt, t in ZERO_TRANSITIONS:
            assert inter_layer_elements(self.A_FM, tt, t, 0.3) == (0.0, 0.0)

    @pytest.mark.parametrize("tt,t", sorted(CROSS_TRANSITIONS,
                                            key=lambda p: (p[0].value, p[1].value)))
    def test_cross_transitions_alpha_beta_both_tensors(self, tt, t):
        alpha = 0.3
        expected = alpha * 0.7 * 2 * self.A_FM  # A(F) + A(E)
        amount_i, amount_j = inter_layer_elements(self.A_FM, tt, t, alpha)
        assert amount_i == pytest.approx(expected)
        assert amount_j == pytest.approx(expected)

    @pytest.mark.parametrize("tt,t", sorted(F_TRANSITIONS | E_TRANSITIONS,
                                            key=lambda p: (p[0].value, p[1].value)))
    def test_one_tensor_transitions(self, tt, t):
        alpha = 0.3
        amount_i, amount_j = inter_layer_elements(self.A_FM, tt, t, alpha)
        assert amount_i == pytest.approx(0.7 * self.A_FM)  # beta * A
        assert amount_j == pytest.approx(0.3 * self.A_FM)  # alpha * A

    def test_equal_ratio_is_symmetric(self):
        for tt in ALL_TYPES:
            for t in ALL_TYPES:
                amount_i, amount_j = inter_layer_elements(self.A_FM, tt, t, 0.5)
                assert amount_i == pytest.approx(amount_j)

    def test_cross_transition_vanishes_at_extreme_ratio(self):
        amount_i, _ = inter_layer_elements(self.A_FM, I, II, 1e-9)
        assert amount_i == pytest.approx(0.0, abs=1e-3)


class TestTable4IntraLayer:
    def test_type_i_moves_weight(self, homo_model):
        sw = fc_sw()
        ci, cj = homo_model.intra_costs(sw, I)
        expected = sw.a_weight() * 2 / TPU_V3.network_bandwidth
        assert ci == pytest.approx(expected)
        assert cj == pytest.approx(expected)

    def test_type_ii_moves_output_fm(self, homo_model):
        sw = fc_sw()
        ci, _ = homo_model.intra_costs(sw, II)
        assert ci == pytest.approx(sw.a_output_fm() * 2 / TPU_V3.network_bandwidth)

    def test_type_iii_moves_input_error(self, homo_model):
        sw = fc_sw()
        ci, _ = homo_model.intra_costs(sw, III)
        assert ci == pytest.approx(sw.a_input_fm() * 2 / TPU_V3.network_bandwidth)

    def test_intra_cost_uses_each_partys_bandwidth(self, hetero_model):
        sw = fc_sw()
        ci, cj = hetero_model.intra_costs(sw, I)
        assert ci * TPU_V3.network_bandwidth == pytest.approx(
            cj * TPU_V2.network_bandwidth
        )

    def test_intra_cost_independent_of_alpha(self, homo_model):
        """Table 4 note: local accumulation makes intra cost ratio-free."""
        sw = fc_sw()
        # intra_costs takes no alpha argument at all; assert it stays fixed
        # under sharding of the non-psum dimensions only through the tensor
        assert homo_model.intra_costs(sw, I) == homo_model.intra_costs(sw, I)


class TestComputeCost:
    def test_alpha_scales_flops(self, homo_model):
        sw = fc_sw()
        ci_half, _ = homo_model.compute_costs(sw, I, 0.5)
        ci_full, _ = homo_model.compute_costs(sw, I, 1.0)
        # psum adds are alpha-independent; subtract them out
        psum_time = sw.a_psum(I) / TPU_V3.flops
        assert (ci_full - psum_time) == pytest.approx(2 * (ci_half - psum_time))

    def test_parties_split_work(self, homo_model):
        sw = fc_sw()
        ci, cj = homo_model.compute_costs(sw, I, 0.25)
        psum_time = sw.a_psum(I) / TPU_V3.flops
        assert (ci - psum_time) * 3 == pytest.approx(cj - psum_time)

    def test_faster_party_computes_faster(self, hetero_model):
        sw = fc_sw()
        ci, cj = hetero_model.compute_costs(sw, I, 0.5)
        assert ci < cj  # party i is the TPU-v3


class TestStepPolicies:
    def test_balanced_step_equalizes_costs_when_balance_exists(self):
        # compute-bound setting (huge bandwidths): Eq. 10 has an interior root
        fast = type(TPU_V3)("f", TPU_V3.flops, 1, 1e30, 1e30)
        slow = type(TPU_V2)("s", TPU_V2.flops, 1, 1e30, 1e30)
        model = PairCostModel(make_group(fast, 1), make_group(slow, 1))
        d = model.step(fc_sw(batch=512, d_in=4096, d_out=4096), I, I)
        assert d.cost_i == pytest.approx(d.cost_j, rel=1e-3)

    def test_balanced_step_minimaxes_when_balance_impossible(self, hetero_model):
        # Table 4's intra term is alpha-independent; with the real 1 vs 2 GB/s
        # links it dominates and the v2 party is the floor no alpha removes
        sw = fc_sw(batch=512, d_in=4096, d_out=4096)
        d = hetero_model.step(sw, I, I)
        intra_j = sw.a_weight() * 2 / TPU_V2.network_bandwidth
        assert d.cost >= intra_j

    def test_balanced_alpha_favors_fast_party(self, hetero_model):
        sw = fc_sw(batch=512, d_in=4096, d_out=4096)
        d = hetero_model.step(sw, I, I)
        assert d.alpha > 0.5  # party i (v3) takes the bigger share

    def test_balanced_alpha_matches_flops_ratio_when_compute_bound(self):
        # make communication negligible: huge bandwidth
        fast = make_group(TPU_V3, 1)
        slow = make_group(TPU_V2, 1)
        big_bw_fast = type(TPU_V3)("f", TPU_V3.flops, 1, 1e30, 1e30)
        big_bw_slow = type(TPU_V2)("s", TPU_V2.flops, 1, 1e30, 1e30)
        model = PairCostModel(make_group(big_bw_fast, 1), make_group(big_bw_slow, 1))
        d = model.step(fc_sw(batch=512, d_in=512, d_out=512), None, I)
        assert d.alpha == pytest.approx(420 / (420 + 180), rel=1e-2)

    def test_equal_mode_takes_slower_party(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                              ratio_mode="equal")
        sw = fc_sw(batch=512, d_in=4096, d_out=4096)
        d = model.step(sw, I, I)
        assert d.alpha == 0.5
        assert d.cost == pytest.approx(max(d.cost_i, d.cost_j))
        assert d.cost == pytest.approx(d.cost_j)  # v2 is slower

    def test_balanced_never_worse_than_equal(self, hetero_model):
        equal_model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                                    ratio_mode="equal")
        for tt in ALL_TYPES:
            for t in ALL_TYPES:
                sw = fc_sw(batch=512, d_in=2048, d_out=1024)
                balanced = hetero_model.step(sw, tt, t).cost
                equal = equal_model.step(sw, tt, t).cost
                assert balanced <= equal * (1 + 1e-9)

    def test_comm_volume_mode_returns_bytes(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1),
                              ratio_mode="comm-volume")
        sw = fc_sw()
        d = model.step(sw, None, I)
        # both parties exchange the full weight psum: 2 * A(W) * 2 bytes
        assert d.cost == pytest.approx(2 * sw.a_weight() * 2)

    def test_comm_volume_includes_inter(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1),
                              ratio_mode="comm-volume")
        sw = fc_sw()
        no_inter = model.step(sw, None, I).cost
        with_inter = model.step(sw, II, I).cost
        assert with_inter > no_inter

    def test_first_layer_has_no_inter_cost(self, homo_model):
        sw = fc_sw()
        assert homo_model.inter_costs(sw.a_input_fm(), None, I, 0.5) == (0.0, 0.0)

    def test_step_decision_records_components(self, homo_model):
        d = homo_model.step(fc_sw(), None, I)
        assert d.cost_i == pytest.approx(d.compute_i + d.comm_i)

    def test_unknown_ratio_mode_raises(self):
        with pytest.raises(ValueError):
            PairCostModel(make_group(TPU_V2, 1), make_group(TPU_V2, 1),
                          ratio_mode="magic")

    def test_bad_dtype_raises(self):
        with pytest.raises(ValueError):
            PairCostModel(make_group(TPU_V2, 1), make_group(TPU_V2, 1),
                          dtype_bytes=0)


class TestBoundaryStep:
    def test_aligned_states_cost_table5(self, homo_model):
        # boundary_step applies Table 5 even on the diagonal; zero transitions
        # stay zero
        d = homo_model.boundary_step(1000.0, II, III)
        assert d.cost == 0.0

    def test_nominal_alpha_balanced(self, hetero_model):
        assert hetero_model.nominal_alpha() == pytest.approx(420 / 600)

    def test_nominal_alpha_equal(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                              ratio_mode="equal")
        assert model.nominal_alpha() == 0.5

    def test_comm_volume_boundary(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1),
                              ratio_mode="comm-volume")
        d = model.boundary_step(1000.0, I, III, alpha=0.5)
        # beta*A + alpha*A = A elements, times dtype
        assert d.cost == pytest.approx(1000.0 * 2)


class TestProportionalMode:
    def test_fixed_compute_proportional_alpha(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                              ratio_mode="proportional")
        sw = fc_sw(batch=512, d_in=1024, d_out=1024)
        for tt in (None, I, II, III):
            d = model.step(sw, tt, I)
            assert d.alpha == pytest.approx(420 / 600)

    def test_cost_is_slower_party(self):
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                              ratio_mode="proportional")
        d = model.step(fc_sw(), None, I)
        assert d.cost == pytest.approx(max(d.cost_i, d.cost_j))

    def test_balanced_never_worse_than_proportional(self):
        balanced = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))
        proportional = PairCostModel(make_group(TPU_V3, 1),
                                     make_group(TPU_V2, 1),
                                     ratio_mode="proportional")
        for t in ALL_TYPES:
            sw = fc_sw(batch=512, d_in=2048, d_out=512)
            assert (balanced.step(sw, I, t).cost
                    <= proportional.step(sw, I, t).cost * (1 + 1e-9))
