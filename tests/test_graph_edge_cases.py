"""Graph IR edge cases beyond the happy paths of test_network.py."""

import pytest

from repro.graph import (
    Add,
    Conv2d,
    FeatureMap,
    Flatten,
    GraphError,
    Input,
    LayerStage,
    Linear,
    Network,
    ParallelStage,
    Pool2d,
    ReLU,
)


class TestMinimalNetworks:
    def test_single_weighted_layer(self):
        net = Network("one", Input("in", channels=4))
        net.add(Linear("fc", 4, 2))
        stages = net.stages(batch=2)
        assert len(stages) == 1
        assert isinstance(stages[0], LayerStage)

    def test_input_only_network_has_no_stages(self):
        net = Network("none", Input("in", channels=4))
        assert net.stages(batch=2) == []

    def test_unweighted_only_network(self):
        net = Network("relu-only", Input("in", channels=4, height=2, width=2))
        net.add(ReLU("r"))
        net.add(Pool2d("p", kernel=2))
        assert net.stages(batch=2) == []
        assert net.workloads(2) == []


class TestForkPlacement:
    def test_fork_directly_at_input(self):
        """The network input itself feeds two branches."""
        net = Network("fork-at-input", Input("in", channels=4, height=4, width=4))
        a = net.add(Conv2d("a", 4, 4, kernel=3, padding=1), inputs=["in"])
        b = net.add(Conv2d("b", 4, 4, kernel=3, padding=1), inputs=["in"])
        j = net.add(Add("join"), inputs=[a, b])
        net.add(Flatten("f"), inputs=[j])
        net.add(Linear("fc", 64, 2))
        stages = net.stages(batch=2)
        assert isinstance(stages[0], ParallelStage)
        assert len(stages[0].paths) == 2

    def test_parallel_stage_as_last_stage(self):
        """The network ends at the join — no layer after the fork/join."""
        net = Network("fork-at-end", Input("in", channels=4, height=4, width=4))
        c = net.add(Conv2d("c", 4, 4, kernel=3, padding=1))
        a = net.add(Conv2d("a", 4, 4, kernel=3, padding=1), inputs=[c])
        net.add(Add("join"), inputs=[a, c])
        stages = net.stages(batch=2)
        assert isinstance(stages[-1], ParallelStage)

    def test_three_way_fork(self):
        net = Network("threeway", Input("in", channels=4, height=4, width=4))
        c = net.add(Conv2d("c", 4, 4, kernel=3, padding=1))
        paths = [
            net.add(Conv2d(f"p{i}", 4, 4, kernel=1), inputs=[c])
            for i in range(3)
        ]
        net.add(Add("join"), inputs=paths)
        stages = net.stages(batch=2)
        parallel = stages[-1]
        assert isinstance(parallel, ParallelStage)
        assert len(parallel.paths) == 3

    def test_back_to_back_forks_share_no_layers(self):
        """Two sequential residual regions decompose independently."""
        net = Network("seq-forks", Input("in", channels=4, height=4, width=4))
        cursor = net.add(Conv2d("stem", 4, 4, kernel=3, padding=1))
        for blk in ("x", "y"):
            body = net.add(Conv2d(f"{blk}_cv", 4, 4, kernel=3, padding=1),
                           inputs=[cursor])
            cursor = net.add(Add(f"{blk}_add"), inputs=[body, cursor])
        stages = net.stages(batch=2)
        parallels = [s for s in stages if isinstance(s, ParallelStage)]
        assert len(parallels) == 2


class TestShapeEdgeCases:
    def test_1x1_feature_map_conv(self):
        net = Network("tiny", Input("in", channels=8, height=1, width=1))
        net.add(Conv2d("c", 8, 16, kernel=1))
        shapes = net.infer_shapes(2)
        assert shapes["c"] == FeatureMap(2, 16, 1, 1)

    def test_batch_one(self):
        from repro.models import build_model

        net = build_model("lenet")
        shapes = net.infer_shapes(1)
        assert shapes[net.output_name].batch == 1

    def test_describe_at_batch_one(self):
        net = Network("d", Input("in", channels=2, height=2, width=2))
        net.add(Flatten("f"))
        net.add(Linear("fc", 8, 2))
        text = net.describe(1)
        assert "(1, 2, 1, 1)" in text


class TestDecompositionConsistency:
    def test_stage_decomposition_is_deterministic(self):
        from repro.models import build_model

        a = build_model("resnet50").stages(8)
        b = build_model("resnet50").stages(8)
        from repro.graph import iter_stage_workloads

        assert ([w.name for w in iter_stage_workloads(a)]
                == [w.name for w in iter_stage_workloads(b)])

    def test_batch_does_not_change_structure(self):
        from repro.models import build_model
        from repro.graph import count_stage_layers

        net = build_model("resnet34")
        assert count_stage_layers(net.stages(2)) == count_stage_layers(
            net.stages(64)
        )

    def test_workload_batch_propagates(self):
        from repro.models import build_model

        for w in build_model("vgg11").workloads(96):
            assert w.batch == 96
