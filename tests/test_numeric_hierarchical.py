"""Tests of the multi-level (2^h devices) numeric executor.

Validates the recursive scheme of Section 5.1 end-to-end: nested partition
types compose to the exact single-device result, and the per-level
partial-sum traffic matches the analytic accounting (most importantly: pure
data parallelism pays the full gradient exchange at every level).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import PartitionType
from repro.numeric.hierarchical import HierarchicalMlpExecutor
from repro.numeric.reference import MlpSpec, reference_step
from repro.numeric.two_device import LayerPlanNumeric

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

SPEC = MlpSpec([16, 16, 16])
BATCH = 16


def run_both(level_types, ratio=0.5, spec=SPEC, batch=BATCH, seed=0):
    """level_types: list over levels of per-layer type lists."""
    rng = np.random.default_rng(seed)
    weights = spec.init_weights(seed)
    x = rng.standard_normal((batch, spec.widths[0]))
    target = rng.standard_normal((batch, spec.widths[-1]))
    ref = reference_step(weights, x, target)
    plans = [
        [LayerPlanNumeric(t, ratio) for t in per_layer]
        for per_layer in level_types
    ]
    hier = HierarchicalMlpExecutor(spec, weights, plans, batch).step(x, target)
    return ref, hier


def max_divergence(ref, hier) -> float:
    grad = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.gradients, hier.gradients)
    )
    act = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.activations, hier.activations)
    )
    return max(grad, act, abs(ref.loss - hier.loss))


class TestExactness:
    @pytest.mark.parametrize("t1,t2", list(itertools.product((I, II, III),
                                                             repeat=2)))
    def test_two_levels_uniform_types(self, t1, t2):
        """Four devices: level-1 type x level-2 type, all 9 combinations."""
        ref, hier = run_both([[t1, t1], [t2, t2]])
        assert hier.n_leaf_devices == 4
        assert max_divergence(ref, hier) < 1e-9

    def test_three_levels_mixed(self):
        """Eight devices with a different type mix per level and layer."""
        ref, hier = run_both([[I, II], [II, III], [III, I]])
        assert hier.n_leaf_devices == 8
        assert max_divergence(ref, hier) < 1e-9

    def test_four_levels_deep(self):
        spec = MlpSpec([32, 32, 32])
        ref, hier = run_both([[I, I], [II, II], [III, III], [I, II]],
                             spec=spec, batch=32)
        assert hier.n_leaf_devices == 16
        assert max_divergence(ref, hier) < 1e-9

    @pytest.mark.parametrize("ratio", [0.25, 0.5, 0.75])
    def test_asymmetric_ratios(self, ratio):
        ref, hier = run_both([[II, III], [I, I]], ratio=ratio)
        assert max_divergence(ref, hier) < 1e-9

    def test_zero_levels_is_reference(self):
        ref, hier = run_both([])
        assert hier.n_leaf_devices == 1
        assert max_divergence(ref, hier) == 0.0

    def test_plan_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            HierarchicalMlpExecutor(SPEC, SPEC.init_weights(),
                                    [[LayerPlanNumeric(I, 0.5)]], BATCH)


class TestPerLevelTraffic:
    def test_data_parallel_pays_full_weights_every_level(self):
        """The DP baseline's defining cost: at EVERY level, every node
        exchanges the full (unsharded) ΔW — 2^l nodes x 2 x A(W)."""
        levels = 3
        _, hier = run_both([[I, I]] * levels)
        a_w = 16 * 16
        totals = hier.comm.per_level_totals()
        for level in range(levels):
            nodes = 2 ** level
            assert totals[level] == nodes * 2 * a_w * 2  # 2 layers

    def test_model_partition_shrinks_with_depth(self):
        """Under all-Type-II, the forward psum at level l is the sharded
        F_{l+1}: halved input dim does not change A(F), but the deeper
        levels' tensors shrink once combined with batch splits."""
        _, hier = run_both([[II, II], [I, I], [II, II]])
        totals = hier.comm.per_level_totals()
        # level 2's Type-II psums act on quarter-size F (B halved by the
        # level-1 Type-I split) but are paid by 4 nodes: equal to level 0
        # in total, so per-node traffic shrank 4x
        per_node_l0 = totals[0] / 1
        per_node_l2 = totals[2] / 4
        assert per_node_l2 == pytest.approx(per_node_l0 / 2)

    def test_type_iii_logs_backward_psums(self):
        _, hier = run_both([[III, III]])
        keyed = hier.comm.psum_elements
        # layer 0 propagates no error to the input, so only fc1 psums...
        # but the hierarchical executor computes E_0 only if a previous
        # layer exists; layer fc1's backward psum must be present
        assert (0, "fc1") in keyed

    def test_free_structure_no_psum_for_pure_concat_types(self):
        """A plan whose every phase is concat-combined (no psum) logs no
        traffic: impossible — every type psums in exactly one phase; verify
        instead that each (level, layer) appears at most once per phase."""
        _, hier = run_both([[I, II]])
        for (level, layer), elements in hier.comm.psum_elements.items():
            assert elements > 0


class TestPropertyBased:
    @settings(deadline=None, max_examples=20)
    @given(
        st.lists(
            st.tuples(st.sampled_from([I, II, III]),
                      st.sampled_from([I, II, III])),
            min_size=1,
            max_size=3,
        ),
        st.sampled_from([0.25, 0.5]),
    )
    def test_random_level_plans_exact(self, level_types, ratio):
        # dimensions sized so three 0.25-splits never exhaust an axis
        spec = MlpSpec([32, 32, 32])
        ref, hier = run_both([list(t) for t in level_types], ratio=ratio,
                             spec=spec, batch=32)
        assert max_divergence(ref, hier) < 1e-9

    def test_exhausted_axis_raises_cleanly(self):
        """Splitting a dimension below one element is a clear error, not a
        silent wrong answer."""
        with pytest.raises(ValueError, match="cannot split"):
            run_both([[I, I]] * 5, ratio=0.25)  # batch 16 exhausts
