"""Unit tests for the pluggable search-backend registry (repro.plan.backends)."""

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.stages import ShardedLayerStage, ShardedParallelStage
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.plan.backends import (
    BruteForceSearchBackend,
    available_backends,
    canonical_backend_name,
    get_backend,
    register_backend,
)
from repro.plan.ir import SearchResult

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def fc_stage(name, batch=16, d_in=32, d_out=32):
    w = LayerWorkload(name, batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    return ShardedLayerStage(ShardedWorkload(w))


@pytest.fixture
def model():
    return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                         ratio_mode="balanced")


@pytest.fixture
def chain():
    return [fc_stage(f"l{i}") for i in range(4)]


class TestRegistry:
    def test_five_canonical_backends(self):
        assert available_backends() == [
            "brute-force", "dp", "dp-vectorized", "fixed-type", "greedy"
        ]

    def test_aliases_resolve_to_canonical(self):
        assert get_backend("accpar").name == "dp"
        assert get_backend("exact").name == "dp"
        assert get_backend("dp_vectorized").name == "dp-vectorized"
        assert get_backend("dpv").name == "dp-vectorized"
        assert get_backend("vectorized").name == "dp-vectorized"
        assert get_backend("brute_force").name == "brute-force"
        assert get_backend("bruteforce").name == "brute-force"
        assert get_backend("fixed").name == "fixed-type"
        assert get_backend("fixed_type").name == "fixed-type"

    def test_lookup_is_case_insensitive(self):
        assert get_backend("DP").name == "dp"
        assert get_backend("Greedy").name == "greedy"

    def test_canonical_backend_name(self):
        assert canonical_backend_name("dp") == "dp"
        assert canonical_backend_name("DPV") == "dp-vectorized"
        assert canonical_backend_name("exact") == "dp"
        with pytest.raises(KeyError, match="unknown search backend"):
            canonical_backend_name("simulated-annealing")

    def test_level_plan_counter_canonicalizes_aliases(self, chain):
        # "dpv" and "dp-vectorized" must feed one Prometheus series,
        # not fragment per requested spelling
        from repro.core.counters import planner_counters
        from repro.core.planner import AccParScheme
        from repro.hardware import make_group

        party_i, party_j = make_group(TPU_V3, 1), make_group(TPU_V2, 1)
        before = planner_counters.value("level_plans_dp_vectorized")
        for spelling in ("dpv", "dp_vectorized", "dp-vectorized"):
            AccParScheme(backend=spelling).level_plan(chain, party_i, party_j, 2)
        after = planner_counters.value("level_plans_dp_vectorized")
        assert after == before + 3

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="brute-force.*dp.*fixed-type.*greedy"):
            get_backend("simulated-annealing")

    def test_each_lookup_returns_fresh_instance(self):
        assert get_backend("dp") is not get_backend("dp")

    def test_custom_backend_registration(self, monkeypatch):
        from repro.plan import backends as mod

        monkeypatch.setattr(mod, "_REGISTRY", dict(mod._REGISTRY))
        monkeypatch.setattr(mod, "_ALIASES", dict(mod._ALIASES))

        class Pinned:
            name = "pin-ii"

            def search(self, stages, model, space=ALL_TYPES, space_fn=None):
                return get_backend("dp").search(
                    stages, model, space, space_fn=lambda w: (II,)
                )

        register_backend("pin-ii", Pinned, aliases=("pinned",))
        assert "pin-ii" in available_backends()
        assert get_backend("pinned").name == "pin-ii"


class TestBackendSearch:
    def test_dp_covers_all_layers(self, model, chain):
        result = get_backend("dp").search(chain, model)
        assert isinstance(result, SearchResult)
        assert set(result.types()) == {f"l{i}" for i in range(4)}

    def test_dp_vectorized_matches_dp_bitwise(self, model, chain):
        dp = get_backend("dp").search(chain, model)
        vec = get_backend("dp-vectorized").search(chain, model)
        assert vec.entries == dp.entries
        assert vec.cost == dp.cost
        assert vec.exit_state == dp.exit_state

    def test_greedy_never_beats_dp(self, model, chain):
        dp = get_backend("dp").search(chain, model)
        greedy = get_backend("greedy").search(chain, model)
        assert dp.cost <= greedy.cost + 1e-12

    def test_brute_force_matches_dp_on_small_chain(self, model, chain):
        dp = get_backend("dp").search(chain, model)
        brute = get_backend("brute-force").search(chain, model)
        assert brute.cost == pytest.approx(dp.cost, rel=1e-9)

    def test_brute_force_refuses_long_chains(self, model):
        chain = [fc_stage(f"l{i}") for i in range(13)]
        with pytest.raises(ValueError, match="dp"):
            get_backend("brute-force").search(chain, model)

    def test_brute_force_cap_is_configurable(self, model):
        chain = [fc_stage(f"l{i}") for i in range(5)]
        with pytest.raises(ValueError):
            BruteForceSearchBackend(max_layers=4).search(chain, model)

    def test_fixed_type_pins_type_i(self, model, chain):
        result = get_backend("fixed-type").search(chain, model)
        assert set(result.types().values()) == {I}

    def test_fixed_type_space_fn_takes_precedence(self, model, chain):
        result = get_backend("fixed-type").search(
            chain, model, space_fn=lambda w: (III,)
        )
        assert set(result.types().values()) == {III}

    def test_greedy_linearizes_fork_join(self, model):
        region = ShardedParallelStage(
            paths=((fc_stage("p0a"), fc_stage("p0b")), (fc_stage("p1a"),)),
            name="blk",
        )
        result = get_backend("greedy").search(
            [fc_stage("pre"), region, fc_stage("post")], model
        )
        assert {"pre", "p0a", "p0b", "p1a", "post"} <= set(result.types())

    def test_space_restriction_respected(self, model, chain):
        # fixed-type is excluded: its pinned type_fn deliberately wins
        # over the level's searchable space
        for name in ("dp", "dp-vectorized", "greedy", "brute-force"):
            result = get_backend(name).search(chain, model, space=(II,))
            assert set(result.types().values()) == {II}, name

    def test_fixed_type_pin_wins_over_space(self, model, chain):
        result = get_backend("fixed-type").search(chain, model, space=(II,))
        assert set(result.types().values()) == {I}
