"""Simulator invariants: properties the evaluator must satisfy regardless
of scheme, model, or array."""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.hardware import (
    TPU_V2,
    TPU_V3,
    heterogeneous_array,
    homogeneous_array,
    make_group,
)
from repro.models import build_model
from repro.sim.engine import EngineConfig
from repro.sim.executor import evaluate


def planned(model="alexnet", scheme="accpar", array=None, batch=64, levels=None):
    array = array if array is not None else homogeneous_array(4)
    return Planner(array, get_scheme(scheme), levels=levels).plan(
        build_model(model), batch
    )


class TestTimeInvariants:
    def test_total_is_leaf_plus_comm(self):
        report = evaluate(planned())
        assert report.total_time == pytest.approx(
            report.leaf_time + report.comm_time
        )

    def test_level_count_equals_plan_depth(self):
        for levels in (1, 2, 3):
            p = planned(array=homogeneous_array(8), levels=levels)
            report = evaluate(p)
            assert len(report.levels) == levels

    def test_time_monotone_in_batch(self):
        times = [
            evaluate(planned(scheme="dp", batch=b)).total_time
            for b in (32, 64, 128)
        ]
        assert times[0] < times[1] < times[2]

    def test_total_at_least_level_comm_sum(self):
        report = evaluate(planned())
        assert report.comm_time == pytest.approx(
            sum(lv.comm_time for lv in report.levels)
        )

    def test_faster_hardware_is_faster(self):
        slow = evaluate(planned(array=make_group(TPU_V2, 4))).total_time
        fast = evaluate(planned(array=make_group(TPU_V3, 4))).total_time
        assert fast < slow

    def test_wider_dtype_is_slower(self):
        p = planned(scheme="dp")
        t2 = evaluate(p, EngineConfig(dtype_bytes=2)).total_time
        t4 = evaluate(p, EngineConfig(dtype_bytes=4)).total_time
        assert t4 > t2

    def test_dp_time_invariant_to_model_scheme_mix(self):
        """Evaluating the same planned object twice gives the same answer
        (memoization has no cross-call state)."""
        p = planned(model="resnet18")
        assert evaluate(p).total_time == evaluate(p).total_time


class TestLevelRecords:
    def test_levels_sorted_root_first(self):
        report = evaluate(planned(array=homogeneous_array(8)))
        assert [lv.level for lv in report.levels] == [1, 2, 3]

    def test_net_bytes_symmetric_for_equal_schemes(self):
        report = evaluate(planned(scheme="dp", array=homogeneous_array(4)))
        for lv in report.levels:
            assert lv.net_bytes_left == pytest.approx(lv.net_bytes_right)

    def test_dp_bytes_constant_across_levels(self):
        """Type-I never shards the weights, so every level moves the same
        gradient volume."""
        report = evaluate(planned(scheme="dp", array=homogeneous_array(8)))
        volumes = {round(lv.net_bytes_left) for lv in report.levels}
        assert len(volumes) == 1

    def test_accpar_bytes_shrink_with_depth_on_fc_nets(self):
        """AccPar shards FC weights across levels, so deeper levels move
        less (per the Figure-style analysis)."""
        report = evaluate(
            planned(model="alexnet", scheme="accpar",
                    array=homogeneous_array(16))
        )
        first, last = report.levels[0], report.levels[-1]
        assert last.net_bytes_left < first.net_bytes_left


class TestCrossSchemeInvariants:
    @pytest.mark.parametrize("model", ["lenet", "alexnet", "resnet18"])
    def test_accpar_never_loses_to_dp(self, model):
        array = heterogeneous_array(2, 2)
        t_dp = evaluate(planned(model=model, scheme="dp", array=array)).total_time
        t_acc = evaluate(planned(model=model, scheme="accpar",
                                 array=array)).total_time
        assert t_acc <= t_dp * (1 + 1e-9)

    def test_all_schemes_same_compute_energy(self):
        array = homogeneous_array(4)
        energies = [
            evaluate(planned(scheme=s, array=array)).energy.compute_j
            for s in ("dp", "owt", "hypar", "accpar")
        ]
        for e in energies[1:]:
            assert e == pytest.approx(energies[0], rel=0.02)

    def test_memory_shrinks_with_more_boards(self):
        small = evaluate(planned(scheme="accpar", array=homogeneous_array(2)))
        large = evaluate(planned(scheme="accpar", array=homogeneous_array(16)))
        assert (large.memory_worst.total_bytes
                < small.memory_worst.total_bytes)
