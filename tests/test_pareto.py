"""Unit tests for the cost-landscape analysis."""

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.stages import ShardedLayerStage, to_sharded_stages
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.experiments.pareto import (
    CostLandscape,
    baseline_assignments,
    enumerate_landscape,
)
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.models import build_model

I, II = PartitionType.TYPE_I, PartitionType.TYPE_II


def fc_chain(*dims, batch=64):
    stages = []
    for idx in range(len(dims) - 1):
        w = LayerWorkload(f"fc{idx}", batch, dims[idx], dims[idx + 1],
                          (1, 1), (1, 1), (1, 1), False)
        stages.append(ShardedLayerStage(ShardedWorkload(w)))
    return stages


@pytest.fixture(scope="module")
def landscape():
    stages = fc_chain(256, 1024, 128, 512)
    model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1))
    return enumerate_landscape(stages, model)


class TestEnumerate:
    def test_full_space_size(self, landscape):
        assert len(landscape.costs) == 3 ** 3

    def test_sorted_ascending(self, landscape):
        values = [c for _, c in landscape.costs]
        assert values == sorted(values)

    def test_dp_cost_is_global_optimum(self, landscape):
        assert landscape.dp_cost == pytest.approx(landscape.optimum, rel=1e-9)

    def test_spread_positive(self, landscape):
        assert landscape.spread > 1.0

    def test_percentiles(self, landscape):
        assert landscape.percentile_of(landscape.optimum) == pytest.approx(1.0)
        assert landscape.percentile_of(landscape.worst) == pytest.approx(
            1 / len(landscape.costs)
        )

    def test_cost_of_lookup(self, landscape):
        combo, cost = landscape.costs[5]
        assert landscape.cost_of(combo) == cost

    def test_unknown_assignment_raises(self, landscape):
        with pytest.raises(KeyError):
            landscape.cost_of((I,))

    def test_rejects_parallel_stages(self):
        stages = to_sharded_stages(build_model("resnet18").stages(8))
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1))
        with pytest.raises(ValueError, match="linear chains"):
            enumerate_landscape(stages, model)

    def test_guards_explosion(self):
        stages = fc_chain(*([32] * 13))
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1))
        with pytest.raises(ValueError, match="max_layers"):
            enumerate_landscape(stages, model)


class TestBaselineAssignments:
    def test_dp_is_all_type_i(self):
        stages = fc_chain(8, 8, 8)
        assert baseline_assignments(stages)["dp"] == (I, I)

    def test_owt_follows_layer_kind(self):
        stages = to_sharded_stages(build_model("alexnet").stages(8))
        chain = [s for s in stages if isinstance(s, ShardedLayerStage)]
        owt = baseline_assignments(chain)["owt"]
        assert owt[:5] == (I,) * 5      # conv layers
        assert owt[5:] == (II,) * 3     # fc layers
