"""Unit tests for multi-path (fork/join) search — Section 5.2, Figure 4."""

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.dp_search import search_stages
from repro.core.multipath import alignment_cost, parallel_stage_transitions
from repro.core.stages import (
    ShardedLayerStage,
    ShardedParallelStage,
    to_sharded_stages,
)
from repro.core.types import ALL_TYPES, PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.plan.ir import JoinAlignment, LayerAssignment, LevelPlan, PathExit

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def fc_stage(name, batch=16, d_in=32, d_out=32):
    w = LayerWorkload(name, batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    return ShardedLayerStage(ShardedWorkload(w))


def residual_region(with_skip_layer=False):
    """A Figure 4-style region: P1 = one layer (or empty), P2 = two layers."""
    p2 = (fc_stage("p2a"), fc_stage("p2b"))
    p1 = (fc_stage("p1a"),) if with_skip_layer else ()
    return ShardedParallelStage(paths=(p2, p1), name="block")


def as_level(info_or_result):
    """View a TransitionInfo or SearchResult's entries through LevelPlan."""
    return LevelPlan(entries=tuple(info_or_result.entries))


@pytest.fixture
def model():
    return PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                         ratio_mode="balanced")


class TestAlignmentCost:
    def test_same_state_is_free(self, model):
        for t in ALL_TYPES:
            assert alignment_cost(model, 1000.0, t, t) == 0.0

    def test_free_entry_is_free(self, model):
        assert alignment_cost(model, 1000.0, None, I) == 0.0

    def test_zero_transitions_free(self, model):
        assert alignment_cost(model, 1000.0, II, III) == 0.0

    def test_costly_transition_positive(self, model):
        assert alignment_cost(model, 1000.0, I, III) > 0.0


class TestParallelTransitions:
    def test_all_state_pairs_present(self, model):
        stage = residual_region()
        transitions = parallel_stage_transitions(stage, model, ALL_TYPES, [I, II])
        assert set(transitions) == {(tt, s) for tt in (I, II) for s in ALL_TYPES}

    def test_join_state_recorded(self, model):
        stage = residual_region()
        transitions = parallel_stage_transitions(stage, model, ALL_TYPES, [I])
        for (tt, s), info in transitions.items():
            join = as_level(info).alignment_for("block")
            assert join is not None and join.state is s

    def test_path_layers_assigned(self, model):
        stage = residual_region(with_skip_layer=True)
        transitions = parallel_stage_transitions(stage, model, ALL_TYPES, [I])
        for info in transitions.values():
            names = {e.name for e in info.entries
                     if isinstance(e, LayerAssignment)}
            assert {"p1a", "p2a", "p2b"} <= names

    def test_cost_sums_paths(self, model):
        """A two-path region must cost at least each path alone."""
        region = residual_region(with_skip_layer=True)
        transitions = parallel_stage_transitions(region, model, ALL_TYPES, [I])
        single = search_stages([fc_stage("p2a"), fc_stage("p2b")], model,
                               entry={I: 0.0})
        best_region = min(info.cost for info in transitions.values())
        assert best_region >= single.cost - 1e-12

    def test_all_empty_paths_raise(self, model):
        stage = ShardedParallelStage(paths=((), ()), name="empty")
        with pytest.raises(ValueError):
            parallel_stage_transitions(stage, model, ALL_TYPES, [I])


class TestPathExitRecording:
    """The macro-transition must record each path's pre-alignment exit state
    so the simulator replays the re-alignments the search actually costed."""

    def test_two_path_block_records_both_exits(self, model):
        stage = residual_region()  # path 0: two layers; path 1: identity skip
        transitions = parallel_stage_transitions(stage, model, ALL_TYPES, [I, II])
        for (tt, s), info in transitions.items():
            level = as_level(info)
            # the weighted path exits in whatever state its last layer chose
            exit0 = level.path_exit("block", 0)
            assert exit0.state is level.assignment("p2b").ptype, (tt, s)
            # the skip path carries the fork tensor through unchanged, so its
            # exit state is the region's entry state
            exit1 = level.path_exit("block", 1)
            assert exit1.state is tt, (tt, s)
            # and the join alignment is the macro-transition's exit state
            assert level.alignment_for("block").state is s, (tt, s)

    def test_free_entry_skip_path_records_no_exit(self, model):
        """At the network entry (tt=None) a skip path has nothing to
        re-align, so no synthetic exit entry is recorded for it."""
        stage = residual_region()
        transitions = parallel_stage_transitions(stage, model, ALL_TYPES, [None])
        for info in transitions.values():
            level = as_level(info)
            assert level.path_exit("block", 0) is not None
            assert level.path_exit("block", 1) is None

    def test_resnet_block_search_exposes_exit_states(self, model):
        """End-to-end regression on a two-path ResNet-style block: the final
        plan must carry consistent path-exit entries for the chosen DP path."""
        stages = [fc_stage("pre"), residual_region(), fc_stage("post")]
        level = search_stages(stages, model).to_level_plan("test")
        exit0 = level.path_exit("block", 0)
        exit1 = level.path_exit("block", 1)
        join = level.alignment_for("block")
        # path 0's exit is its last layer's chosen type
        assert exit0.state is level.assignment("p2b").ptype
        # the skip path exits in the state 'pre' fed the fork with
        assert exit1.state is level.assignment("pre").ptype
        # every synthetic state is one of the searchable types
        for entry in (exit0, exit1, join):
            assert entry.state in ALL_TYPES

    def test_resnet18_every_block_has_exit_entries(self, model):
        from repro.models import build_model

        net = build_model("resnet18")
        stages = to_sharded_stages(net.stages(batch=8))
        level = search_stages(stages, model).to_level_plan("test")
        join_stages = {j.stage for j in level.joins()}
        exit_stages = {e.stage for e in level.path_exits()}
        assert join_stages, "resnet18 must contain fork/join regions"
        # every joined region records at least one per-path exit state
        for region in join_stages:
            assert region in exit_stages, region


class TestEndToEndMultipath:
    def test_search_through_residual_block(self, model):
        stages = [fc_stage("pre"), residual_region(), fc_stage("post")]
        result = search_stages(stages, model)
        layer_names = {"pre", "p2a", "p2b", "post"}
        assert layer_names <= set(result.assignments)
        assert result.cost > 0.0

    def test_consecutive_blocks_chain(self, model):
        block1 = ShardedParallelStage(paths=((fc_stage("b1a"), fc_stage("b1b")), ()),
                                      name="blk1")
        block2 = ShardedParallelStage(paths=((fc_stage("b2a"), fc_stage("b2b")), ()),
                                      name="blk2")
        stages = [fc_stage("pre"), block1, block2, fc_stage("post")]
        result = search_stages(stages, model)
        assert {"pre", "b1a", "b1b", "b2a", "b2b", "post"} <= set(result.assignments)
        level = result.to_level_plan("test")
        assert level.alignment_for("blk1") is not None
        assert level.alignment_for("blk2") is not None

    def test_search_beats_every_uniform_plan(self):
        """The multi-path search must be at least as good as pinning all
        layers to any single type (uniform plans are realignment-free)."""
        model = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V3, 1),
                              ratio_mode="balanced")
        stages = [fc_stage("pre"), residual_region(), fc_stage("post")]
        best = search_stages(stages, model)
        for t in ALL_TYPES:
            uniform = search_stages(stages, model, space_fn=lambda w, t=t: (t,))
            assert best.cost <= uniform.cost + 1e-12

    def test_resnet18_plans_all_layers(self, model):
        from repro.models import build_model

        net = build_model("resnet18")
        stages = to_sharded_stages(net.stages(batch=8))
        result = search_stages(stages, model)
        planned = {e.name for e in result.entries
                   if isinstance(e, LayerAssignment)}
        expected = {w.name for w in net.workloads(8)}
        assert planned == expected

    def test_nested_parallel_in_path(self, model):
        inner = ShardedParallelStage(paths=((fc_stage("i1"),), ()), name="inner")
        outer = ShardedParallelStage(
            paths=((fc_stage("o1"), inner, fc_stage("o2")), ()), name="outer"
        )
        stages = [fc_stage("pre"), outer, fc_stage("post")]
        result = search_stages(stages, model)
        assert {"pre", "o1", "i1", "o2", "post"} <= set(result.assignments)
        level = result.to_level_plan("test")
        assert level.alignment_for("inner") is not None


class TestNestedForkJoin:
    """A fork nested inside one path of another fork (satellite: deep
    fork-in-path coverage for parallel_stage_transitions)."""

    @staticmethod
    def nested_region():
        inner = ShardedParallelStage(
            paths=((fc_stage("n_i1"), fc_stage("n_i2")), ()), name="inner"
        )
        return ShardedParallelStage(
            paths=((fc_stage("n_o1"), inner, fc_stage("n_o2")),
                   (fc_stage("n_skip"),)),
            name="outer",
        )

    def test_transitions_cover_entry_times_space(self, model):
        transitions = parallel_stage_transitions(
            self.nested_region(), model, ALL_TYPES, [I, III]
        )
        assert set(transitions) == {(tt, s) for tt in (I, III)
                                    for s in ALL_TYPES}

    def test_inner_join_and_exits_recorded(self, model):
        transitions = parallel_stage_transitions(
            self.nested_region(), model, ALL_TYPES, [I]
        )
        for (tt, s), info in transitions.items():
            level = as_level(info)
            # both regions align their joins
            assert level.alignment_for("inner") is not None
            assert level.alignment_for("outer") is not None
            # inner's weighted path records its exit; outer records both
            assert level.path_exit("inner", 0) is not None
            assert level.path_exit("outer", 0) is not None
            assert level.path_exit("outer", 1) is not None
            # all five layers are assigned
            names = {e.name for e in level.layers()}
            assert {"n_o1", "n_i1", "n_i2", "n_o2", "n_skip"} <= names

    def test_inner_exit_matches_last_inner_layer(self, model):
        transitions = parallel_stage_transitions(
            self.nested_region(), model, ALL_TYPES, [I]
        )
        for info in transitions.values():
            level = as_level(info)
            exit0 = level.path_exit("inner", 0)
            assert exit0.state is level.assignment("n_i2").ptype

    def test_inner_skip_exit_is_inner_entry_state(self, model):
        """Inner's empty skip path exits in whatever state entered the inner
        region — the type chosen for n_o1, the layer feeding the inner fork."""
        transitions = parallel_stage_transitions(
            self.nested_region(), model, ALL_TYPES, [I]
        )
        for info in transitions.values():
            level = as_level(info)
            exit1 = level.path_exit("inner", 1)
            assert exit1 is not None
            assert exit1.state is level.assignment("n_o1").ptype

    def test_nested_region_simulates_end_to_end(self, model):
        """The full chain through a nested region searches and yields a
        positive cost with a consistent typed plan."""
        stages = [fc_stage("pre"), self.nested_region(), fc_stage("post")]
        result = search_stages(stages, model)
        assert result.cost > 0.0
        level = result.to_level_plan("test")
        assert {e.name for e in level.layers()} == {
            "pre", "n_o1", "n_i1", "n_i2", "n_o2", "n_skip", "post"
        }
        # entry ordering keeps nested structure: inner entries appear between
        # outer path-0's first and last layers
        names = [getattr(e, "name", getattr(e, "stage", "")) for e in
                 level.entries]
        assert names.index("n_o1") < names.index("n_i1") < names.index("n_o2")
