"""Unit tests for hierarchical (recursive) planning over the pairing tree."""

import pytest

from repro.baselines import DataParallelScheme
from repro.core.hierarchy import collect_level_plans, plan_tree, stages_key
from repro.core.planner import AccParScheme
from repro.core.stages import iter_sharded_workloads, to_sharded_stages
from repro.core.types import PartitionType
from repro.hardware import bisection_tree, heterogeneous_array, homogeneous_array
from repro.models import build_model

I = PartitionType.TYPE_I


@pytest.fixture
def stages():
    return to_sharded_stages(build_model("lenet").stages(batch=64))


class TestPlanTree:
    def test_leaf_plan_is_empty(self, stages):
        tree = bisection_tree(homogeneous_array(1), levels=0)
        plan = plan_tree(tree, stages, AccParScheme())
        assert plan.is_leaf
        assert plan.depth() == 0

    def test_depth_matches_tree(self, stages):
        tree = bisection_tree(homogeneous_array(8), levels=3)
        plan = plan_tree(tree, stages, AccParScheme())
        assert plan.depth() == 3

    def test_every_internal_node_planned(self, stages):
        tree = bisection_tree(homogeneous_array(8), levels=3)
        plan = plan_tree(tree, stages, AccParScheme())
        level_plans = collect_level_plans(plan)
        assert len(level_plans) == 7  # 4 + 2 + 1 internal nodes

    def test_all_layers_assigned_at_each_level(self, stages):
        tree = bisection_tree(homogeneous_array(4), levels=2)
        plan = plan_tree(tree, stages, AccParScheme())
        layer_names = {sw.name for sw in iter_sharded_workloads(stages)}
        for level in collect_level_plans(plan):
            assert layer_names <= set(level.assignments)

    def test_symmetric_subtrees_share_plans(self, stages):
        """Homogeneous equal splits produce identical child sub-problems;
        the memo must return the same object for both."""
        tree = bisection_tree(homogeneous_array(8), levels=3)
        plan = plan_tree(tree, stages, AccParScheme())
        assert plan.left is plan.right

    def test_heterogeneous_children_differ(self, stages):
        tree = bisection_tree(heterogeneous_array(2, 2), levels=2)
        plan = plan_tree(tree, stages, AccParScheme())
        # the v3 side and v2 side get different sub-problems (different
        # groups), so the child plans are distinct objects
        assert plan.left is not plan.right

    def test_dp_scheme_assigns_type_i_half(self, stages):
        tree = bisection_tree(heterogeneous_array(2, 2), levels=1)
        plan = plan_tree(tree, stages, DataParallelScheme())
        level = plan.level_plan
        for lp in level.layer_assignments().values():
            assert lp.ptype is I
            assert lp.ratio == 0.5

    def test_accpar_heterogeneous_root_ratio_above_half(self, stages):
        """The v3 group (left) should take the larger share at the v2/v3
        split for compute-heavy layers."""
        tree = bisection_tree(heterogeneous_array(4, 4), levels=1)
        plan = plan_tree(tree, stages, AccParScheme())
        ratios = [lp.ratio for lp in plan.level_plan.layer_assignments().values()]
        assert max(ratios) > 0.5


class TestStagesKey:
    def test_key_stable(self, stages):
        assert stages_key(stages) == stages_key(stages)

    def test_key_changes_with_sharding(self, stages):
        from repro.core.stages import shard_stages
        from repro.plan.ir import LayerPartition

        assignments = {
            sw.name: LayerPartition(I, 0.5)
            for sw in iter_sharded_workloads(stages)
        }
        left = shard_stages(stages, assignments, "left")
        assert stages_key(stages) != stages_key(left)

    def test_key_hashable(self, stages):
        hash(stages_key(stages))
