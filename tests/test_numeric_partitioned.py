"""Executable validation of Section 3: partitioned == monolithic training.

These tests run the two-device executor over every type combination and
assert exact numerical agreement with the reference trainer, plus the
measured communication element counts against Tables 4 and 5.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import PartitionType
from repro.numeric import (
    AxisShard,
    LayerPlanNumeric,
    Layout,
    MlpSpec,
    TwoDeviceExecutor,
    expected_inter_elements,
    expected_intra_elements,
    input_layout,
    output_layout,
    overlap_elements,
    split_point,
    validate_partitioned_training,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


class TestShardingPrimitives:
    def test_split_point_bounds(self):
        assert split_point(8, 0.0001) == 1
        assert split_point(8, 0.9999) == 7
        assert split_point(8, 0.5) == 4

    def test_split_point_rejects_tiny_axis(self):
        with pytest.raises(ValueError):
            split_point(1, 0.5)

    def test_axis_shard_validation(self):
        with pytest.raises(ValueError):
            AxisShard(8, 0)
        with pytest.raises(ValueError):
            AxisShard(8, 8)

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            Layout("full", AxisShard(4, 2))
        with pytest.raises(ValueError):
            Layout("row", None)
        with pytest.raises(ValueError):
            Layout("diagonal")

    def test_overlap_row_vs_col(self):
        row = Layout("row", AxisShard(8, 2))
        col = Layout("col", AxisShard(6, 3))
        # device 0 owns 2x6 under row, needs 8x3 under col; overlap 2x3
        assert overlap_elements(row, col, 0, (8, 6)) == 6

    def test_overlap_full_covers_everything(self):
        full = Layout("full")
        col = Layout("col", AxisShard(6, 3))
        assert overlap_elements(full, col, 0, (8, 6)) == 8 * 3


class TestLayouts:
    def test_type_i_layouts(self):
        plan = LayerPlanNumeric(I, 0.5)
        assert input_layout(plan, 8, 4, 4).kind == "row"
        assert output_layout(plan, 8, 4, 4).kind == "row"

    def test_type_ii_layouts(self):
        plan = LayerPlanNumeric(II, 0.5)
        assert input_layout(plan, 8, 4, 4).kind == "col"
        assert output_layout(plan, 8, 4, 4).kind == "full"

    def test_type_iii_layouts(self):
        plan = LayerPlanNumeric(III, 0.5)
        assert input_layout(plan, 8, 4, 4).kind == "full"
        assert output_layout(plan, 8, 4, 4).kind == "col"


class TestAllTypeCombinations:
    """The paper's algebra, executed: every 2-layer and 3-layer plan."""

    @pytest.mark.parametrize(
        "t0,t1", list(itertools.product((I, II, III), repeat=2))
    )
    def test_two_layer_exact(self, t0, t1):
        spec = MlpSpec([8, 8, 8])
        plan = [LayerPlanNumeric(t0, 0.5), LayerPlanNumeric(t1, 0.5)]
        report = validate_partitioned_training(spec, plan, batch=8)
        assert report.numerically_exact
        assert report.intra_matches_table4
        assert report.inter_matches_table5

    @pytest.mark.parametrize(
        "combo", list(itertools.product((I, II, III), repeat=3))
    )
    def test_three_layer_exact(self, combo):
        spec = MlpSpec([8, 8, 8, 8])
        plan = [LayerPlanNumeric(t, 0.25) for t in combo]
        report = validate_partitioned_training(spec, plan, batch=8)
        assert report.numerically_exact
        assert report.intra_matches_table4
        assert report.inter_matches_table5

    @pytest.mark.parametrize("ratio", [0.125, 0.25, 0.75, 0.875])
    def test_asymmetric_ratios(self, ratio):
        spec = MlpSpec([16, 16, 16])
        plan = [LayerPlanNumeric(II, ratio), LayerPlanNumeric(III, ratio)]
        report = validate_partitioned_training(spec, plan, batch=16)
        assert report.numerically_exact
        assert report.inter_matches_table5

    def test_rectangular_widths(self):
        spec = MlpSpec([12, 20, 8, 4])
        plan = [LayerPlanNumeric(I, 0.5), LayerPlanNumeric(II, 0.5),
                LayerPlanNumeric(III, 0.5)]
        report = validate_partitioned_training(spec, plan, batch=6,
                                               check_tables=False)
        assert report.numerically_exact

    def test_mismatched_plan_length_raises(self):
        spec = MlpSpec([8, 8, 8])
        with pytest.raises(ValueError):
            TwoDeviceExecutor(spec, spec.init_weights(), [LayerPlanNumeric(I, 0.5)],
                              batch=8)


class TestCommunicationCounts:
    def test_free_transitions_move_nothing_between_layers(self):
        """I→I, II→III, III→II must show zero inter-layer traffic."""
        spec = MlpSpec([8, 8, 8])
        for t0, t1 in [(I, I), (II, III), (III, II)]:
            plan = [LayerPlanNumeric(t0, 0.5), LayerPlanNumeric(t1, 0.5)]
            report = validate_partitioned_training(spec, plan, batch=8)
            expected = expected_inter_elements(spec, plan, 8)
            assert expected["boundary1"] == (0, 0)
            assert report.inter_matches_table5

    def test_data_parallel_comm_is_gradient_sync_only(self):
        spec = MlpSpec([8, 8, 8])
        plan = [LayerPlanNumeric(I, 0.5), LayerPlanNumeric(I, 0.5)]
        weights = spec.init_weights(0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 8))
        target = rng.standard_normal((8, 8))
        trace = TwoDeviceExecutor(spec, weights, plan, 8).step(x, target)
        # inter-layer traffic: none
        assert all(v == (0, 0) for v in trace.comm.inter_forward.values())
        assert all(v == (0, 0) for v in trace.comm.inter_backward.values())
        # intra traffic: exactly the two weight tensors per device
        assert trace.comm.intra == {"layer0": (64, 64), "layer1": (64, 64)}

    def test_expected_intra_skips_first_layer_type_iii(self):
        spec = MlpSpec([8, 8])
        expected = expected_intra_elements(spec, [LayerPlanNumeric(III, 0.5)], 8)
        assert expected == {}


class TestPropertyBased:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.sampled_from([I, II, III]), min_size=2, max_size=4),
        st.sampled_from([0.25, 0.5, 0.75]),
        st.integers(min_value=0, max_value=5),
    )
    def test_random_plans_are_exact(self, types, ratio, seed):
        widths = [8] * (len(types) + 1)
        spec = MlpSpec(widths)
        plan = [LayerPlanNumeric(t, ratio) for t in types]
        report = validate_partitioned_training(spec, plan, batch=8, seed=seed)
        assert report.numerically_exact
        assert report.intra_matches_table4
        assert report.inter_matches_table5
