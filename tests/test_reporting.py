"""Unit tests for ASCII reporting."""

import pytest

from repro.experiments.harness import SpeedupTable
from repro.experiments.reporting import (
    format_bar_chart,
    format_grouped_bars,
    format_speedup_table,
    format_table,
    scheme_label,
)


@pytest.fixture
def table():
    t = SpeedupTable(models=["m1", "m2"], schemes=["dp", "accpar"])
    t.times = {
        "m1": {"dp": 10.0, "accpar": 2.0},
        "m2": {"dp": 8.0, "accpar": 4.0},
    }
    return t


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["a", "bb"], [["1", "2"], ["3", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_alignment_by_widest_cell(self):
        text = format_table(["x"], [["longvalue"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(row) == len(sep)


class TestSpeedupRendering:
    def test_values_present(self, table):
        text = format_speedup_table(table, "demo")
        assert "5.00x" in text  # m1 accpar: 10/2
        assert "2.00x" in text  # m2 accpar: 8/4
        assert "geomean" in text

    def test_scheme_labels(self):
        assert scheme_label("dp") == "DP"
        assert scheme_label("accpar") == "AccPar"
        assert scheme_label("custom") == "custom"

    def test_grouped_bars(self, table):
        text = format_grouped_bars(table, "bars")
        assert "m1:" in text and "m2:" in text
        assert "#" in text


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = format_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10  # peak fills the width
        assert lines[0].count("#") == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            format_bar_chart({})
