"""API robustness: invalid inputs fail loudly and early, never silently."""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import AccParScheme, Planner
from repro.graph import Conv2d, FeatureMap, Input, Linear, Network
from repro.hardware import homogeneous_array, make_group, TPU_V3
from repro.models import build_model


class TestBatchValidation:
    def test_zero_batch_rejected_at_shape_inference(self):
        net = build_model("lenet")
        with pytest.raises(ValueError):
            net.infer_shapes(0)

    def test_negative_batch_rejected(self):
        net = build_model("lenet")
        with pytest.raises(ValueError):
            net.workloads(-4)

    def test_planner_propagates_batch_validation(self):
        planner = Planner(homogeneous_array(2), get_scheme("accpar"))
        with pytest.raises(ValueError):
            planner.plan(build_model("lenet"), batch=0)


class TestSchemeConfiguration:
    def test_invalid_ratio_mode_in_scheme(self):
        scheme = AccParScheme(ratio_mode="psychic")
        planner = Planner(homogeneous_array(2), scheme)
        with pytest.raises(ValueError, match="ratio_mode"):
            planner.plan(build_model("lenet"), batch=8)

    def test_empty_space_in_scheme(self):
        scheme = AccParScheme(space=())
        planner = Planner(homogeneous_array(2), scheme)
        with pytest.raises(ValueError, match="space"):
            planner.plan(build_model("lenet"), batch=8)


class TestFeatureMapBounds:
    def test_negative_spatial_rejected(self):
        with pytest.raises(ValueError):
            FeatureMap(1, 1, -5, 5)

    def test_float_dimension_rejected(self):
        with pytest.raises(ValueError):
            FeatureMap(1, 1, 2.5, 5)  # type: ignore[arg-type]


class TestGraphMisuse:
    def test_conv_after_flatten_mismatch(self):
        from repro.graph import Flatten

        net = Network("bad", Input("in", channels=3, height=4, width=4))
        net.add(Flatten("f"))
        net.add(Conv2d("c", 3, 4, kernel=3))
        with pytest.raises(ValueError):
            net.infer_shapes(2)

    def test_linear_fan_in_mismatch_at_planning(self):
        net = Network("bad", Input("in", channels=10))
        net.add(Linear("fc", 99, 5))
        planner = Planner(homogeneous_array(2), get_scheme("dp"))
        with pytest.raises(ValueError, match="input features"):
            planner.plan(net, batch=4)


class TestDegenerateArrays:
    def test_single_board_all_schemes(self):
        """A one-board array means no partitioning — every scheme produces
        a leaf plan and the simulator still reports sane numbers."""
        from repro.sim.executor import evaluate

        array = make_group(TPU_V3, 1)
        for scheme in ("dp", "owt", "hypar", "accpar"):
            planned = Planner(array, get_scheme(scheme)).plan(
                build_model("lenet"), batch=16
            )
            report = evaluate(planned)
            assert report.comm_time == 0.0
            assert report.total_time > 0.0

    def test_two_board_minimum_partition(self):
        planned = Planner(make_group(TPU_V3, 2), get_scheme("accpar")).plan(
            build_model("lenet"), batch=16
        )
        assert planned.hierarchy_levels() == 1
