"""Round-trip property test: every registry model × array kind, plus the
forward-compatibility behavior of the plan reader (PlanFormatError, unknown
spec keys) that the disk cache tier depends on."""

import json

import pytest

from repro.core.planner import AccParPlanner
from repro.core.serialize import (
    PlanFormatError,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.core.hierarchy import collect_level_plans
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import available_models, build_model
from repro.sim.executor import evaluate

ARRAYS = {
    "homogeneous": lambda: homogeneous_array(4),
    "heterogeneous": lambda: heterogeneous_array(2, 2),
}


@pytest.mark.parametrize("model_name", available_models())
@pytest.mark.parametrize("array_kind", sorted(ARRAYS))
def test_roundtrip_preserves_plan(model_name, array_kind, tmp_path):
    """save_plan → load_plan reproduces assignments, ratios and cost."""
    planned = AccParPlanner(ARRAYS[array_kind]()).plan(
        build_model(model_name), batch=32
    )
    path = tmp_path / "plan.json"
    save_plan(planned, path)
    # some builders name their network differently from the registry key
    # (e.g. 'trident' builds 'trident2'), so resolve through the key we used
    reloaded = load_plan(path, network_builder=lambda _: build_model(model_name))

    assert reloaded.network_name == planned.network_name
    assert reloaded.batch == planned.batch
    assert reloaded.scheme == planned.scheme
    assert reloaded.hierarchy_levels() == planned.hierarchy_levels()

    original_levels = collect_level_plans(planned.plan)
    reloaded_levels = collect_level_plans(reloaded.plan)
    assert len(original_levels) == len(reloaded_levels)
    for original, restored in zip(original_levels, reloaded_levels):
        assert set(original.assignments) == set(restored.assignments)
        for name, lp in original.assignments.items():
            assert restored.assignments[name].ptype is lp.ptype
            assert restored.assignments[name].ratio == pytest.approx(lp.ratio)
        assert restored.cost == pytest.approx(original.cost)

    assert evaluate(reloaded).total_time == pytest.approx(
        evaluate(planned).total_time
    )


@pytest.fixture
def alexnet_doc():
    planned = AccParPlanner(heterogeneous_array(2, 2)).plan(
        build_model("alexnet"), batch=64
    )
    return plan_to_dict(planned)


class TestForwardCompatibility:
    def test_unknown_spec_keys_are_ignored(self, alexnet_doc):
        for spec in alexnet_doc["array"]:
            spec["future_field"] = "from-a-newer-writer"
            spec["another"] = [1, 2, 3]
        reloaded = plan_from_dict(alexnet_doc)
        assert reloaded.network_name == "alexnet"

    def test_missing_spec_field_raises_plan_format_error(self, alexnet_doc):
        del alexnet_doc["array"][0]["flops"]
        with pytest.raises(PlanFormatError, match="missing fields"):
            plan_from_dict(alexnet_doc)

    def test_version_mismatch_raises_plan_format_error(self, alexnet_doc):
        alexnet_doc["format_version"] = 99
        with pytest.raises(PlanFormatError, match="format version"):
            plan_from_dict(alexnet_doc)

    def test_plan_format_error_is_a_value_error(self):
        assert issubclass(PlanFormatError, ValueError)

    def test_extra_document_keys_roundtrip(self, alexnet_doc, tmp_path):
        # the disk cache tier stores the fingerprint inside the document;
        # the reader must not choke on keys it does not know
        alexnet_doc["fingerprint"] = "abcdef0123456789"
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(alexnet_doc))
        assert load_plan(path).network_name == "alexnet"
