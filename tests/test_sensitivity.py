"""Unit tests for the sensitivity sweeps."""

import pytest

from repro.experiments.sensitivity import (
    OptimizerImpact,
    batch_sweep,
    bandwidth_sweep,
    optimizer_sweep,
    scale_network_bandwidth,
)
from repro.hardware import heterogeneous_array, homogeneous_array


ARRAY = heterogeneous_array(2, 2)


class TestScaleBandwidth:
    def test_scaling(self):
        scaled = scale_network_bandwidth(ARRAY, 4.0)
        assert scaled.network_bandwidth == pytest.approx(
            4.0 * ARRAY.network_bandwidth
        )
        # everything else untouched
        assert scaled.flops == ARRAY.flops
        assert scaled.memory_bytes == ARRAY.memory_bytes

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_network_bandwidth(ARRAY, 0.0)


class TestBatchSweep:
    def test_shapes(self):
        series = batch_sweep("lenet", ARRAY, batches=(32, 64),
                             schemes=("dp", "accpar"))
        assert series.x_values == [32.0, 64.0]
        assert len(series.speedups["accpar"]) == 2

    def test_dp_normalized(self):
        series = batch_sweep("lenet", ARRAY, batches=(32,),
                             schemes=("dp", "accpar"))
        assert series.speedups["dp"][0] == pytest.approx(1.0)


class TestBandwidthSweep:
    def test_accpar_advantage_shrinks_with_bandwidth(self):
        """Faster links -> communication matters less -> speedup over DP
        falls toward 1 (the accelerator-wall narrative in reverse)."""
        series = bandwidth_sweep("alexnet", homogeneous_array(4),
                                 factors=(1.0, 1e6), batch=64,
                                 schemes=("dp", "accpar"))
        slow, fast = series.speedups["accpar"]
        assert fast < slow
        assert fast == pytest.approx(1.0, abs=0.3)


class TestOptimizerSweep:
    @pytest.fixture(scope="class")
    def impacts(self):
        return optimizer_sweep("alexnet", homogeneous_array(4), batch=64)

    def test_ordering(self, impacts):
        by_name = {i.optimizer: i for i in impacts}
        assert set(by_name) == {"sgd", "momentum", "adam"}
        # state memory grows with optimizer sophistication
        assert (by_name["sgd"].memory_bytes
                < by_name["momentum"].memory_bytes
                < by_name["adam"].memory_bytes)

    def test_comm_time_is_optimizer_independent(self, impacts):
        """Section 2.1: updates are local, so communication never changes."""
        comms = {round(i.comm_time, 12) for i in impacts}
        assert len(comms) == 1

    def test_update_work_increases_time(self, impacts):
        by_name = {i.optimizer: i for i in impacts}
        assert by_name["adam"].total_time >= by_name["sgd"].total_time


class TestLatencySweep:
    def test_orderings_are_latency_robust(self):
        from repro.experiments.sensitivity import latency_sweep

        series = latency_sweep("alexnet", heterogeneous_array(2, 2),
                               latencies_s=(0.0, 1e-5), batch=64)
        for idx in range(len(series.x_values)):
            assert series.speedups["accpar"][idx] >= series.speedups["hypar"][idx] - 1e-9
            assert series.speedups["hypar"][idx] > series.speedups["dp"][idx]

    def test_latency_slows_everything(self):
        from repro.baselines import get_scheme
        from repro.core.planner import Planner
        from repro.models import build_model
        from repro.sim.engine import EngineConfig
        from repro.sim.executor import evaluate

        planned = Planner(heterogeneous_array(2, 2), get_scheme("accpar")).plan(
            build_model("alexnet"), 64
        )
        t0 = evaluate(planned, EngineConfig(link_latency_s=0.0)).total_time
        t1 = evaluate(planned, EngineConfig(link_latency_s=1e-4)).total_time
        assert t1 > t0
