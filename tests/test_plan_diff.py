"""Unit tests for structural plan diffing (repro.plan.diff)."""

import pytest

from repro.core.planner import AccParPlanner
from repro.core.types import PartitionType
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.plan.diff import ALPHA_REL_TOL, PlanDifference, plan_diff
from repro.plan.ir import (
    HierarchicalPlan,
    JoinAlignment,
    LayerAssignment,
    LevelPlan,
    PathExit,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def single_level(*entries, cost=0.0):
    return HierarchicalPlan(LevelPlan(entries=tuple(entries), cost=cost))


class TestLevelDiff:
    def test_identical_plans_have_no_diff(self):
        a = single_level(LayerAssignment("x", I, 0.5))
        b = single_level(LayerAssignment("x", I, 0.5))
        assert plan_diff(a, b) == []

    def test_entry_order_is_representation_not_decision(self):
        a = single_level(LayerAssignment("x", I, 0.5),
                         LayerAssignment("y", II, 0.5))
        b = single_level(LayerAssignment("y", II, 0.5),
                         LayerAssignment("x", I, 0.5))
        assert plan_diff(a, b) == []

    def test_cost_is_not_compared(self):
        a = single_level(LayerAssignment("x", I, 0.5), cost=1.0)
        b = single_level(LayerAssignment("x", I, 0.5), cost=2.0)
        assert plan_diff(a, b) == []

    def test_layer_set_difference(self):
        a = single_level(LayerAssignment("x", I, 0.5))
        b = single_level(LayerAssignment("y", I, 0.5))
        (d,) = plan_diff(a, b)
        assert d.kind == "layers" and "x" in d.detail and "y" in d.detail

    def test_type_difference(self):
        a = single_level(LayerAssignment("x", I, 0.5))
        b = single_level(LayerAssignment("x", III, 0.5))
        (d,) = plan_diff(a, b)
        assert d.kind == "type"

    def test_alpha_within_tolerance_is_same_decision(self):
        a = single_level(LayerAssignment("x", I, 0.5))
        b = single_level(LayerAssignment("x", I, 0.5 * (1 + ALPHA_REL_TOL / 2)))
        assert plan_diff(a, b) == []

    def test_alpha_beyond_tolerance_differs(self):
        a = single_level(LayerAssignment("x", I, 0.5))
        b = single_level(LayerAssignment("x", I, 0.5001))
        (d,) = plan_diff(a, b)
        assert d.kind == "alpha"

    def test_custom_tolerance(self):
        a = single_level(LayerAssignment("x", I, 0.5))
        b = single_level(LayerAssignment("x", I, 0.5001))
        assert plan_diff(a, b, rel_tol=1e-2) == []

    def test_join_state_difference(self):
        a = single_level(JoinAlignment("blk", I, 0.5))
        b = single_level(JoinAlignment("blk", II, 0.5))
        (d,) = plan_diff(a, b)
        assert d.kind == "join"

    def test_join_missing_on_one_side(self):
        a = single_level(JoinAlignment("blk", I, 0.5))
        b = single_level()
        (d,) = plan_diff(a, b)
        assert d.kind == "join" and "only in a" in d.detail

    def test_exit_difference(self):
        a = single_level(PathExit("blk", 0, I, 0.5))
        b = single_level(PathExit("blk", 0, II, 0.5))
        (d,) = plan_diff(a, b)
        assert d.kind == "exit"

    def test_difference_renders_with_path_and_kind(self):
        d = PlanDifference("rootL", "type", "layer 'x': Type-I vs Type-II")
        assert str(d) == "rootL [type]: layer 'x': Type-I vs Type-II"


class TestTreeDiff:
    def test_structure_difference(self):
        a = HierarchicalPlan(LevelPlan(), left=HierarchicalPlan(None))
        b = HierarchicalPlan(LevelPlan())
        diffs = plan_diff(a, b)
        assert any(d.kind == "structure" and d.path == "rootL" for d in diffs)

    def test_nested_difference_carries_path(self):
        a = HierarchicalPlan(
            LevelPlan(),
            left=HierarchicalPlan(LevelPlan(entries=(
                LayerAssignment("x", I, 0.5),))),
        )
        b = HierarchicalPlan(
            LevelPlan(),
            left=HierarchicalPlan(LevelPlan(entries=(
                LayerAssignment("x", II, 0.5),))),
        )
        (d,) = plan_diff(a, b)
        assert d.path == "rootL" and d.kind == "type"

    def test_real_plan_self_diff_is_empty(self):
        planned = AccParPlanner(heterogeneous_array(2, 2)).plan(
            build_model("resnet18"), batch=32
        )
        assert plan_diff(planned.plan, planned.plan) == []

    def test_replan_is_deterministic(self):
        array = heterogeneous_array(2, 2)
        a = AccParPlanner(array).plan(build_model("alexnet"), batch=64)
        b = AccParPlanner(array).plan(build_model("alexnet"), batch=64)
        assert plan_diff(a.plan, b.plan) == []
