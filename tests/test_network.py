"""Unit tests for the network DAG and its stage decomposition."""

import pytest

from repro.graph.layers import (
    Add,
    Conv2d,
    Flatten,
    Input,
    Linear,
    Pool2d,
    ReLU,
)
from repro.graph.network import (
    GraphError,
    LayerStage,
    Network,
    ParallelStage,
    count_stage_layers,
    iter_stage_workloads,
)
from repro.graph.shapes import FeatureMap


def linear_net():
    net = Network("lin", Input("in", channels=3, height=8, width=8))
    net.add(Conv2d("c1", 3, 4, kernel=3, padding=1))
    net.add(ReLU("r1"))
    net.add(Flatten("f"))
    net.add(Linear("fc", 4 * 8 * 8, 10))
    return net


def residual_net(skip_conv: bool = False):
    """in -> c1 -> [c2 -> c3 | (skip or c4)] -> add -> fc."""
    net = Network("res", Input("in", channels=4, height=4, width=4))
    c1 = net.add(Conv2d("c1", 4, 8, kernel=3, padding=1))
    a = net.add(Conv2d("c2", 8, 8, kernel=3, padding=1), inputs=[c1])
    a = net.add(Conv2d("c3", 8, 8, kernel=3, padding=1), inputs=[a])
    if skip_conv:
        skip = net.add(Conv2d("c4", 8, 8, kernel=1), inputs=[c1])
    else:
        skip = c1
    add = net.add(Add("add"), inputs=[a, skip])
    net.add(Flatten("f"), inputs=[add])
    net.add(Linear("fc", 8 * 4 * 4, 10))
    return net


class TestConstruction:
    def test_implicit_chaining(self):
        net = linear_net()
        assert net.predecessors("c1") == ["in"]
        assert net.predecessors("fc") == ["f"]

    def test_duplicate_name_raises(self):
        net = Network("n", Input("in", channels=1))
        net.add(Linear("fc", 1, 1))
        with pytest.raises(GraphError, match="duplicate layer name"):
            net.add(Linear("fc", 1, 1))

    def test_unknown_input_raises(self):
        net = Network("n", Input("in", channels=1))
        with pytest.raises(GraphError, match="unknown input layer"):
            net.add(Linear("fc", 1, 1), inputs=["ghost"])

    def test_second_input_layer_raises(self):
        net = Network("n", Input("in", channels=1))
        with pytest.raises(GraphError):
            net.add(Input("in2", channels=1), inputs=["in"])

    def test_empty_inputs_raises(self):
        net = Network("n", Input("in", channels=1))
        with pytest.raises(GraphError):
            net.add(Linear("fc", 1, 1), inputs=[])

    def test_contains_and_len(self):
        net = linear_net()
        assert "c1" in net
        assert "ghost" not in net
        assert len(net) == 5


class TestTopology:
    def test_topological_order_is_consistent(self):
        net = residual_net()
        order = net.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for name in order:
            for pred in net.predecessors(name):
                assert pos[pred] < pos[name]

    def test_output_name(self):
        assert linear_net().output_name == "fc"

    def test_multiple_sinks_raises(self):
        net = Network("n", Input("in", channels=1))
        net.add(Linear("a", 1, 1), inputs=["in"])
        net.add(Linear("b", 1, 1), inputs=["in"])
        with pytest.raises(GraphError, match="2 sinks"):
            net.output_name


class TestShapeInference:
    def test_linear_shapes(self):
        shapes = linear_net().infer_shapes(batch=2)
        assert shapes["c1"] == FeatureMap(2, 4, 8, 8)
        assert shapes["fc"] == FeatureMap(2, 10, 1, 1)

    def test_residual_shapes(self):
        shapes = residual_net().infer_shapes(batch=2)
        assert shapes["add"] == FeatureMap(2, 8, 4, 4)

    def test_workloads_in_topological_order(self):
        names = [w.name for w in linear_net().workloads(2)]
        assert names == ["c1", "fc"]

    def test_residual_workload_count(self):
        assert len(residual_net(skip_conv=True).workloads(2)) == 5


class TestStageDecomposition:
    def test_linear_decomposition(self):
        stages = linear_net().stages(batch=2)
        assert all(isinstance(s, LayerStage) for s in stages)
        assert [s.name for s in stages] == ["c1", "fc"]

    def test_identity_skip_produces_parallel_stage(self):
        stages = residual_net(skip_conv=False).stages(batch=2)
        kinds = [type(s).__name__ for s in stages]
        assert kinds == ["LayerStage", "ParallelStage", "LayerStage"]
        parallel = stages[1]
        assert isinstance(parallel, ParallelStage)
        # one path has c2, c3; the skip path is empty
        sizes = sorted(len(p) for p in parallel.paths)
        assert sizes == [0, 2]

    def test_projection_skip_both_paths_weighted(self):
        stages = residual_net(skip_conv=True).stages(batch=2)
        parallel = stages[1]
        assert isinstance(parallel, ParallelStage)
        sizes = sorted(len(p) for p in parallel.paths)
        assert sizes == [1, 2]

    def test_stage_layer_count_matches_workloads(self):
        for build in (linear_net, lambda: residual_net(True)):
            net = build()
            assert count_stage_layers(net.stages(2)) == len(net.workloads(2))

    def test_iter_stage_workloads_order(self):
        names = [w.name for w in iter_stage_workloads(residual_net(True).stages(2))]
        assert names[0] == "c1"
        assert names[-1] == "fc"
        assert set(names) == {"c1", "c2", "c3", "c4", "fc"}

    def test_parallel_stage_requires_two_paths(self):
        with pytest.raises(ValueError):
            ParallelStage(paths=((),))


class TestNestedForks:
    def test_nested_fork_join(self):
        """in -> c1 -> [ c2 -> [c3|skip] -> c4 | skip ] -> add2 -> fc

        The inner fork nests strictly inside the outer path (forks at
        distinct nodes), which is the structure residual networks use.
        """
        net = Network("nested", Input("in", channels=4, height=4, width=4))
        c1 = net.add(Conv2d("c1", 4, 8, kernel=3, padding=1))
        c2 = net.add(Conv2d("c2", 8, 8, kernel=3, padding=1), inputs=[c1])
        c3 = net.add(Conv2d("c3", 8, 8, kernel=3, padding=1), inputs=[c2])
        add1 = net.add(Add("add1"), inputs=[c3, c2])
        c4 = net.add(Conv2d("c4", 8, 8, kernel=3, padding=1), inputs=[add1])
        add2 = net.add(Add("add2"), inputs=[c4, c1])
        net.add(Flatten("f"), inputs=[add2])
        net.add(Linear("fc", 8 * 4 * 4, 10))
        stages = net.stages(2)
        assert count_stage_layers(stages) == 5
        outer = stages[1]
        assert isinstance(outer, ParallelStage)
        # outer fork: one empty skip path, one path containing the inner fork
        sizes = sorted(len(p) for p in outer.paths)
        assert sizes[0] == 0
        inner_path = max(outer.paths, key=len)
        assert any(isinstance(s, ParallelStage) for s in inner_path)

    def test_overlapping_forks_raise(self):
        """Two forks from the same node with different joins: not SP."""
        net = Network("overlap", Input("in", channels=4, height=4, width=4))
        c1 = net.add(Conv2d("c1", 4, 8, kernel=3, padding=1))
        c2 = net.add(Conv2d("c2", 8, 8, kernel=3, padding=1), inputs=[c1])
        add1 = net.add(Add("add1"), inputs=[c2, c1])
        c4 = net.add(Conv2d("c4", 8, 8, kernel=3, padding=1), inputs=[add1])
        add2 = net.add(Add("add2"), inputs=[c4, c1])
        net.add(Flatten("f"), inputs=[add2])
        net.add(Linear("fc", 8 * 4 * 4, 10))
        with pytest.raises(GraphError, match="not series-parallel"):
            net.stages(2)


class TestDescribe:
    def test_describe_mentions_every_layer(self):
        net = linear_net()
        text = net.describe(batch=2)
        for name in net.layer_names():
            assert name in text
