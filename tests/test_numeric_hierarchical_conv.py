"""Tests of the multi-level CONV executor (Section 3.3, recursively)."""

import itertools

import numpy as np
import pytest

from repro.core.types import PartitionType
from repro.numeric.conv_partitioned import ConvLayerPlan
from repro.numeric.conv_reference import (
    CnnSpec,
    ConvLayerSpec,
    conv_reference_step,
)
from repro.numeric.hierarchical_conv import HierarchicalCnnExecutor

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def make_spec():
    return CnnSpec(
        in_channels=4, height=8, width=8,
        layers=[
            ConvLayerSpec(4, 8, kernel=3, padding=1),
            ConvLayerSpec(8, 8, kernel=3, padding=1),
        ],
    )


def run_both(level_types, ratio=0.5, batch=8, seed=0):
    spec = make_spec()
    rng = np.random.default_rng(seed)
    weights = spec.init_weights(seed)
    x = rng.standard_normal((batch, spec.in_channels, spec.height, spec.width))
    target = rng.standard_normal((batch, *spec.geometries()[-1]))
    ref = conv_reference_step(spec, weights, x, target)
    plans = [
        [ConvLayerPlan(t, ratio) for t in per_layer]
        for per_layer in level_types
    ]
    hier, log = HierarchicalCnnExecutor(spec, weights, plans, batch).step(
        x, target
    )
    return ref, hier, log


def max_divergence(ref, hier) -> float:
    grad = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.gradients, hier.gradients)
    )
    act = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.activations, hier.activations)
    )
    return max(grad, act, abs(ref.loss - hier.loss))


class TestExactness:
    @pytest.mark.parametrize("t1,t2", list(itertools.product((I, II, III),
                                                             repeat=2)))
    def test_two_levels_uniform(self, t1, t2):
        ref, hier, _ = run_both([[t1, t1], [t2, t2]])
        assert hier is not None
        assert max_divergence(ref, hier) < 1e-9

    def test_three_levels_mixed(self):
        ref, hier, _ = run_both([[I, II], [III, I], [II, III]])
        assert max_divergence(ref, hier) < 1e-9

    @pytest.mark.parametrize("ratio", [0.25, 0.5, 0.75])
    def test_asymmetric_ratio(self, ratio):
        ref, hier, _ = run_both([[II, III]], ratio=ratio)
        assert max_divergence(ref, hier) < 1e-9

    def test_plan_length_mismatch_raises(self):
        spec = make_spec()
        with pytest.raises(ValueError):
            HierarchicalCnnExecutor(spec, spec.init_weights(),
                                    [[ConvLayerPlan(I, 0.5)]], batch=8)


class TestPerLevelTraffic:
    def test_dp_pays_full_kernel_every_level(self):
        _, _, log = run_both([[I, I], [I, I]])
        totals = log.per_level_totals()
        w0 = 4 * 8 * 9
        w1 = 8 * 8 * 9
        assert totals[0] == 2 * (w0 + w1)        # 1 node x both layers
        assert totals[1] == 2 * 2 * (w0 + w1)    # 2 nodes

    def test_type_ii_forward_psum_scales_with_output_map(self):
        _, _, log = run_both([[II, II]])
        keyed = log.psum_elements
        assert keyed[(0, "cv0")] == 2 * 8 * 8 * 8 * 8  # 2 x B x Cout x OH x OW
