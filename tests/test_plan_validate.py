"""Unit tests for plan-level structural validation (repro.plan.validate)."""

import pytest

from repro.core.planner import AccParPlanner
from repro.core.types import PartitionType
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.plan.ir import (
    HierarchicalPlan,
    JoinAlignment,
    LayerAssignment,
    LevelPlan,
    PathExit,
)
from repro.plan.validate import collect_structure, validate_level, validate_plan

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


class TestCollectStructure:
    def test_linear_chain(self):
        layers, parallel = collect_structure(build_model("lenet").stages(8))
        assert "cv1" in layers and "fc3" in layers
        assert parallel == {}

    def test_multibranch_counts_paths(self):
        layers, parallel = collect_structure(build_model("resnet18").stages(8))
        assert parallel, "resnet18 must expose fork/join stages"
        assert all(n >= 2 for n in parallel.values())

    def test_fork_inside_path_is_found(self):
        from repro.core.stages import (
            ShardedLayerStage,
            ShardedParallelStage,
        )
        from repro.core.types import ShardedWorkload
        from repro.graph.layers import LayerWorkload

        def fc(name):
            w = LayerWorkload(name, 4, 4, 4, (1, 1), (1, 1), (1, 1), False)
            return ShardedLayerStage(ShardedWorkload(w))

        inner = ShardedParallelStage(paths=((fc("i1"),), ()), name="inner")
        outer = ShardedParallelStage(paths=((fc("o1"), inner), ()),
                                     name="outer")
        layers, parallel = collect_structure([fc("pre"), outer])
        assert layers == {"pre", "o1", "i1"}
        assert parallel == {"inner": 2, "outer": 2}


class TestValidateLevel:
    LAYERS = {"a", "b"}
    PARALLEL = {"blk": 2}

    def test_clean_level(self):
        level = LevelPlan(entries=(
            LayerAssignment("a", I, 0.5),
            LayerAssignment("b", II, 0.5),
            PathExit("blk", 1, I, 0.5),
            JoinAlignment("blk", III, 0.5),
        ))
        assert validate_level(level, self.LAYERS, self.PARALLEL) == []

    def test_missing_layer_reported(self):
        level = LevelPlan(entries=(LayerAssignment("a", I, 0.5),))
        issues = validate_level(level, self.LAYERS, self.PARALLEL)
        assert any("without assignment" in m and "b" in m for m in issues)

    def test_unknown_layer_reported(self):
        level = LevelPlan(entries=(
            LayerAssignment("a", I, 0.5),
            LayerAssignment("b", I, 0.5),
            LayerAssignment("ghost", I, 0.5),
        ))
        issues = validate_level(level, self.LAYERS, self.PARALLEL)
        assert any("unknown layers" in m and "ghost" in m for m in issues)

    def test_out_of_range_alpha_reported(self):
        level = LevelPlan(entries=(
            LayerAssignment("a", I, 1.5),
            LayerAssignment("b", I, 0.5),
        ))
        issues = validate_level(level, self.LAYERS, self.PARALLEL)
        assert any("alpha 1.5" in m for m in issues)

    def test_unknown_join_stage_reported(self):
        level = LevelPlan(entries=(
            LayerAssignment("a", I, 0.5),
            LayerAssignment("b", I, 0.5),
            JoinAlignment("nowhere", I, 0.5),
        ))
        issues = validate_level(level, self.LAYERS, self.PARALLEL)
        assert any("unknown fork/join stage 'nowhere'" in m for m in issues)

    def test_exit_path_index_out_of_range(self):
        level = LevelPlan(entries=(
            LayerAssignment("a", I, 0.5),
            LayerAssignment("b", I, 0.5),
            PathExit("blk", 2, I, 0.5),
        ))
        issues = validate_level(level, self.LAYERS, self.PARALLEL)
        assert any("outside [0, 2)" in m for m in issues)


class TestValidatePlan:
    def test_planned_networks_validate_clean(self):
        for name in ("lenet", "resnet18"):
            network = build_model(name)
            planned = AccParPlanner(heterogeneous_array(2, 2)).plan(
                network, batch=32
            )
            assert validate_plan(planned.plan, network, batch=32) == []

    def test_issue_paths_name_the_subtree(self):
        network = build_model("lenet")
        planned = AccParPlanner(heterogeneous_array(2, 2)).plan(
            network, batch=32
        )
        # empty out the left child's level
        planned.plan.left.level_plan = LevelPlan()
        issues = validate_plan(planned.plan, network, batch=32)
        assert issues and all(m.startswith("rootL:") for m in issues)

    def test_leaf_only_plan_validates_empty(self):
        assert validate_plan(HierarchicalPlan(None), build_model("lenet")) == []
