"""Unit tests for the content-addressed fingerprints behind the plan cache."""

import dataclasses

import pytest

from repro.digest import stable_digest
from repro.graph import Input, Linear, Network
from repro.hardware import AcceleratorSpec, heterogeneous_array, make_group
from repro.hardware.presets import TPU_V2, TPU_V3
from repro.models import build_model
from repro.service import PlanRequest


class TestStableDigest:
    def test_deterministic(self):
        payload = {"b": [1, 2.5], "a": "x"}
        assert stable_digest(payload) == stable_digest(payload)

    def test_key_order_irrelevant(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_short_hex(self):
        digest = stable_digest("anything")
        assert len(digest) == 16
        int(digest, 16)  # valid hex


class TestSpecFingerprint:
    def test_equal_specs_equal_fingerprints(self):
        clone = AcceleratorSpec(
            name=TPU_V2.name,
            flops=TPU_V2.flops,
            memory_bytes=TPU_V2.memory_bytes,
            memory_bandwidth=TPU_V2.memory_bandwidth,
            network_bandwidth=TPU_V2.network_bandwidth,
        )
        assert clone.fingerprint() == TPU_V2.fingerprint()

    def test_any_field_changes_fingerprint(self):
        base = TPU_V2.fingerprint()
        for change in (
            {"name": "other"},
            {"flops": TPU_V2.flops * 2},
            {"memory_bytes": TPU_V2.memory_bytes + 1},
            {"memory_bandwidth": TPU_V2.memory_bandwidth + 1},
            {"network_bandwidth": TPU_V2.network_bandwidth + 1},
        ):
            assert dataclasses.replace(TPU_V2, **change).fingerprint() != base

    def test_distinct_boards_differ(self):
        assert TPU_V2.fingerprint() != TPU_V3.fingerprint()


class TestGroupFingerprint:
    def test_same_members_same_fingerprint(self):
        assert (heterogeneous_array(2, 2).fingerprint()
                == heterogeneous_array(2, 2).fingerprint())

    def test_size_changes_fingerprint(self):
        assert (heterogeneous_array(2, 2).fingerprint()
                != heterogeneous_array(2, 4).fingerprint())

    def test_homogeneous_vs_heterogeneous(self):
        assert (make_group(TPU_V3, 4).fingerprint()
                != heterogeneous_array(2, 2).fingerprint())


class TestNetworkFingerprint:
    def test_same_model_same_fingerprint(self):
        assert (build_model("alexnet").fingerprint()
                == build_model("alexnet").fingerprint())

    def test_models_differ(self):
        names = ["lenet", "alexnet", "vgg11", "resnet18"]
        prints = {build_model(n).fingerprint() for n in names}
        assert len(prints) == len(names)

    def test_structure_not_just_name(self):
        def tiny(width):
            net = Network("same-name", Input("in", channels=8))
            net.add(Linear("fc", 8, width))
            return net

        assert tiny(16).fingerprint() != tiny(32).fingerprint()

    def test_batch_argument_changes_hash(self):
        net = build_model("lenet")
        assert net.fingerprint(1) != net.fingerprint(2)


class TestPlanRequestFingerprint:
    def setup_method(self):
        self.array = heterogeneous_array(2, 2)

    def request(self, **overrides):
        kwargs = dict(model="alexnet", array=self.array, batch=64)
        kwargs.update(overrides)
        return PlanRequest(**kwargs)

    def test_independent_instances_agree(self):
        assert self.request().fingerprint() == self.request().fingerprint()

    def test_every_knob_changes_key(self):
        base = self.request().fingerprint()
        variants = [
            self.request(model="vgg11"),
            self.request(batch=128),
            self.request(scheme="hypar"),
            self.request(dtype_bytes=4),
            self.request(levels=1),
            self.request(space=("I", "II")),
            self.request(ratio_mode="equal"),
            self.request(array=heterogeneous_array(2, 4)),
        ]
        keys = {v.fingerprint() for v in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_model_name_case_insensitive(self):
        assert (self.request(model="AlexNet").fingerprint()
                == self.request(model="alexnet").fingerprint())

    def test_custom_network_builder_feeds_hash(self):
        def builder(name):
            net = Network(name, Input("in", channels=8))
            net.add(Linear("fc", 8, 4))
            return net

        assert (self.request().fingerprint(builder)
                != self.request().fingerprint())

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            PlanRequest(model="alexnet", array=self.array, batch=0)


class TestProfileFingerprintSeparation:
    """Calibrated and analytic plans must never share a cache entry."""

    def setup_method(self):
        self.array = heterogeneous_array(2, 2)

    def request(self, **overrides):
        kwargs = dict(model="alexnet", array=self.array, batch=64)
        kwargs.update(overrides)
        return PlanRequest(**kwargs)

    def calibrated(self, rate=90e12):
        from repro.hardware.profile import CalibratedProfile, SpecProfile

        return CalibratedProfile(name="t", specs=(
            SpecProfile(spec="tpu-v2", compute_rates=(("default", rate),)),
            SpecProfile(spec="tpu-v3", compute_rates=(("default", 2 * rate),)),
        ))

    def test_calibrated_differs_from_analytic(self):
        assert (self.request(profile=self.calibrated()).fingerprint()
                != self.request().fingerprint())

    def test_distinct_profiles_distinct_keys(self):
        a = self.request(profile=self.calibrated(90e12)).fingerprint()
        b = self.request(profile=self.calibrated(80e12)).fingerprint()
        assert a != b

    def test_equal_profiles_share_key(self):
        assert (self.request(profile=self.calibrated()).fingerprint()
                == self.request(profile=self.calibrated()).fingerprint())

    def test_explicit_analytic_canonicalizes_to_none(self):
        from repro.hardware.profile import ANALYTIC

        explicit = self.request(profile=ANALYTIC)
        assert explicit.profile is None
        assert explicit.fingerprint() == self.request().fingerprint()
