"""Unit tests for the Eq. 10 partitioning-ratio solver."""

import pytest

from repro.core.ratio import (
    RATIO_HI,
    RATIO_LO,
    compute_proportional_ratio,
    solve_balanced_ratio,
)


class TestSolveBalancedRatio:
    def test_symmetric_costs_give_half(self):
        alpha = solve_balanced_ratio(lambda a: (a, 1.0 - a))
        assert alpha == pytest.approx(0.5, abs=1e-6)

    def test_linear_heterogeneous_closed_form(self):
        # cost_i = alpha / 3, cost_j = (1-alpha) / 1 -> alpha = 3/4
        alpha = solve_balanced_ratio(lambda a: (a / 3.0, (1.0 - a) / 1.0))
        assert alpha == pytest.approx(0.75, abs=1e-6)

    def test_affine_offsets(self):
        # cost_i = 2 + alpha, cost_j = 4 + (1-alpha) -> alpha = 1.5 -> clamp?
        # solve: 2 + a = 4 + 1 - a -> a = 1.5 (out of range) -> scan fallback
        alpha = solve_balanced_ratio(lambda a: (2.0 + a, 4.0 + (1.0 - a)))
        assert alpha == pytest.approx(RATIO_HI, abs=1e-2)

    def test_quadratic_cross_term_still_solves(self):
        # includes the alpha*beta inter-layer term of Table 5
        def pair(a):
            b = 1.0 - a
            return (a / 2.0 + a * b * 0.1, b / 1.0 + a * b * 0.1)

        alpha = solve_balanced_ratio(pair)
        ci, cj = pair(alpha)
        assert ci == pytest.approx(cj, rel=1e-6)

    def test_dominant_party_falls_back_to_minimax(self):
        # party i is always more expensive: minimize max -> push alpha low
        alpha = solve_balanced_ratio(lambda a: (10.0 + a, 0.1 * (1.0 - a)))
        assert alpha == pytest.approx(RATIO_LO, abs=0.02)

    def test_result_within_bounds(self):
        alpha = solve_balanced_ratio(lambda a: (a * 1e6, (1.0 - a) * 1e-6))
        assert RATIO_LO <= alpha <= RATIO_HI

    def test_invalid_bracket_raises(self):
        with pytest.raises(ValueError):
            solve_balanced_ratio(lambda a: (a, 1 - a), lo=0.9, hi=0.1)

    def test_exact_boundary_roots(self):
        # residual zero exactly at lo
        alpha = solve_balanced_ratio(lambda a: (0.0, 0.0), lo=0.25, hi=0.75)
        assert alpha == 0.25


class TestComputeProportionalRatio:
    def test_tpu_ratio(self):
        assert compute_proportional_ratio(420e12, 180e12) == pytest.approx(0.7)

    def test_symmetric(self):
        assert compute_proportional_ratio(5.0, 5.0) == 0.5

    def test_clamped(self):
        assert compute_proportional_ratio(1e30, 1.0) <= RATIO_HI

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            compute_proportional_ratio(0.0, 1.0)
