"""End-to-end: plans from the real planner execute numerically, exactly.

The final link of the reproduction: AccParPlanner (cost model + Eq. 9 DP +
Eq. 10 ratios, heterogeneous pairing tree) produces a plan; the numeric
executor runs that exact plan — asymmetric per-node types and real-valued
ratios included — with real matrices, and the result matches single-device
training to float64 precision.
"""

import numpy as np
import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.core.quantize import quantize_plan
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.numeric.plan_executor import PlanTreeMlpExecutor, mlp_network
from repro.numeric.reference import MlpSpec, reference_step


WIDTHS = [32, 48, 32, 16]
BATCH = 32


def plan_and_execute(scheme="accpar", array=None, widths=WIDTHS, batch=BATCH,
                     seed=0):
    array = array if array is not None else heterogeneous_array(2, 2)
    network = mlp_network(widths)
    planned = Planner(array, get_scheme(scheme)).plan(network, batch)

    spec = MlpSpec(widths)
    weights = spec.init_weights(seed)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, widths[0]))
    target = rng.standard_normal((batch, widths[-1]))

    executor = PlanTreeMlpExecutor(spec, weights, planned.plan, batch)
    hier = executor.step(x, target)
    ref = reference_step(weights, x, target)
    return planned, ref, hier


def max_divergence(ref, hier):
    grad = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.gradients, hier.gradients)
    )
    return max(grad, abs(ref.loss - hier.loss))


class TestPlannerPlansExecute:
    @pytest.mark.parametrize("scheme", ["dp", "owt", "hypar", "accpar"])
    def test_heterogeneous_plans_exact(self, scheme):
        planned, ref, hier = plan_and_execute(scheme=scheme)
        assert planned.hierarchy_levels() == 2
        assert hier.n_leaf_devices == 4
        assert max_divergence(ref, hier) < 1e-9

    def test_asymmetric_ratios_from_eq10(self):
        """The heterogeneous AccPar plan carries non-half ratios; execution
        must still be exact (integer snapping happens inside the split)."""
        planned, ref, hier = plan_and_execute(scheme="accpar")
        ratios = {
            lp.ratio
            for lp in planned.root_level_plan.layer_assignments().values()
        }
        assert any(abs(r - 0.5) > 0.01 for r in ratios)
        assert max_divergence(ref, hier) < 1e-9

    def test_deeper_homogeneous_tree(self):
        planned, ref, hier = plan_and_execute(
            scheme="accpar", array=homogeneous_array(8),
            widths=[64, 64, 64], batch=64,
        )
        assert hier.n_leaf_devices == 8
        assert max_divergence(ref, hier) < 1e-9

    def test_quantized_plan_executes_too(self):
        array = heterogeneous_array(2, 2)
        network = mlp_network(WIDTHS)
        planned = Planner(array, get_scheme("accpar")).plan(network, BATCH)
        quantized, _ = quantize_plan(planned)

        spec = MlpSpec(WIDTHS)
        weights = spec.init_weights(0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((BATCH, WIDTHS[0]))
        target = rng.standard_normal((BATCH, WIDTHS[-1]))
        hier = PlanTreeMlpExecutor(spec, weights, quantized.plan, BATCH).step(
            x, target
        )
        ref = reference_step(weights, x, target)
        assert max_divergence(ref, hier) < 1e-9

    def test_dp_plan_comm_matches_level_accounting(self):
        """Under the planner's DP plan, every level's psum traffic equals
        the expected node-count x 2 x A(W) pattern."""
        planned, _, hier = plan_and_execute(scheme="dp")
        weights_elements = sum(
            WIDTHS[k] * WIDTHS[k + 1] for k in range(len(WIDTHS) - 1)
        )
        totals = hier.comm.per_level_totals()
        assert totals[0] == 2 * weights_elements
        assert totals[1] == 4 * weights_elements

    def test_missing_assignment_rejected(self):
        planned, _, _ = plan_and_execute()
        spec = MlpSpec(WIDTHS)
        with pytest.raises(ValueError, match="layer_names must cover"):
            PlanTreeMlpExecutor(spec, spec.init_weights(), planned.plan,
                                BATCH, layer_names=["fc0"])

    def test_wrong_layer_names_rejected(self):
        planned, _, _ = plan_and_execute()
        spec = MlpSpec(WIDTHS)
        with pytest.raises(ValueError, match="misses assignments"):
            PlanTreeMlpExecutor(spec, spec.init_weights(), planned.plan,
                                BATCH, layer_names=["a", "b", "c"])


class TestMlpNetworkBridge:
    def test_layer_names_match_default(self):
        net = mlp_network([8, 4, 2])
        names = [w.name for w in net.workloads(2)]
        assert names == ["fc0", "fc1"]

    def test_validates(self):
        from repro.graph import validate_network

        assert validate_network(mlp_network([8, 4, 2])) == []
