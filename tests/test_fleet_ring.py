"""Consistent-hash ring: balance, minimal movement, determinism."""

import subprocess
import sys

import pytest

from repro.digest import stable_digest
from repro.fleet.ring import DEFAULT_VNODES, HashRing, _point


def fingerprints(n):
    """Synthetic fingerprint population shaped like real cache keys."""
    return [stable_digest({"i": i}) for i in range(n)]


class TestBalance:
    def test_chi_squared_distribution_bound(self):
        """Keys split near-uniformly: χ² over shard counts stays bounded.

        Under consistent hashing the deviation from uniform is dominated by
        shard *arc-length* variance, which shrinks as 1/vnodes — so the χ²
        statistic over observed-vs-uniform counts concentrates around
        n/vnodes (not around the k-1 of a multinomial null).  We assert it
        stays below 3·n/vnodes: a hot shard — the failure mode virtual
        nodes exist to prevent, e.g. a ring built with vnodes=1 — lands
        orders of magnitude above that line.  The key population is
        deterministic, so this is not a flaky statistical test.
        """
        shards = [f"shard-{i}" for i in range(8)]
        ring = HashRing(shards)
        keys = fingerprints(20_000)
        counts = ring.distribute(keys)
        expected = len(keys) / len(shards)
        chi2 = sum((counts[s] - expected) ** 2 / expected for s in shards)
        bound = 3 * len(keys) / ring.vnodes
        assert chi2 < bound, f"imbalanced ring: {counts} (chi2={chi2:.1f})"
        # and the same population on a vnodes=1 ring shows why the bound
        # has teeth: balance collapses without virtual nodes
        degenerate = HashRing(shards, vnodes=1)
        d_counts = degenerate.distribute(keys)
        d_chi2 = sum((d_counts[s] - expected) ** 2 / expected
                     for s in shards)
        assert d_chi2 > bound

    def test_every_shard_gets_a_nontrivial_share(self):
        ring = HashRing(["0", "1", "2", "3"])
        counts = ring.distribute(fingerprints(8_000))
        for shard, count in counts.items():
            # each shard holds at least half its fair share
            assert count > 1000, f"shard {shard} starved: {counts}"

    def test_more_vnodes_tightens_balance(self):
        keys = fingerprints(10_000)

        def spread(vnodes):
            counts = HashRing(["a", "b", "c"], vnodes=vnodes).distribute(keys)
            return max(counts.values()) - min(counts.values())

        assert spread(256) < spread(4)


class TestMinimalMovement:
    def test_join_only_moves_keys_to_the_new_shard(self):
        keys = fingerprints(5_000)
        before = HashRing(["0", "1", "2"])
        after = HashRing(["0", "1", "2"])
        after.add("3")
        moved = 0
        for key in keys:
            old, new = before.owner(key), after.owner(key)
            if old != new:
                moved += 1
                # a key never moves between surviving shards on a join
                assert new == "3", f"{key}: {old} -> {new} on join of '3'"
        # ~1/4 of the keyspace moves; allow generous slack either way
        assert 0.15 < moved / len(keys) < 0.40

    def test_leave_only_moves_the_departed_shards_keys(self):
        keys = fingerprints(5_000)
        before = HashRing(["0", "1", "2", "3"])
        after = HashRing(["0", "1", "2", "3"])
        after.remove("1")
        for key in keys:
            old, new = before.owner(key), after.owner(key)
            if old != "1":
                # keys on surviving shards never move on a leave
                assert new == old, f"{key}: {old} -> {new} on leave of '1'"
            else:
                assert new != "1"

    def test_add_then_remove_is_identity(self):
        keys = fingerprints(2_000)
        ring = HashRing(["0", "1"])
        original = {k: ring.owner(k) for k in keys}
        ring.add("2")
        ring.remove("2")
        assert {k: ring.owner(k) for k in keys} == original


class TestDeterminism:
    def test_join_order_does_not_matter(self):
        keys = fingerprints(2_000)
        forward = HashRing(["0", "1", "2"])
        backward = HashRing(["2", "1", "0"])
        for key in keys:
            assert forward.owner(key) == backward.owner(key)

    def test_routing_is_identical_across_processes(self):
        """A fresh interpreter (fresh PYTHONHASHSEED) routes identically.

        The ring hashes with SHA-256, never the process-local ``hash()``;
        this is what lets the frontend and offline tools agree on ownership
        without any coordination.
        """
        keys = fingerprints(200)
        local = [HashRing(["0", "1", "2"]).owner(k) for k in keys]
        script = (
            "from repro.fleet.ring import HashRing\n"
            "import sys\n"
            "ring = HashRing(['0', '1', '2'])\n"
            "for key in sys.stdin.read().split():\n"
            "    print(ring.owner(key))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            input="\n".join(keys), capture_output=True, text=True,
            check=True, env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        )
        assert result.stdout.split() == local

    def test_point_function_is_stable(self):
        # pinned value: changing the point function silently re-shards
        # every deployed fleet's cache — make that a loud test failure
        assert _point("shard-0#0") == int.from_bytes(
            __import__("hashlib").sha256(b"shard-0#0").digest()[:8], "big")


class TestApi:
    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["a"]).remove("b")

    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(LookupError):
            HashRing().owner("abc")

    def test_describe_and_membership(self):
        ring = HashRing(["a", "b"], vnodes=16)
        assert ring.describe() == {"shards": ["a", "b"], "vnodes": 16,
                                   "points": 32}
        assert len(ring) == 2 and "a" in ring and "c" not in ring
