"""Tracer tests: nesting, the disabled fast path, and Chrome export."""

import threading

import pytest

from repro.core.cost_model import PairCostModel
from repro.core.dp_search import search_stages
from repro.core.planner import AccParPlanner
from repro.core.stages import to_sharded_stages
from repro.hardware import heterogeneous_array
from repro.hardware.cluster import bisection_tree
from repro.models import build_model
from repro.obs.export import (
    REQUIRED_EVENT_KEYS,
    chrome_trace_document,
    spans_to_events,
)
from repro.obs.tracing import NULL_SPAN, Tracer, new_trace_id, tracer
from repro.service import PlanRequest, PlanService


@pytest.fixture
def enabled_tracer():
    """Enable the process-wide tracer for one test, restoring it after."""
    tracer.clear()
    tracer.enable()
    yield tracer
    tracer.disable()
    tracer.clear()


@pytest.fixture
def array():
    return heterogeneous_array(2, 2)


def plan_spans(enabled_tracer, array, model="lenet", batch=32):
    AccParPlanner(array).plan(build_model(model), batch)
    return enabled_tracer.drain()


class TestTracerBasics:
    def test_span_records_times_and_attributes(self):
        t = Tracer(enabled=True)
        with t.span("work", category="test", answer=42) as span:
            span.set("late", "yes")
        (collected,) = t.drain()
        assert collected.name == "work"
        assert collected.category == "test"
        assert collected.complete
        assert collected.end_ns >= collected.start_ns > 0
        assert collected.attributes == {"answer": 42, "late": "yes"}
        assert collected.thread_id == threading.get_ident()

    def test_nesting_sets_parent_ids(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("sibling"):
                pass
        by_name = {s.name: s for s in t.drain()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id

    def test_threads_have_independent_stacks(self):
        t = Tracer(enabled=True)
        done = threading.Event()

        def worker():
            with t.span("thread_root"):
                pass
            done.set()

        with t.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.wait(1)
        by_name = {s.name: s for s in t.drain()}
        assert by_name["thread_root"].parent_id is None
        assert by_name["main_root"].parent_id is None
        assert by_name["thread_root"].thread_id != by_name["main_root"].thread_id

    def test_max_spans_bounds_memory(self):
        t = Tracer(enabled=True, max_spans=3)
        for index in range(5):
            with t.span(f"s{index}"):
                pass
        assert len(t.spans()) == 3
        assert t.spans_dropped == 2
        t.clear()
        assert t.spans() == [] and t.spans_dropped == 0

    def test_trace_id_is_thread_local(self):
        t = Tracer(enabled=True)
        t.set_trace_id("abc")
        seen = {}

        def worker():
            seen["worker"] = t.current_trace_id()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert t.current_trace_id() == "abc"
        assert seen["worker"] is None

    def test_new_trace_id_shape(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        assert len(a) == 16
        int(a, 16)  # valid hex


class TestTracerHealth:
    def test_health_reports_buffer_state(self):
        t = Tracer(enabled=True, max_spans=4)
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        health = t.health()
        assert health["enabled"] is True
        assert health["spans_started"] == 2
        assert health["spans_dropped"] == 0
        assert health["buffer_len"] == 2
        assert health["buffer_high_water"] == 2
        assert health["max_spans"] == 4

    def test_high_water_survives_drain_and_counts_drops(self):
        t = Tracer(enabled=True, max_spans=2)
        for name in ("a", "b", "c"):
            with t.span(name):
                pass
        health = t.health()
        assert health["spans_dropped"] == 1
        assert health["buffer_high_water"] == 2
        t.drain()
        after = t.health()
        assert after["buffer_len"] == 0
        # high-water is a lifetime mark, not a gauge of the live buffer
        assert after["buffer_high_water"] == 2
        t.clear()
        assert t.health()["buffer_high_water"] == 0


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("anything") is NULL_SPAN
        assert t.span("anything") is t.span("other")

    def test_dp_inner_loop_allocates_no_spans_when_disabled(self, array):
        """Counter-based (not timing-based) no-allocation guard.

        With the process-wide tracer disabled, a full DP search must not
        start a single span: ``spans_started`` only moves on the enabled
        path, so a zero delta proves the disabled branch never reaches
        span construction.
        """
        assert not tracer.enabled
        network = build_model("resnet18")  # includes multi-path stages
        stages = to_sharded_stages(network.stages(32))
        node = bisection_tree(array, 1, "type-separated")
        model = PairCostModel(node.left.group, node.right.group, 2, "balanced")
        before_started = tracer.spans_started
        search_stages(stages, model)
        assert tracer.spans_started == before_started
        assert tracer.spans() == []


class TestPlannerSpanTree:
    def test_span_tree_covers_hierarchy_dp_and_ratio(self, enabled_tracer, array):
        spans = plan_spans(enabled_tracer, array)
        names = {s.name for s in spans}
        assert {"hierarchy.plan", "dp.search", "dp.stage",
                "ratio.solve"} <= names

    def test_hierarchy_recursion_nests(self, enabled_tracer, array):
        spans = plan_spans(enabled_tracer, array)
        index = {s.span_id: s for s in spans}
        hierarchy = [s for s in spans if s.name == "hierarchy.plan"]
        # 4 accelerators -> a root split (level 1) plus child splits (level 2)
        levels = sorted(s.attributes["level"] for s in hierarchy)
        assert levels[0] == 1 and levels[-1] == 2
        for span in hierarchy:
            if span.attributes["level"] == 1:
                assert span.parent_id is None
            else:
                parent = index[span.parent_id]
                assert parent.name == "hierarchy.plan"
                assert parent.attributes["level"] == span.attributes["level"] - 1
                # the child's interval sits inside the parent's
                assert parent.start_ns <= span.start_ns
                assert span.end_ns <= parent.end_ns

    def test_dp_spans_nest_under_hierarchy(self, enabled_tracer, array):
        spans = plan_spans(enabled_tracer, array)
        index = {s.span_id: s for s in spans}
        for span in spans:
            if span.name == "dp.search":
                assert index[span.parent_id].name == "hierarchy.plan"
            elif span.name == "dp.stage":
                assert index[span.parent_id].name == "dp.search"
            elif span.name == "ratio.solve":
                parent = index[span.parent_id]
                assert parent.name in ("dp.stage", "multipath.path_dp")
                assert "path" in span.attributes

    def test_multipath_spans_on_branching_models(self, enabled_tracer, array):
        spans = plan_spans(enabled_tracer, array, model="resnet18")
        multipath = [s for s in spans if s.name == "multipath.path_dp"]
        assert multipath, "resnet18 should exercise fork/join path DPs"
        index = {s.span_id: s for s in spans}
        for span in multipath:
            assert index[span.parent_id].name == "dp.stage"
            assert isinstance(span.attributes["path"], int)


class TestChromeExport:
    def test_events_have_required_trace_event_keys(self, enabled_tracer, array):
        spans = plan_spans(enabled_tracer, array)
        events = spans_to_events(spans)
        assert events
        for event in events:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event, (key, event["name"])
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] > 0
            assert event["pid"] == 0
            assert isinstance(event["tid"], int)

    def test_document_shape_and_time_rebase(self, enabled_tracer, array):
        spans = plan_spans(enabled_tracer, array)
        document = chrome_trace_document(spans)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert min(e["ts"] for e in events) == 0.0

    def test_incomplete_spans_are_excluded(self):
        t = Tracer(enabled=True)
        with t.span("finished"):
            pass
        spans = t.drain()
        dangling = t.span("dangling")
        dangling.__enter__()  # never exited
        spans.append(dangling)
        events = spans_to_events(spans)
        assert [e["name"] for e in events] == ["finished"]

    def test_empty_span_list_exports_empty_document(self):
        assert chrome_trace_document([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


class TestServiceTracing:
    def test_request_gets_trace_id_and_lifecycle_spans(self, enabled_tracer, array):
        with PlanService(workers=2) as service:
            request = PlanRequest(model="lenet", array=array, batch=32)
            response = service.plan(request)
            service.drain()
        spans = enabled_tracer.drain()
        assert response.trace_id and len(response.trace_id) == 16
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        for name in ("service.request", "service.fingerprint",
                     "service.cache_lookup", "service.singleflight_wait",
                     "service.plan_exact"):
            assert name in by_name, name
        # every service span of this request carries the same trace id,
        # including the one recorded on the worker-pool thread
        for name in ("service.request", "service.plan_exact"):
            (span,) = by_name[name]
            assert span.trace_id == response.trace_id
        (request_span,) = by_name["service.request"]
        (exact_span,) = by_name["service.plan_exact"]
        assert exact_span.thread_id != 0
        assert request_span.attributes["model"] == "lenet"

    def test_cache_hit_requests_get_distinct_trace_ids(self, enabled_tracer, array):
        with PlanService(workers=2) as service:
            request = PlanRequest(model="lenet", array=array, batch=32)
            first = service.plan(request)
            second = service.plan(request)
        assert second.cache_hit
        assert first.trace_id != second.trace_id

    def test_planner_spans_inherit_request_trace_id(self, enabled_tracer, array):
        with PlanService(workers=2) as service:
            request = PlanRequest(model="lenet", array=array, batch=32)
            response = service.plan(request)
            service.drain()
        spans = enabled_tracer.drain()
        dp_spans = [s for s in spans if s.name == "dp.search"]
        assert dp_spans
        assert all(s.trace_id == response.trace_id for s in dp_spans)
