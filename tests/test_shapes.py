"""Unit tests for the tensor shape primitives."""

import pytest

from repro.graph.shapes import (
    FeatureMap,
    TensorShape,
    conv_output_hw,
    pool_output_hw,
)


class TestTensorShape:
    def test_size_is_product_of_dims(self):
        assert TensorShape((4, 5)).size == 20

    def test_paper_kernel_example(self):
        # Section 4.1: a 16x3x3x32 kernel has size 4608
        assert TensorShape((16, 3, 3, 32)).size == 4608

    def test_rank(self):
        assert TensorShape((2, 3, 4)).rank == 3

    def test_single_dim(self):
        assert TensorShape((7,)).size == 7

    def test_iteration_and_indexing(self):
        shape = TensorShape((2, 3, 4))
        assert list(shape) == [2, 3, 4]
        assert shape[1] == 3

    def test_str(self):
        assert str(TensorShape((2, 3))) == "(2, 3)"

    def test_bytes_bfloat16(self):
        assert TensorShape((10, 10)).bytes() == 200

    def test_bytes_fp32(self):
        assert TensorShape((10, 10)).bytes(dtype_bytes=4) == 400

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TensorShape(())

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            TensorShape((4, 0))

    def test_rejects_negative_dim(self):
        with pytest.raises(ValueError):
            TensorShape((4, -1))

    def test_rejects_nonpositive_dtype(self):
        with pytest.raises(ValueError):
            TensorShape((2,)).bytes(dtype_bytes=0)

    def test_equality_and_hash(self):
        assert TensorShape((2, 3)) == TensorShape((2, 3))
        assert hash(TensorShape((2, 3))) == hash(TensorShape((2, 3)))
        assert TensorShape((2, 3)) != TensorShape((3, 2))


class TestFeatureMap:
    def test_shape_and_size(self):
        fm = FeatureMap(8, 3, 32, 32)
        assert fm.shape == TensorShape((8, 3, 32, 32))
        assert fm.size == 8 * 3 * 32 * 32

    def test_fc_degenerate_spatial(self):
        fm = FeatureMap(8, 100)
        assert fm.height == 1 and fm.width == 1
        assert fm.spatial_size == 1

    def test_spatial_size(self):
        assert FeatureMap(1, 1, 7, 5).spatial_size == 35

    def test_with_batch(self):
        fm = FeatureMap(8, 3, 32, 32)
        assert fm.with_batch(16) == FeatureMap(16, 3, 32, 32)

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            FeatureMap(0, 3)

    def test_rejects_negative_channels(self):
        with pytest.raises(ValueError):
            FeatureMap(1, -3)


class TestConvGeometry:
    def test_basic_3x3_pad1(self):
        assert conv_output_hw(32, 32, (3, 3), (1, 1), (1, 1)) == (32, 32)

    def test_stride2_downsample(self):
        assert conv_output_hw(224, 224, (7, 7), (2, 2), (3, 3)) == (112, 112)

    def test_alexnet_first_layer(self):
        assert conv_output_hw(224, 224, (11, 11), (4, 4), (2, 2)) == (55, 55)

    def test_1x1_pointwise(self):
        assert conv_output_hw(14, 14, (1, 1), (1, 1), (0, 0)) == (14, 14)

    def test_asymmetric_input(self):
        assert conv_output_hw(10, 20, (3, 3), (1, 1), (0, 0)) == (8, 18)

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError):
            conv_output_hw(2, 2, (5, 5), (1, 1), (0, 0))


class TestPoolGeometry:
    def test_2x2_stride2(self):
        assert pool_output_hw(224, 224, (2, 2), (2, 2)) == (112, 112)

    def test_3x3_stride2_floor(self):
        # AlexNet pooling: 55 -> 27
        assert pool_output_hw(55, 55, (3, 3), (2, 2)) == (27, 27)

    def test_resnet_pool_with_padding(self):
        assert pool_output_hw(112, 112, (3, 3), (2, 2), (1, 1)) == (56, 56)

    def test_ceil_mode(self):
        assert pool_output_hw(5, 5, (2, 2), (2, 2), ceil_mode=True) == (3, 3)
        assert pool_output_hw(5, 5, (2, 2), (2, 2), ceil_mode=False) == (2, 2)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            pool_output_hw(1, 1, (4, 4), (4, 4))
