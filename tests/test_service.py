"""Tests for the plan service: cache tiers, single-flight, deadlines, metrics."""

import json
import threading

import pytest

from repro.core.planner import AccParPlanner
from repro.hardware import heterogeneous_array
from repro.models import build_model
from repro.service import (
    MetricsRegistry,
    PlanCache,
    PlanRequest,
    PlanService,
    SingleFlight,
    build_scheme,
    serve_loop,
)
from repro.service.server import handle_line, warm_cache
from repro.sim.executor import evaluate


@pytest.fixture
def array():
    return heterogeneous_array(2, 2)


@pytest.fixture
def request_alexnet(array):
    return PlanRequest(model="alexnet", array=array, batch=64)


@pytest.fixture
def service():
    with PlanService(workers=4) as svc:
        yield svc


def assert_same_plan(a, b):
    """Two PlannedExecutions carry identical decisions and simulated cost."""
    assert a.network_name == b.network_name
    assert a.hierarchy_levels() == b.hierarchy_levels()
    left = a.root_level_plan.assignments
    right = b.root_level_plan.assignments
    assert set(left) == set(right)
    for name in left:
        assert left[name].ptype is right[name].ptype
        assert left[name].ratio == pytest.approx(right[name].ratio)
    assert evaluate(a).total_time == pytest.approx(evaluate(b).total_time)


class TestCacheHits:
    def test_hit_returns_plan_identical_to_cold(self, service, request_alexnet, array):
        cold = service.plan(request_alexnet)
        warm = service.plan(request_alexnet)
        assert cold.source == "planned" and not cold.cache_hit
        assert warm.source == "memory" and warm.cache_hit
        reference = AccParPlanner(array).plan(build_model("alexnet"), batch=64)
        assert_same_plan(warm.planned, cold.planned)
        assert_same_plan(warm.planned, reference)

    def test_hit_counters(self, service, request_alexnet):
        service.plan(request_alexnet)
        service.plan(request_alexnet)
        service.plan(request_alexnet)
        assert service.metrics.value("requests") == 3
        assert service.metrics.value("planner_runs") == 1
        assert service.metrics.value("hits_memory") == 2
        assert service.cache.stats.hits_memory == 2

    def test_distinct_requests_plan_separately(self, service, array):
        service.plan(PlanRequest(model="lenet", array=array, batch=32))
        service.plan(PlanRequest(model="lenet", array=array, batch=64))
        assert service.metrics.value("planner_runs") == 2


class TestDiskTier:
    def test_disk_roundtrip_across_instances(self, tmp_path, request_alexnet):
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as first:
            cold = first.plan(request_alexnet)
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as second:
            warm = second.plan(request_alexnet)
            assert warm.source == "disk" and warm.cache_hit
            assert_same_plan(warm.planned, cold.planned)
            assert second.metrics.value("planner_runs") == 0
            # the disk hit was promoted: the next lookup is a memory hit
            assert second.plan(request_alexnet).source == "memory"

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, request_alexnet):
        key = request_alexnet.fingerprint()
        (tmp_path / f"{key}.json").write_text("{not json")
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as svc:
            response = svc.plan(request_alexnet)
        assert response.source == "planned"
        assert svc.cache.stats.disk_errors == 1

    def test_future_schema_disk_entry_is_a_miss(self, tmp_path, request_alexnet):
        from repro.service.cache import entry_checksum

        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as first:
            first.plan(request_alexnet)
        key = request_alexnet.fingerprint()
        path = tmp_path / f"{key}.json"
        doc = json.loads(path.read_text())
        doc["format_version"] = 99
        doc["checksum"] = entry_checksum(doc)  # a valid future-build write
        path.write_text(json.dumps(doc))
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as second:
            response = second.plan(request_alexnet)
        assert response.source == "planned"
        assert second.cache.stats.disk_errors == 1
        # forward-compat, not corruption: the entry stays where it is for
        # a newer build to read
        assert second.cache.stats.corrupt_total == 0
        assert path.exists()

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path,
                                                      request_alexnet):
        key = request_alexnet.fingerprint()
        path = tmp_path / f"{key}.json"
        path.write_text("{not json")
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as svc:
            response = svc.plan(request_alexnet)
        assert response.source == "planned"
        assert svc.cache.stats.corrupt_total == 1
        # the broken bytes are evidence: renamed aside, never deleted
        quarantined = tmp_path / f"{key}.json.corrupt"
        assert quarantined.exists()
        assert quarantined.read_text() == "{not json"
        # the quarantined entry never poisons the next lookup: the planned
        # response re-persisted a good entry under the original name
        assert json.loads(path.read_text())["fingerprint"] == key
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as again:
            assert again.plan(request_alexnet).source == "disk"

    def test_checksum_mismatch_is_quarantined(self, tmp_path,
                                              request_alexnet):
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as first:
            first.plan(request_alexnet)
        key = request_alexnet.fingerprint()
        path = tmp_path / f"{key}.json"
        doc = json.loads(path.read_text())
        assert "checksum" in doc
        # flip one recorded value without refreshing the checksum: the
        # kind of silent mutation a torn write or bit rot produces
        doc["fingerprint"] = "tampered"
        path.write_text(json.dumps(doc))
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as second:
            response = second.plan(request_alexnet)
        assert response.source == "planned"
        assert second.cache.stats.corrupt_total == 1
        assert (tmp_path / f"{key}.json.corrupt").exists()

    def test_legacy_entry_without_checksum_still_loads(self, tmp_path,
                                                       request_alexnet):
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as first:
            first.plan(request_alexnet)
        key = request_alexnet.fingerprint()
        path = tmp_path / f"{key}.json"
        doc = json.loads(path.read_text())
        del doc["checksum"]  # an entry written before checksums existed
        path.write_text(json.dumps(doc))
        with PlanService(cache=PlanCache(disk_dir=tmp_path)) as second:
            response = second.plan(request_alexnet)
        assert response.source == "disk" and response.cache_hit
        assert second.cache.stats.corrupt_total == 0


class TestLRUEviction:
    def test_capacity_respected(self, array):
        cache = PlanCache(capacity=2)
        with PlanService(cache=cache) as svc:
            requests = [
                PlanRequest(model=m, array=array, batch=32)
                for m in ("lenet", "alexnet", "vgg11")
            ]
            keys = [r.fingerprint() for r in requests]
            for r in requests:
                svc.plan(r)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert keys[0] not in cache            # oldest evicted
        assert keys[1] in cache and keys[2] in cache

    def test_lru_order_follows_access(self, array):
        cache = PlanCache(capacity=2)
        with PlanService(cache=cache) as svc:
            lenet = PlanRequest(model="lenet", array=array, batch=32)
            alexnet = PlanRequest(model="alexnet", array=array, batch=32)
            svc.plan(lenet)
            svc.plan(alexnet)
            svc.plan(lenet)  # refresh lenet: alexnet is now the LRU entry
            svc.plan(PlanRequest(model="vgg11", array=array, batch=32))
            assert lenet.fingerprint() in cache
            assert alexnet.fingerprint() not in cache


class TestSingleFlight:
    def test_n_threads_one_planner_invocation(self, array):
        n = 8
        request = PlanRequest(model="vgg11", array=array, batch=64)
        responses = [None] * n
        barrier = threading.Barrier(n)

        with PlanService(workers=4) as svc:
            # hold the exact job open long enough that every thread joins
            # the flight before it lands (otherwise late threads can find
            # the cache already filled and skew the coalesced counts)
            delay_exact_planning(svc, seconds=0.1)

            def worker(i):
                barrier.wait()
                responses[i] = svc.plan(request)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert svc.metrics.value("planner_runs") == 1
            assert svc.metrics.value("coalesced") == n - 1
            leaders = [r for r in responses if r.source == "planned"]
            followers = [r for r in responses if r.source == "coalesced"]
            assert len(leaders) == 1 and len(followers) == n - 1
            for r in responses:
                assert r.planned is responses[0].planned

    def test_flight_primitive(self):
        flight = SingleFlight()
        f1, leader1 = flight.begin("k")
        f2, leader2 = flight.begin("k")
        assert leader1 and not leader2
        assert f1 is f2
        f1.set_result(42)
        flight.finish("k")
        assert flight.in_flight() == 0
        _, leader3 = flight.begin("k")
        assert leader3


def delay_exact_planning(service, seconds=0.25):
    """Slow the exact planning job so a 0-deadline reliably expires first.

    The planner is fast enough that a pool worker can finish an exact plan
    before the requesting thread gets scheduled to check its deadline; the
    deadline tests need the slow-exact-plan regime, so create it explicitly.
    """
    import time as _time

    original = service._plan_exact

    def slowed(request):
        _time.sleep(seconds)
        return original(request)

    service._plan_exact = slowed


class TestDeadline:
    def test_expired_deadline_returns_greedy_fallback(self, service, array):
        delay_exact_planning(service)
        request = PlanRequest(model="vgg19", array=array, batch=512)
        response = service.plan(request, deadline_s=0.0)
        assert response.degraded
        assert response.source == "degraded"
        # same scheme, searched with the fallback backend
        assert response.planned.scheme == "accpar"
        assert service.fallback_backend == "greedy"
        assert service.metrics.value("degraded") == 1
        # the fallback still covers every weighted layer
        network = build_model("vgg19")
        expected = {w.name for w in network.workloads(512)}
        assigned = set(response.planned.root_level_plan.layer_assignments())
        assert expected <= assigned

    def test_background_refinement_upgrades_cache(self, service, array):
        delay_exact_planning(service)
        request = PlanRequest(model="vgg16", array=array, batch=512)
        degraded = service.plan(request, deadline_s=0.0)
        assert degraded.degraded and degraded.source == "degraded"
        service.drain()
        refined = service.plan(request)
        assert refined.cache_hit
        assert refined.planned.scheme == "accpar"
        assert service.metrics.value("planner_runs") == 1

    def test_generous_deadline_serves_exact_plan(self, service, request_alexnet):
        response = service.plan(request_alexnet, deadline_s=300.0)
        assert not response.degraded
        assert response.planned.scheme == "accpar"


class TestSchemeResolution:
    def test_ablation_knobs_reach_accpar(self, array):
        scheme = build_scheme(
            PlanRequest(model="alexnet", array=array, space=("I", "II"),
                        ratio_mode="equal")
        )
        assert [t.value for t in scheme.space] == ["I", "II"]
        assert scheme.ratio_mode == "equal"

    def test_baselines_reject_knobs(self, array):
        with pytest.raises(ValueError, match="knobs"):
            build_scheme(
                PlanRequest(model="alexnet", array=array, scheme="hypar",
                            space=("I",))
            )

    def test_greedy_scheme_served_directly(self, service, array):
        response = service.plan(
            PlanRequest(model="lenet", array=array, batch=32, scheme="greedy")
        )
        assert response.planned.scheme == "greedy"


def calibrated_profile(rate=90e12):
    from repro.hardware.profile import CalibratedProfile, SpecProfile

    return CalibratedProfile(name="svc-test", specs=(
        SpecProfile(spec="tpu-v2", compute_rates=(("default", rate),)),
        SpecProfile(spec="tpu-v3", compute_rates=(("default", 2 * rate),)),
    ))


class TestDefaultProfile:
    """A service-wide default profile re-prices requests that don't pin one."""

    def test_default_profile_changes_fingerprint(self, array):
        plain_request = PlanRequest(model="lenet", array=array, batch=32)
        with PlanService(default_profile=calibrated_profile()) as svc:
            profiled = svc.plan(plain_request)
        with PlanService() as svc:
            analytic = svc.plan(plain_request)
        assert profiled.fingerprint != analytic.fingerprint

    def test_explicit_profile_wins_over_default(self, array):
        request = PlanRequest(model="lenet", array=array, batch=32,
                              profile=calibrated_profile(80e12))
        with PlanService(default_profile=calibrated_profile(90e12)) as svc:
            pinned = svc.plan(request)
        with PlanService() as svc:
            direct = svc.plan(request)
        assert pinned.fingerprint == direct.fingerprint

    def test_analytic_default_normalizes_to_none(self):
        from repro.hardware.profile import ANALYTIC

        with PlanService(default_profile=ANALYTIC) as svc:
            assert svc.default_profile is None

    def test_inline_profile_document_over_the_wire(self, array):
        from repro.hardware.profile import profile_to_doc

        doc = json.dumps({
            "model": "lenet", "array": "tpu-v2:2,tpu-v3:2", "batch": 32,
            "profile": profile_to_doc(calibrated_profile()),
        })
        plain = json.dumps({"model": "lenet", "array": "tpu-v2:2,tpu-v3:2",
                            "batch": 32})
        with PlanService() as svc:
            profiled = handle_line(svc, doc)
            analytic = handle_line(svc, plain)
        assert profiled["ok"] and analytic["ok"]
        assert profiled["fingerprint"] != analytic["fingerprint"]

    def test_malformed_wire_profile_is_a_request_error(self):
        doc = json.dumps({"model": "lenet", "array": "tpu-v3:2",
                          "profile": "some-file.json"})
        with PlanService() as svc:
            result = handle_line(svc, doc)
        assert not result["ok"]
        assert "profile" in result["error"]

    def test_mismatched_profile_is_a_request_error(self, array):
        from repro.hardware.profile import CalibratedProfile, SpecProfile

        v3only = CalibratedProfile(name="v3", specs=(
            SpecProfile(spec="tpu-v3", compute_rates=(("default", 2e14),)),
        ))
        with PlanService() as svc:
            with pytest.raises(ValueError, match="no calibration"):
                svc.plan(PlanRequest(model="lenet", array=array, batch=32,
                                     profile=v3only))


class TestErrors:
    def test_unknown_model_raises_before_flight(self, service, array):
        with pytest.raises(KeyError):
            service.plan(PlanRequest(model="nonexistent", array=array))
        assert service.metrics.value("planner_runs") == 0

    def test_closed_service_rejects_requests(self, request_alexnet):
        svc = PlanService()
        svc.close()
        with pytest.raises(RuntimeError):
            svc.plan(request_alexnet)


class TestWarmAndServeLoop:
    def test_warm_populates_both_tiers(self, tmp_path, array):
        cache = PlanCache(disk_dir=tmp_path)
        with PlanService(cache=cache) as svc:
            requests = [
                PlanRequest(model=m, array=array, batch=64)
                for m in ("lenet", "alexnet")
            ]
            responses = warm_cache(svc, requests)
        assert [r.source for r in responses] == ["planned", "planned"]
        assert len(cache) == 2
        assert len(cache.disk_keys()) == 2

    def test_serve_loop_end_to_end(self, service):
        import io

        lines = [
            json.dumps({"model": "lenet", "array": "tpu-v2:2,tpu-v3:2",
                        "batch": 32, "id": "a"}),
            json.dumps({"model": "lenet", "array": "tpu-v2:2,tpu-v3:2",
                        "batch": 32, "id": "b"}),
            json.dumps({"op": "stats"}),
            "this is not json",
            json.dumps({"op": "shutdown"}),
            json.dumps({"model": "lenet"}),  # never reached
        ]
        out = io.StringIO()
        served = serve_loop(service, lines, out)
        results = [json.loads(line) for line in out.getvalue().splitlines()]
        # the shutdown ack is itself written (5 lines), then the loop stops
        assert served == 5
        assert results[0]["ok"] and results[0]["id"] == "a"
        assert not results[0]["cache_hit"]
        assert results[1]["cache_hit"] and results[1]["source"] == "memory"
        assert results[2]["stats"]["cache"]["hits_memory"] == 1
        assert not results[3]["ok"] and "JSON" in results[3]["error"]
        assert results[4]["ok"] and results[4]["op"] == "shutdown"
        assert results[4]["drained_jobs"] == 0

    def test_shutdown_drains_inflight_jobs_to_disk(self, tmp_path, array):
        """A shutdown racing an active plan still lands the plan on disk.

        The degraded response leaves the exact refinement running in the
        background; the shutdown ack must not be produced until that job
        has finished and reached the disk cache tier.
        """
        import io

        cache = PlanCache(disk_dir=tmp_path)
        with PlanService(cache=cache, workers=2) as svc:
            delay_exact_planning(svc, seconds=0.6)
            request = PlanRequest(model="vgg16", array=array, batch=512)
            degraded = svc.plan(request, deadline_s=0.0)
            assert degraded.degraded  # exact refinement still in flight
            out = io.StringIO()
            served = serve_loop(svc, [json.dumps({"op": "shutdown"})], out)
            assert served == 1
            ack = json.loads(out.getvalue())
            assert ack["ok"] and ack["op"] == "shutdown"
            assert ack["drained_jobs"] >= 1
            # the exact plan is durable before the ack was written
            assert request.fingerprint() in cache.disk_keys()

    def test_oversized_line_rejected_before_parsing(self, service):
        from repro.service.server import MAX_REQUEST_BYTES

        line = '{"model": "' + "x" * MAX_REQUEST_BYTES + '"}'
        result = handle_line(service, line)
        assert not result["ok"] and result["error"] == "request too large"
        assert result["limit_bytes"] == MAX_REQUEST_BYTES
        assert result["got_bytes"] == len(line)
        # the loop keeps serving after the rejection
        assert service.metrics.value("errors") == 0

    def test_request_from_doc_rejects_non_plan_ops(self):
        from repro.service.server import request_from_doc

        with pytest.raises(ValueError, match="unknown op 'stats'"):
            request_from_doc({"op": "stats", "model": "lenet"})
        with pytest.raises(ValueError, match="known ops"):
            request_from_doc({"op": "shutdwon", "model": "lenet"})  # typo
        assert request_from_doc({"op": "plan", "model": "lenet"}).model == "lenet"

    def test_handle_line_bad_request_is_reported(self, service):
        result = handle_line(service, json.dumps({"op": "plan"}))
        assert not result["ok"] and "model" in result["error"]
        result = handle_line(service, json.dumps({"model": "nope", "id": 7}))
        assert not result["ok"] and result["id"] == 7
        result = handle_line(service, json.dumps({"op": "???"}))
        assert not result["ok"] and "unknown op" in result["error"]

    def test_deadline_ms_in_request_doc(self, service):
        doc = {"model": "vgg13", "array": "hetero", "batch": 512,
               "deadline_ms": 0}
        result = handle_line(service, json.dumps(doc))
        assert result["ok"] and result["degraded"]
        assert result["source"] == "degraded"


class TestMetricsRegistry:
    def test_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for ms in range(1, 101):
            hist.observe(ms / 1e3)
        assert hist.percentile(50) == pytest.approx(0.050)
        assert hist.percentile(95) == pytest.approx(0.095)
        assert hist.percentile(99) == pytest.approx(0.099)
        assert hist.count == 100

    def test_render_contains_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.histogram("lat").observe(0.010)
        text = registry.render()
        assert "requests" in text and "3" in text
        assert "p95" in text

    def test_empty_registry_renders(self):
        assert "no metrics" in MetricsRegistry().render()

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestPerRequestBackend:
    def test_request_backend_reaches_planner(self, service, array):
        from repro.plan import plan_diff

        exact = service.plan(
            PlanRequest(model="alexnet", array=array, batch=64)
        )
        greedy = service.plan(
            PlanRequest(model="alexnet", array=array, batch=64,
                        backend="greedy")
        )
        # distinct cache entries, and (on this heterogeneous array) the
        # greedy backend makes genuinely different decisions
        assert exact.fingerprint != greedy.fingerprint
        assert plan_diff(exact.planned.plan, greedy.planned.plan)

    def test_backend_is_part_of_the_cache_key(self, service, array):
        first = service.plan(
            PlanRequest(model="lenet", array=array, batch=32, backend="dp")
        )
        second = service.plan(
            PlanRequest(model="lenet", array=array, batch=32,
                        backend="greedy")
        )
        assert first.fingerprint != second.fingerprint
        assert not second.cache_hit

    def test_unknown_backend_fails_fast(self, service, array):
        with pytest.raises(KeyError, match="unknown search backend"):
            service.plan(
                PlanRequest(model="lenet", array=array, batch=32,
                            backend="quantum")
            )

    def test_unknown_fallback_backend_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown search backend"):
            PlanService(fallback_backend="quantum")

    def test_backend_alias_accepted(self, service, array):
        response = service.plan(
            PlanRequest(model="lenet", array=array, batch=32,
                        backend="exact")
        )
        assert response.planned.scheme == "accpar"

    def test_baseline_scheme_with_backend(self, service, array):
        response = service.plan(
            PlanRequest(model="lenet", array=array, batch=32, scheme="hypar",
                        backend="greedy")
        )
        assert response.planned.scheme == "hypar"

    def test_server_doc_carries_backend(self, array):
        from repro.service.server import request_from_doc

        request = request_from_doc(
            {"model": "lenet", "batch": 32, "backend": "greedy"}
        )
        assert request.backend == "greedy"
