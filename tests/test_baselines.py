"""Unit tests for the DP / OWT / HyPar baseline schemes."""

import pytest

from repro.baselines import (
    DataParallelScheme,
    HyParScheme,
    OwtScheme,
    SCHEME_ORDER,
    get_scheme,
)
from repro.core.planner import AccParScheme
from repro.core.stages import iter_sharded_workloads, to_sharded_stages
from repro.core.types import HYPAR_TYPES, PartitionType
from repro.hardware import TPU_V2, TPU_V3, make_group
from repro.models import build_model

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


@pytest.fixture
def parties():
    return make_group(TPU_V3, 2), make_group(TPU_V2, 2)


@pytest.fixture
def alexnet_stages():
    return to_sharded_stages(build_model("alexnet").stages(batch=64))


@pytest.fixture
def resnet_stages():
    return to_sharded_stages(build_model("resnet18").stages(batch=64))


class TestRegistry:
    def test_scheme_order(self):
        assert SCHEME_ORDER == ["dp", "owt", "hypar", "accpar"]

    @pytest.mark.parametrize("name", SCHEME_ORDER)
    def test_get_scheme(self, name):
        assert get_scheme(name).name == name

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            get_scheme("zero")


class TestDataParallel:
    def test_all_type_i_equal_ratio(self, parties, alexnet_stages):
        plan = DataParallelScheme().level_plan(alexnet_stages, *parties, 2)
        for lp in plan.layer_assignments().values():
            assert lp.ptype is I
            assert lp.ratio == 0.5

    def test_works_on_multipath(self, parties, resnet_stages):
        plan = DataParallelScheme().level_plan(resnet_stages, *parties, 2)
        assert len(plan.layer_assignments()) == 21


class TestOwt:
    def test_conv_data_fc_model(self, parties, alexnet_stages):
        plan = OwtScheme().level_plan(alexnet_stages, *parties, 2)
        by_layer = plan.layer_assignments()
        for sw in iter_sharded_workloads(alexnet_stages):
            expected = I if sw.base.is_conv else II
            assert by_layer[sw.name].ptype is expected

    def test_equal_ratios(self, parties, alexnet_stages):
        plan = OwtScheme().level_plan(alexnet_stages, *parties, 2)
        assert all(lp.ratio == 0.5 for lp in plan.layer_assignments().values())


class TestHyPar:
    def test_space_restricted_to_two_types(self, parties, alexnet_stages):
        plan = HyParScheme().level_plan(alexnet_stages, *parties, 2)
        for lp in plan.layer_assignments().values():
            assert lp.ptype in HYPAR_TYPES

    def test_equal_ratios(self, parties, alexnet_stages):
        plan = HyParScheme().level_plan(alexnet_stages, *parties, 2)
        assert all(lp.ratio == 0.5 for lp in plan.layer_assignments().values())

    def test_linearizes_multipath(self, parties, resnet_stages):
        plan = HyParScheme().level_plan(resnet_stages, *parties, 2)
        # all 21 weighted layers get assignments, no join pseudo-entries
        assert len(plan.layer_assignments()) == 21
        assert len(plan.assignments) == 21

    def test_prefers_model_parallel_for_fc_heavy_nets(self, parties, alexnet_stages):
        """AlexNet's FC weights dwarf its activations; a comm-volume
        minimizer must not keep them data-parallel."""
        plan = HyParScheme().level_plan(alexnet_stages, *parties, 2)
        by_layer = plan.layer_assignments()
        assert by_layer["fc1"].ptype is II
        assert by_layer["fc2"].ptype is II

    def test_comm_volume_objective_not_time(self, parties, alexnet_stages):
        """HyPar's cost is bytes, so it is bandwidth-independent."""
        slow = make_group(TPU_V2, 1)
        plan_fast = HyParScheme().level_plan(alexnet_stages, *parties, 2)
        plan_slow = HyParScheme().level_plan(alexnet_stages, slow, slow, 2)
        types_fast = {n: lp.ptype for n, lp in plan_fast.layer_assignments().items()}
        types_slow = {n: lp.ptype for n, lp in plan_slow.layer_assignments().items()}
        assert types_fast == types_slow


class TestSchemeOptimality:
    def test_accpar_cost_beats_fixed_schemes(self, parties, alexnet_stages):
        """On its own objective, the full search dominates the pinned ones."""
        accpar = AccParScheme(ratio_mode="equal", name="accpar-eq")
        best = accpar.level_plan(alexnet_stages, *parties, 2)
        for scheme in (DataParallelScheme(), OwtScheme()):
            fixed = scheme.level_plan(alexnet_stages, *parties, 2)
            assert best.cost <= fixed.cost + 1e-12
