"""Unit tests for sharded stage conversion and level sharding."""

import pytest

from repro.core.stages import (
    ShardedLayerStage,
    ShardedParallelStage,
    first_workload,
    flatten_to_chain,
    iter_sharded_workloads,
    last_workload,
    shard_stages,
    to_sharded_stages,
)
from repro.core.types import PartitionType
from repro.plan.ir import LayerPartition
from repro.models import build_model

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


@pytest.fixture
def resnet_stages():
    return to_sharded_stages(build_model("resnet18").stages(batch=32))


@pytest.fixture
def chain_stages():
    return to_sharded_stages(build_model("alexnet").stages(batch=32))


class TestConversion:
    def test_unsharded_fractions_are_one(self, chain_stages):
        for sw in iter_sharded_workloads(chain_stages):
            assert sw.batch_frac == 1.0
            assert sw.din_frac == 1.0
            assert sw.dout_frac == 1.0

    def test_structure_preserved(self, resnet_stages):
        parallels = [s for s in resnet_stages if isinstance(s, ShardedParallelStage)]
        assert len(parallels) == 8

    def test_workload_order_matches_network(self, chain_stages):
        names = [sw.name for sw in iter_sharded_workloads(chain_stages)]
        expected = [w.name for w in build_model("alexnet").workloads(32)]
        assert names == expected


class TestFirstLastWorkload:
    def test_chain(self, chain_stages):
        assert first_workload(chain_stages).name == "cv1"
        assert last_workload(chain_stages).name == "fc3"

    def test_within_parallel_stage(self, resnet_stages):
        parallel = next(
            s for s in resnet_stages if isinstance(s, ShardedParallelStage)
        )
        fw = first_workload([parallel])
        assert fw.name.endswith("_cv1")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            first_workload([])
        with pytest.raises(ValueError):
            last_workload([])


class TestShardStages:
    def test_left_right_partition_dimension(self, chain_stages):
        assignments = {
            sw.name: LayerPartition(I, 0.25)
            for sw in iter_sharded_workloads(chain_stages)
        }
        left = shard_stages(chain_stages, assignments, "left")
        right = shard_stages(chain_stages, assignments, "right")
        for l, r, base in zip(
            iter_sharded_workloads(left),
            iter_sharded_workloads(right),
            iter_sharded_workloads(chain_stages),
        ):
            assert l.batch == pytest.approx(0.25 * base.batch)
            assert r.batch == pytest.approx(0.75 * base.batch)

    def test_type_specific_dimension(self, chain_stages):
        assignments = {
            sw.name: LayerPartition(II, 0.5)
            for sw in iter_sharded_workloads(chain_stages)
        }
        left = shard_stages(chain_stages, assignments, "left")
        for l, base in zip(iter_sharded_workloads(left),
                           iter_sharded_workloads(chain_stages)):
            assert l.d_in == pytest.approx(0.5 * base.d_in)
            assert l.batch == base.batch

    def test_missing_assignment_raises(self, chain_stages):
        with pytest.raises(KeyError):
            shard_stages(chain_stages, {}, "left")

    def test_invalid_side_raises(self, chain_stages):
        with pytest.raises(ValueError):
            shard_stages(chain_stages, {}, "middle")

    def test_parallel_structure_sharded_recursively(self, resnet_stages):
        assignments = {
            sw.name: LayerPartition(I, 0.5)
            for sw in iter_sharded_workloads(resnet_stages)
        }
        left = shard_stages(resnet_stages, assignments, "left")
        parallels = [s for s in left if isinstance(s, ShardedParallelStage)]
        assert len(parallels) == 8
        for sw in iter_sharded_workloads(left):
            assert sw.batch_frac == pytest.approx(0.5)


class TestFlattenToChain:
    def test_resnet_flattens_to_all_layers(self, resnet_stages):
        chain = flatten_to_chain(resnet_stages)
        assert all(isinstance(s, ShardedLayerStage) for s in chain)
        assert len(chain) == 21

    def test_chain_is_identity_for_linear(self, chain_stages):
        chain = flatten_to_chain(chain_stages)
        assert [s.name for s in chain] == [s.name for s in chain_stages]

    def test_parallel_stage_needs_two_paths(self):
        with pytest.raises(ValueError):
            ShardedParallelStage(paths=((),))
