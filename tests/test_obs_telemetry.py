"""Durable telemetry store: writer, rotation, quarantine, producers."""

import json
import os

import pytest

from repro.hardware.presets import heterogeneous_array
from repro.models.registry import build_model
from repro.core.planner import AccParPlanner
from repro.obs import telemetry as telemetry_store
from repro.obs.telemetry import (
    CALIBRATION_SCHEMA,
    ReadReport,
    TELEMETRY_ENV,
    TelemetryError,
    TelemetryWriter,
    calibration_export,
    iter_events,
    read_events,
    scrub,
    segment_paths,
    summarize,
)
from repro.sim.executor import evaluate


@pytest.fixture(autouse=True)
def _no_process_writer():
    """Each test starts and ends without a process-wide writer."""
    telemetry_store.uninstall()
    yield
    telemetry_store.uninstall()


class TestWriter:
    def test_round_trip(self, tmp_path):
        with TelemetryWriter(tmp_path) as writer:
            writer.record({"type": "request", "outcome": "ok"})
            writer.record({"type": "search", "elapsed_ms": 12.5})
        events = read_events(tmp_path)
        assert [e["type"] for e in events] == ["request", "search"]
        # every event is stamped
        assert all("ts" in e for e in events)

    def test_type_filter(self, tmp_path):
        with TelemetryWriter(tmp_path) as writer:
            writer.record({"type": "request"})
            writer.record({"type": "chaos"})
        assert [e["type"] for e in read_events(tmp_path, types=("chaos",))] \
            == ["chaos"]

    def test_rotation_by_size(self, tmp_path):
        with TelemetryWriter(tmp_path, max_segment_bytes=120) as writer:
            for index in range(10):
                writer.record({"type": "request", "i": index})
        assert len(segment_paths(tmp_path)) > 1
        assert writer.segments_rotated > 1
        # nothing lost across the rotation boundary
        assert [e["i"] for e in read_events(tmp_path)] == list(range(10))

    def test_retention_deletes_oldest(self, tmp_path):
        with TelemetryWriter(tmp_path, max_segment_bytes=80,
                             max_segments=2) as writer:
            for index in range(20):
                writer.record({"type": "request", "i": index})
        segments = segment_paths(tmp_path)
        assert len(segments) <= 2
        assert writer.segments_deleted > 0
        # survivors are the newest events
        survivors = [e["i"] for e in read_events(tmp_path)]
        assert survivors == sorted(survivors)
        assert survivors[-1] == 19

    def test_restart_opens_new_segment(self, tmp_path):
        with TelemetryWriter(tmp_path) as writer:
            writer.record({"type": "request", "run": 1})
            first = writer.segment_path
        # simulate a crash mid-line: torn tail on the first segment
        with open(first, "ab") as handle:
            handle.write(b'{"type": "requ')
        with TelemetryWriter(tmp_path) as writer:
            writer.record({"type": "request", "run": 2})
            second = writer.segment_path
        assert first != second
        report = ReadReport()
        events = list(iter_events(tmp_path, report=report))
        assert [e["run"] for e in events] == [1, 2]
        assert report.corrupt_lines == 1

    def test_disabled_writer_is_a_no_op(self, tmp_path):
        writer = TelemetryWriter(tmp_path, enabled=False)
        writer.record({"type": "request"})
        assert writer.events_written == 0
        assert segment_paths(tmp_path) == []

    def test_bad_configuration(self, tmp_path):
        with pytest.raises(TelemetryError):
            TelemetryWriter(tmp_path, max_segment_bytes=0)
        with pytest.raises(TelemetryError):
            TelemetryWriter(tmp_path, max_segments=0)

    def test_snapshot_counters(self, tmp_path):
        with TelemetryWriter(tmp_path) as writer:
            writer.record({"type": "request"})
            snap = writer.snapshot()
        assert snap["events_written"] == 1
        assert snap["events_dropped"] == 0
        assert snap["bytes_written"] > 0
        assert snap["segment_seq"] == 1
        assert snap["enabled"] is True


class TestQuarantine:
    def _store_with_corruption(self, tmp_path):
        with TelemetryWriter(tmp_path) as writer:
            writer.record({"type": "request", "i": 0})
            writer.record({"type": "request", "i": 1})
            path = writer.segment_path
        lines = path.read_text().splitlines()
        lines.insert(1, "{not json at all")
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_iter_skips_and_counts(self, tmp_path):
        self._store_with_corruption(tmp_path)
        report = ReadReport()
        events = list(iter_events(tmp_path, report=report))
        assert [e["i"] for e in events] == [0, 1]
        assert report.corrupt_lines == 1

    def test_scrub_quarantines_never_deletes(self, tmp_path):
        path = self._store_with_corruption(tmp_path)
        report = scrub(tmp_path)
        assert report.corrupt_lines == 1
        sidecar = path.with_name(path.name + ".corrupt")
        assert sidecar.exists()
        assert "not json" in sidecar.read_text()
        # the segment itself is clean now
        clean = ReadReport()
        list(iter_events(tmp_path, report=clean))
        assert clean.corrupt_lines == 0
        assert clean.events == 2


class TestProcessWideInstall:
    def test_install_and_active(self, tmp_path):
        writer = telemetry_store.install(tmp_path)
        assert telemetry_store.active() is writer
        telemetry_store.uninstall()
        assert telemetry_store.active() is None

    def test_env_var_installs_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path))
        telemetry_store.uninstall()
        writer = telemetry_store.active()
        assert writer is not None
        assert str(writer.directory) == str(tmp_path)
        telemetry_store.uninstall()

    def test_no_env_means_no_writer(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert telemetry_store.active() is None


class TestProducers:
    def _plan(self):
        planner = AccParPlanner(heterogeneous_array())
        return planner.plan(build_model("lenet"), batch=32)

    def test_planner_records_search_event(self, tmp_path):
        telemetry_store.install(tmp_path)
        self._plan()
        events = read_events(tmp_path, types=("search",))
        assert len(events) == 1
        event = events[0]
        assert event["model"] == "lenet"
        assert event["scheme"] == "accpar"
        assert event["backend"] == "dp"
        assert event["elapsed_ms"] >= 0
        # the counter delta carries real search work
        assert sum(event["counters"].values()) > 0

    def test_sim_records_op_timings_per_spec(self, tmp_path):
        telemetry_store.install(tmp_path)
        evaluate(self._plan())
        events = read_events(tmp_path, types=("op_timing",))
        assert events, "sim run must produce op_timing events"
        hardware = {e["hardware"] for e in events}
        # the hetero array has both specs at its leaves
        assert {"tpu-v2", "tpu-v3"} <= hardware
        compute = [e for e in events if e["kind"] != "net"]
        network = [e for e in events if e["kind"] == "net"]
        assert compute, "sim run must time compute ops"
        for event in compute:
            assert event["phase"] in ("forward", "backward", "gradient")
            assert event["kind"] in ("conv", "fc")
            assert event["time_s"] >= 0
            assert event["flops"] >= 0
        # per-level exchanges land as net/comm series with a transfer count
        assert network, "sim run must time level exchanges"
        for event in network:
            assert event["phase"] == "comm"
            assert event["transfers"] >= 1
            assert event["flops"] == 0.0
            assert event["time_s"] >= 0

    def test_calibration_export_schema(self, tmp_path):
        telemetry_store.install(tmp_path)
        evaluate(self._plan())
        document = calibration_export(tmp_path)
        assert document["schema"] == CALIBRATION_SCHEMA
        assert {"tpu-v2", "tpu-v3"} <= set(document["hardware"])
        for spec, series in document["hardware"].items():
            assert series, spec
            for key, stats in series.items():
                kind, _, phase = key.partition("/")
                assert kind in ("conv", "fc", "net")
                if kind == "net":
                    assert phase == "comm"
                else:
                    assert phase in ("forward", "backward", "gradient")
                assert stats["count"] == len(stats["samples"]) or \
                    stats["count"] > len(stats["samples"])
                assert stats["count"] >= 1
                assert stats["min_s"] <= stats["max_s"]
                for sample in stats["samples"]:
                    assert sample["seconds"] >= 0

    def test_disabled_hot_path_builds_nothing(self, tmp_path, monkeypatch):
        """With telemetry disabled no event dict is ever built: producers
        must gate before allocation, so a poisoned record() never fires."""
        writer = TelemetryWriter(tmp_path, enabled=False)
        telemetry_store.install(writer)

        calls = {"record": 0}

        def poisoned(self, event):  # pragma: no cover - must not run
            calls["record"] += 1
            raise AssertionError("record() called on the disabled path")

        monkeypatch.setattr(TelemetryWriter, "record", poisoned)
        planned = self._plan()
        evaluate(planned)
        assert calls["record"] == 0
        assert writer.events_written == 0
        assert segment_paths(tmp_path) == []

    def test_service_records_request_events(self, tmp_path):
        from repro.service import PlanCache, PlanRequest, PlanService

        writer = TelemetryWriter(tmp_path)
        service = PlanService(cache=PlanCache(capacity=4), telemetry=writer,
                              telemetry_labels={"shard": "t0"})
        try:
            request = PlanRequest(model="lenet",
                                  array=heterogeneous_array(), batch=32)
            service.plan(request)
            service.plan(request)  # cache hit
        finally:
            service.close()
        writer.close()
        events = read_events(tmp_path, types=("request",))
        assert len(events) == 2
        for event in events:
            assert event["component"] == "service"
            assert event["model"] == "lenet"
            assert event["outcome"] == "ok"
            assert event["latency_ms"] >= 0
            assert event["shard"] == "t0"
        sources = [e["source"] for e in events]
        assert "memory" in sources[1]


class TestSummarize:
    def test_chaos_attribution_by_trace_id(self, tmp_path):
        with TelemetryWriter(tmp_path) as writer:
            writer.record({"type": "chaos", "faults": ["delay"],
                           "trace_id": "t-1"})
            writer.record({"type": "request", "outcome": "ok",
                           "latency_ms": 50.0, "trace_id": "t-1",
                           "shard": "0"})
            writer.record({"type": "request", "outcome": "ok",
                           "latency_ms": 5.0, "trace_id": "t-2",
                           "shard": "1", "deadline_ms": 100.0,
                           "deadline_met": True})
            writer.record({"type": "request", "outcome": "error",
                           "latency_ms": 1.0, "trace_id": "t-3",
                           "failover_from": "0"})
        summary = summarize(tmp_path)
        assert summary["events"] == 4
        assert summary["by_type"] == {"chaos": 1, "request": 3}
        assert summary["chaos_faults"] == {"delay": 1}
        requests = summary["requests"]
        assert requests["outcomes"] == {"error": 1, "ok": 2}
        assert requests["by_shard"] == {"0": 1, "1": 1}
        assert requests["failovers"] == 1
        assert requests["deadline_total"] == 1
        assert requests["deadline_attainment"] == 1.0
        # the chaos-touched request is split out of the organic percentiles
        assert requests["chaos_injected"]["count"] == 1
        assert requests["chaos_injected"]["p50_ms"] == 50.0
        assert requests["organic"]["count"] == 2
        assert requests["organic"]["p50_ms"] in (1.0, 5.0)

    def test_empty_store(self, tmp_path):
        summary = summarize(tmp_path)
        assert summary["events"] == 0
        assert summary["requests"]["organic"]["count"] == 0


class TestFleetDurability:
    def test_thread_fleet_writes_durable_segments(self, tmp_path):
        from repro.fleet import FleetClient, FleetFrontend, ShardSupervisor

        store = tmp_path / "telemetry"
        supervisor = ShardSupervisor(
            2, cache_dir=None, mode="thread",
            chaos="seed=42,delay=1.0,delay_ms=1",
            telemetry_dir=str(store),
            slo="latency_ms=100,objective=0.9")
        with supervisor:
            frontend = FleetFrontend(
                supervisor.handles, port=0,
                slo="latency_ms=100,objective=0.9",
                telemetry=TelemetryWriter(store / "frontend"))
            with frontend:
                with FleetClient(frontend.host, frontend.port) as client:
                    reply = client.plan(
                        {"model": "lenet", "array": "tpu-v3:2", "batch": 32},
                        deadline_ms=30000)
                    assert reply.get("ok")
                    stats = client.stats()
            frontend.telemetry.close()
        slo = stats["frontend"]["slo"]
        assert slo["good_total"] + slo["bad_total"] == 1
        # frontend and the serving shard both wrote durable stores
        frontend_summary = summarize(store / "frontend")
        assert frontend_summary["requests"]["outcomes"].get("ok") == 1
        shard_dirs = [p for p in store.iterdir() if p.name.startswith("shard-")]
        assert len(shard_dirs) == 2
        total_events = sum(summarize(p)["events"] for p in shard_dirs)
        assert total_events >= 1
        # the chaos controller delayed every frame; the fault is on disk
        faults = {}
        for p in shard_dirs:
            for name, count in summarize(p)["chaos_faults"].items():
                faults[name] = faults.get(name, 0) + count
        assert faults.get("delay", 0) >= 1
