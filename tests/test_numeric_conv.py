"""Numeric validation of the CONV extension (Section 3.3).

The partitioned CNN executor must match single-device CNN training exactly
for every partition type, and its communication counts must realize the
spatially-scaled Table 4 / Table 5 quantities of Section 4.3.
"""

import itertools

import numpy as np
import pytest

from repro.core.types import PartitionType
from repro.numeric import (
    CnnSpec,
    ConvLayerPlan,
    ConvLayerSpec,
    ConvTwoDeviceExecutor,
    col2im,
    conv_forward,
    conv_input_grad,
    conv_reference_step,
    conv_weight_grad,
    im2col,
    validate_conv_partitioned_training,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def small_cnn():
    return CnnSpec(
        in_channels=4,
        height=8,
        width=8,
        layers=[
            ConvLayerSpec(4, 6, kernel=3, stride=1, padding=1),
            ConvLayerSpec(6, 4, kernel=3, stride=2, padding=1),
        ],
    )


class TestCnnSpec:
    def test_geometries(self):
        geoms = small_cnn().geometries()
        assert geoms == [(4, 8, 8), (6, 8, 8), (4, 4, 4)]

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channels"):
            CnnSpec(4, 8, 8, [ConvLayerSpec(3, 6)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            CnnSpec(4, 8, 8, [])

    def test_collapsing_geometry_raises(self):
        with pytest.raises(ValueError):
            CnnSpec(4, 2, 2, [ConvLayerSpec(4, 4, kernel=5)])

    def test_bad_layer_spec(self):
        with pytest.raises(ValueError):
            ConvLayerSpec(1, 6)
        with pytest.raises(ValueError):
            ConvLayerSpec(4, 6, stride=0)


class TestConvPrimitives:
    def test_im2col_col2im_adjoint(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint pair."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6))
        cols = im2col(x, kernel=3, stride=1, padding=1)
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 1, 1)))
        assert lhs == pytest.approx(rhs)

    def test_forward_matches_direct_convolution(self):
        """Cross-check im2col against an explicit loop convolution."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((2, 3, 3, 3))
        out = conv_forward(x, w, stride=1, padding=0)
        assert out.shape == (1, 3, 3, 3)
        # direct computation of one output element
        expected = sum(
            x[0, ci, 1 + di, 2 + dj] * w[ci, 1, di, dj]
            for ci in range(2)
            for di in range(3)
            for dj in range(3)
        )
        assert out[0, 1, 1, 2] == pytest.approx(expected)

    def test_input_grad_finite_difference(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((2, 2, 3, 3))
        dz = rng.standard_normal((1, 2, 2, 2))

        def loss(x_):
            return float(np.sum(conv_forward(x_, w, 1, 0) * dz))

        grad = conv_input_grad(dz, w, x.shape, 1, 0)
        eps = 1e-6
        for idx in [(0, 0, 1, 1), (0, 1, 3, 2), (0, 0, 0, 0)]:
            bumped = x.copy()
            bumped[idx] += eps
            fd = (loss(bumped) - loss(x)) / eps
            assert grad[idx] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_weight_grad_finite_difference(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 2, 4, 4))
        w = rng.standard_normal((2, 2, 3, 3))
        dz = rng.standard_normal((2, 2, 2, 2))

        def loss(w_):
            return float(np.sum(conv_forward(x, w_, 1, 0) * dz))

        grad = conv_weight_grad(x, dz, w.shape, 1, 0)
        eps = 1e-6
        for idx in [(0, 0, 1, 1), (1, 1, 2, 0), (0, 1, 0, 2)]:
            bumped = w.copy()
            bumped[idx] += eps
            fd = (loss(bumped) - loss(w)) / eps
            assert grad[idx] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_strided_forward_geometry(self):
        x = np.zeros((1, 2, 8, 8))
        w = np.zeros((2, 3, 3, 3))
        assert conv_forward(x, w, stride=2, padding=1).shape == (1, 3, 4, 4)


class TestPartitionedConv:
    @pytest.mark.parametrize(
        "t0,t1", list(itertools.product((I, II, III), repeat=2))
    )
    def test_all_type_pairs_exact(self, t0, t1):
        spec = small_cnn()
        plan = [ConvLayerPlan(t0, 0.5), ConvLayerPlan(t1, 0.5)]
        report = validate_conv_partitioned_training(spec, plan, batch=4)
        assert report.max_gradient_error < 1e-9
        assert report.loss_error < 1e-9
        assert report.intra_matches_table4
        assert report.inter_matches_table5

    @pytest.mark.parametrize("ratio", [0.25, 0.5, 0.75])
    def test_asymmetric_ratios(self, ratio):
        spec = small_cnn()
        plan = [ConvLayerPlan(II, ratio), ConvLayerPlan(III, ratio)]
        report = validate_conv_partitioned_training(spec, plan, batch=4)
        assert report.numerically_exact

    def test_three_layer_mixed(self):
        spec = CnnSpec(
            in_channels=4, height=8, width=8,
            layers=[
                ConvLayerSpec(4, 8, kernel=3, padding=1),
                ConvLayerSpec(8, 8, kernel=3, padding=1),
                ConvLayerSpec(8, 4, kernel=1),
            ],
        )
        plan = [ConvLayerPlan(I, 0.5), ConvLayerPlan(II, 0.5),
                ConvLayerPlan(III, 0.5)]
        report = validate_conv_partitioned_training(spec, plan, batch=4)
        assert report.numerically_exact
        assert report.intra_matches_table4
        assert report.inter_matches_table5

    def test_plan_length_mismatch_raises(self):
        spec = small_cnn()
        with pytest.raises(ValueError):
            ConvTwoDeviceExecutor(spec, spec.init_weights(), [ConvLayerPlan(I, 0.5)],
                                  batch=4)

    def test_spatial_scaling_of_comm(self):
        """Halving the spatial size quarters the boundary traffic."""
        def traffic(h):
            spec = CnnSpec(4, h, h, [ConvLayerSpec(4, 4, kernel=3, padding=1),
                                     ConvLayerSpec(4, 4, kernel=3, padding=1)])
            plan = [ConvLayerPlan(I, 0.5), ConvLayerPlan(III, 0.5)]
            report = validate_conv_partitioned_training(spec, plan, batch=4)
            return report.comm_total_elements

        big, small = traffic(8), traffic(4)
        # intra ΔW counts are spatial-independent; inter and II/III psums
        # scale with H*W, so total traffic must shrink by more than 2x
        assert big > 2 * small
