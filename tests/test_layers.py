"""Unit tests for the layer IR."""

import pytest

from repro.graph.layers import (
    Add,
    BatchNorm,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    LayerWorkload,
    Linear,
    LocalResponseNorm,
    Pool2d,
    ReLU,
)
from repro.graph.shapes import FeatureMap


@pytest.fixture
def image():
    return FeatureMap(8, 3, 224, 224)


class TestConv2d:
    def test_infer_shape(self, image):
        conv = Conv2d("c", 3, 64, kernel=7, stride=2, padding=3)
        out = conv.infer(image)
        assert out == FeatureMap(8, 64, 112, 112)

    def test_is_weighted(self):
        assert Conv2d("c", 3, 8, kernel=3).weighted

    def test_workload_dimensions(self, image):
        conv = Conv2d("c", 3, 64, kernel=7, stride=2, padding=3)
        w = conv.workload(image)
        assert w.batch == 8
        assert w.d_in == 3
        assert w.d_out == 64
        assert w.in_hw == (224, 224)
        assert w.out_hw == (112, 112)
        assert w.kernel_hw == (7, 7)
        assert w.is_conv

    def test_workload_tensor_sizes(self, image):
        conv = Conv2d("c", 3, 64, kernel=7, stride=2, padding=3)
        w = conv.workload(image)
        assert w.input_fm.size == 8 * 3 * 224 * 224
        assert w.output_fm.size == 8 * 64 * 112 * 112
        assert w.weight.size == 3 * 64 * 7 * 7

    def test_channel_mismatch_raises(self, image):
        conv = Conv2d("c", 16, 64, kernel=3)
        with pytest.raises(ValueError, match="expected 16 input channels"):
            conv.infer(image)

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            Conv2d("c", 0, 64, kernel=3)

    def test_int_or_pair_arguments(self):
        a = Conv2d("a", 3, 8, kernel=3, stride=2, padding=1)
        b = Conv2d("b", 3, 8, kernel=(3, 3), stride=(2, 2), padding=(1, 1))
        assert a.kernel == b.kernel
        assert a.stride == b.stride
        assert a.padding == b.padding

    def test_rejects_bad_pair(self):
        with pytest.raises(ValueError):
            Conv2d("c", 3, 8, kernel=(3, 3, 3))


class TestLinear:
    def test_infer(self):
        fc = Linear("fc", 100, 10)
        out = fc.infer(FeatureMap(4, 100))
        assert out == FeatureMap(4, 10, 1, 1)

    def test_accepts_spatial_input_when_flat_matches(self):
        fc = Linear("fc", 4 * 5 * 5, 10)
        out = fc.infer(FeatureMap(2, 4, 5, 5))
        assert out == FeatureMap(2, 10, 1, 1)

    def test_feature_mismatch_raises(self):
        fc = Linear("fc", 64, 10)
        with pytest.raises(ValueError, match="expected 64 input features"):
            fc.infer(FeatureMap(2, 100))

    def test_workload_is_fc(self):
        fc = Linear("fc", 100, 10)
        w = fc.workload(FeatureMap(4, 100))
        assert not w.is_conv
        assert w.kernel_hw == (1, 1)
        assert w.weight.size == 1000

    def test_rejects_bad_features(self):
        with pytest.raises(ValueError):
            Linear("fc", 10, 0)


class TestPool2d:
    def test_max_pool(self):
        pool = Pool2d("p", kernel=2, stride=2)
        assert pool.infer(FeatureMap(1, 8, 28, 28)) == FeatureMap(1, 8, 14, 14)

    def test_stride_defaults_to_kernel(self):
        pool = Pool2d("p", kernel=3)
        assert pool.stride == (3, 3)

    def test_avg_mode(self):
        assert Pool2d("p", kernel=2, mode="avg").mode == "avg"

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            Pool2d("p", kernel=2, mode="median")

    def test_not_weighted(self):
        assert not Pool2d("p", kernel=2).weighted
        assert Pool2d("p", kernel=2).workload(FeatureMap(1, 1, 4, 4)) is None


class TestShapePreservingLayers:
    @pytest.mark.parametrize(
        "layer",
        [
            ReLU("r"),
            BatchNorm("bn"),
            LocalResponseNorm("lrn"),
            Dropout("d", 0.5),
            Add("a"),
        ],
    )
    def test_identity_shape(self, layer, image):
        assert layer.infer(image) == image

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout("d", 1.0)

    def test_global_avg_pool(self):
        gap = GlobalAvgPool("g")
        assert gap.infer(FeatureMap(2, 512, 7, 7)) == FeatureMap(2, 512, 1, 1)

    def test_flatten(self):
        fl = Flatten("f")
        assert fl.infer(FeatureMap(2, 16, 5, 5)) == FeatureMap(2, 400, 1, 1)


class TestAdd:
    def test_infer_many_agreement(self):
        add = Add("a")
        fm = FeatureMap(2, 8, 4, 4)
        assert add.infer_many([fm, fm]) == fm

    def test_infer_many_mismatch_raises(self):
        add = Add("a")
        with pytest.raises(ValueError, match="mismatched Add inputs"):
            add.infer_many([FeatureMap(2, 8, 4, 4), FeatureMap(2, 8, 2, 2)])

    def test_infer_many_empty_raises(self):
        with pytest.raises(ValueError):
            Add("a").infer_many([])


class TestInput:
    def test_feature_map(self):
        inp = Input("in", channels=3, height=32, width=32)
        assert inp.feature_map(16) == FeatureMap(16, 3, 32, 32)


class TestLayerWorkload:
    def test_with_batch(self):
        w = LayerWorkload("l", 8, 3, 16, (4, 4), (4, 4), (3, 3), True)
        w2 = w.with_batch(32)
        assert w2.batch == 32
        assert w2.d_in == w.d_in

    def test_with_batch_rejects_nonpositive(self):
        w = LayerWorkload("l", 8, 3, 16, (4, 4), (4, 4), (3, 3), True)
        with pytest.raises(ValueError):
            w.with_batch(0)

    def test_spatial_helpers(self):
        w = LayerWorkload("l", 8, 3, 16, (6, 4), (3, 2), (3, 3), True)
        assert w.in_spatial == 24
        assert w.out_spatial == 6
        assert w.kernel_spatial == 9

    def test_layer_name_required(self):
        with pytest.raises(ValueError):
            ReLU("")
