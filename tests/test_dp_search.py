"""Unit tests for the Eq. 9 dynamic program, validated against brute force."""

import pytest

from repro.core.brute_force import brute_force_chain
from repro.core.cost_model import PairCostModel
from repro.core.dp_search import search_stages
from repro.core.stages import ShardedLayerStage, to_sharded_stages
from repro.core.types import ALL_TYPES, HYPAR_TYPES, PartitionType, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.hardware import TPU_V2, TPU_V3, make_group

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def chain(*dims, batch=16):
    """Build a ShardedLayerStage chain of FC layers with the given widths."""
    stages = []
    for idx in range(len(dims) - 1):
        w = LayerWorkload(
            f"fc{idx}", batch, dims[idx], dims[idx + 1], (1, 1), (1, 1), (1, 1), False
        )
        stages.append(ShardedLayerStage(ShardedWorkload(w)))
    return stages


@pytest.fixture(params=["balanced", "equal", "comm-volume"])
def model(request):
    return PairCostModel(
        make_group(TPU_V3, 1), make_group(TPU_V2, 1), ratio_mode=request.param
    )


class TestChainDP:
    def test_empty_stage_list(self, model):
        result = search_stages([], model)
        assert result.cost == 0.0
        assert result.assignments == {}

    def test_single_layer(self, model):
        result = search_stages(chain(8, 4), model)
        assert len(result.assignments) == 1
        assert result.exit_state is result.assignments["fc0"].ptype

    def test_dp_matches_brute_force_small(self, model):
        stages = chain(64, 128, 32, 256, 8)
        dp = search_stages(stages, model)
        bf = brute_force_chain(stages, model)
        assert dp.cost == pytest.approx(bf.cost)
        assert dp.types() == bf.types()

    def test_dp_matches_brute_force_varied_shapes(self, model):
        stages = chain(1000, 10, 1000, 10, batch=128)
        dp = search_stages(stages, model)
        bf = brute_force_chain(stages, model)
        assert dp.cost == pytest.approx(bf.cost)

    def test_restricted_space_matches_brute_force(self, model):
        stages = chain(64, 128, 32, 16)
        dp = search_stages(stages, model, HYPAR_TYPES)
        bf = brute_force_chain(stages, model, HYPAR_TYPES)
        assert dp.cost == pytest.approx(bf.cost)
        assert all(t in HYPAR_TYPES for t in dp.types().values())

    def test_full_space_at_least_as_good_as_restricted(self, model):
        stages = chain(512, 4096, 4096, 10, batch=64)
        full = search_stages(stages, model, ALL_TYPES)
        restricted = search_stages(stages, model, HYPAR_TYPES)
        assert full.cost <= restricted.cost * (1 + 1e-12)

    def test_space_fn_pins_layer_types(self, model):
        stages = chain(64, 128, 32, 16)
        result = search_stages(
            stages, model, space_fn=lambda w: (II,)
        )
        assert all(t is II for t in result.types().values())

    def test_assignment_per_layer(self, model):
        stages = chain(8, 8, 8, 8, 8)
        result = search_stages(stages, model)
        assert set(result.assignments) == {"fc0", "fc1", "fc2", "fc3"}

    def test_empty_space_raises(self, model):
        with pytest.raises(ValueError):
            search_stages(chain(4, 4), model, space=())

    def test_entry_state_changes_result(self, model):
        stages = chain(64, 4096, batch=4)
        free = search_stages(stages, model)
        forced = search_stages(stages, model, entry={I: 0.0})
        # forcing an entry state can only make the cost >= the free optimum
        assert forced.cost >= free.cost - 1e-15


class TestBruteForce:
    def test_rejects_parallel_stages(self, model):
        from repro.models import build_model

        stages = to_sharded_stages(build_model("resnet18").stages(4))
        with pytest.raises(TypeError):
            brute_force_chain(stages, model)

    def test_empty_chain(self, model):
        result = brute_force_chain([], model)
        assert result.cost == 0.0


class TestOptimalSubstructure:
    def test_longer_chain_costs_more(self, model):
        short = search_stages(chain(64, 64, 64), model)
        long = search_stages(chain(64, 64, 64, 64), model)
        assert long.cost > short.cost

    def test_costs_are_positive(self, model):
        result = search_stages(chain(64, 64), model)
        assert result.cost > 0.0

    def test_alpha_recorded_in_assignments(self):
        balanced = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                                 ratio_mode="balanced")
        result = search_stages(chain(64, 64), balanced)
        for lp in result.assignments.values():
            assert 0.0 < lp.ratio < 1.0

    def test_equal_mode_alpha_is_half(self):
        equal = PairCostModel(make_group(TPU_V3, 1), make_group(TPU_V2, 1),
                              ratio_mode="equal")
        result = search_stages(chain(64, 64, 64), equal)
        assert all(lp.ratio == 0.5 for lp in result.assignments.values())
