"""Unit tests for the optimizer cost models and numpy update rules."""

import numpy as np
import pytest

from repro.training.optimizers import (
    ADAM,
    AdamRule,
    MOMENTUM,
    MomentumRule,
    OPTIMIZERS,
    OptimizerSpec,
    SGD,
    SgdRule,
    get_optimizer,
    make_rule,
)


class TestSpecs:
    def test_registry(self):
        assert set(OPTIMIZERS) == {"sgd", "momentum", "adam"}
        assert get_optimizer("Adam") is ADAM

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_optimizer("lion")

    def test_state_counts(self):
        assert SGD.state_per_weight == 0
        assert MOMENTUM.state_per_weight == 1
        assert ADAM.state_per_weight == 2

    def test_update_tensor_counts(self):
        assert SGD.update_load_tensors() == 2      # w, g
        assert ADAM.update_load_tensors() == 4     # w, g, m, v
        assert MOMENTUM.update_store_tensors() == 2  # w, v

    def test_flops_increase_with_sophistication(self):
        assert SGD.flops_per_weight < MOMENTUM.flops_per_weight < ADAM.flops_per_weight

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            OptimizerSpec("bad", state_per_weight=-1, flops_per_weight=1)


class TestSgdRule:
    def test_update(self):
        w = [np.array([1.0, 2.0])]
        SgdRule(lr=0.5).apply(w, [np.array([2.0, 4.0])])
        np.testing.assert_allclose(w[0], [0.0, 0.0])

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SgdRule(lr=0.0)


class TestMomentumRule:
    def test_matches_paper_recursion(self):
        """v_t = gamma v_{t-1} + eta grad ; theta -= v_t (Section 2.1)."""
        rule = MomentumRule(lr=0.1, gamma=0.5)
        w = [np.array([1.0])]
        g = [np.array([1.0])]
        rule.apply(w, g)   # v1 = 0.1 -> w = 0.9
        rule.apply(w, g)   # v2 = 0.05 + 0.1 = 0.15 -> w = 0.75
        np.testing.assert_allclose(w[0], [0.75])

    def test_bad_gamma(self):
        with pytest.raises(ValueError):
            MomentumRule(gamma=1.0)


class TestAdamRule:
    def test_first_step_is_lr_sized(self):
        """With bias correction, Adam's first step is ~lr * sign(g)."""
        rule = AdamRule(lr=0.01)
        w = [np.array([1.0, -1.0])]
        g = [np.array([5.0, -3.0])]
        rule.apply(w, g)
        np.testing.assert_allclose(w[0], [1.0 - 0.01, -1.0 + 0.01], rtol=1e-5)

    def test_state_shapes_lazy_init(self):
        rule = AdamRule()
        w = [np.zeros((3, 4)), np.zeros((4, 2))]
        g = [np.ones((3, 4)), np.ones((4, 2))]
        rule.apply(w, g)
        assert rule._m[0].shape == (3, 4)
        assert rule._v[1].shape == (4, 2)


class TestMakeRule:
    @pytest.mark.parametrize("name,cls", [("sgd", SgdRule),
                                          ("momentum", MomentumRule),
                                          ("adam", AdamRule)])
    def test_factory(self, name, cls):
        assert isinstance(make_rule(name), cls)

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_rule("rmsprop")
