"""Unit tests for the energy model."""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import Planner
from repro.core.types import Phase
from repro.hardware import heterogeneous_array, homogeneous_array, make_group, TPU_V3
from repro.models import build_model
from repro.sim.energy import (
    DEFAULT_ENERGY,
    EnergyBreakdown,
    EnergySpec,
    ZERO_ENERGY,
    events_energy,
)
from repro.sim.engine import EngineConfig
from repro.sim.executor import evaluate
from repro.sim.trace import EventKind, TraceEvent


def ev(kind, amount):
    return TraceEvent(kind, "l", Phase.FORWARD, amount, 1)


class TestEnergySpec:
    def test_defaults_ordered(self):
        # moving a byte across the network costs far more than HBM access,
        # which costs more than a FLOP — the premise of partition planning
        assert (DEFAULT_ENERGY.pj_per_network_byte
                > DEFAULT_ENERGY.pj_per_hbm_byte
                > DEFAULT_ENERGY.pj_per_flop)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergySpec(pj_per_flop=-1.0)


class TestEventsEnergy:
    def test_compute_energy(self):
        e = events_energy([ev(EventKind.MULT, 1e12)], dtype_bytes=2,
                          spec=EnergySpec(1.0, 0.0, 0.0))
        assert e.compute_j == pytest.approx(1.0)
        assert e.hbm_j == 0.0 and e.network_j == 0.0

    def test_hbm_energy_uses_dtype(self):
        e = events_energy([ev(EventKind.LOAD, 1e12)], dtype_bytes=2,
                          spec=EnergySpec(0.0, 1.0, 0.0))
        assert e.hbm_j == pytest.approx(2.0)

    def test_network_energy(self):
        e = events_energy([ev(EventKind.NET_READ, 5e11)], dtype_bytes=2,
                          spec=EnergySpec(0.0, 0.0, 1.0))
        assert e.network_j == pytest.approx(1.0)

    def test_total_and_addition(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0)
        b = EnergyBreakdown(0.5, 0.5, 0.5)
        assert (a + b).total_j == pytest.approx(7.5)
        assert (a + ZERO_ENERGY).total_j == a.total_j


class TestSimulatedEnergy:
    @pytest.fixture(scope="class")
    def reports(self):
        array = heterogeneous_array(4, 4)
        out = {}
        for scheme in ("dp", "accpar"):
            planned = Planner(array, get_scheme(scheme)).plan(
                build_model("vgg11"), 256
            )
            out[scheme] = evaluate(planned)
        return out

    def test_energy_positive_components(self, reports):
        for report in reports.values():
            assert report.energy.compute_j > 0
            assert report.energy.hbm_j > 0
            assert report.energy.network_j > 0

    def test_compute_energy_is_scheme_invariant(self, reports):
        """All schemes execute the same FLOPs; only movement differs."""
        assert reports["dp"].energy.compute_j == pytest.approx(
            reports["accpar"].energy.compute_j, rel=0.02
        )

    def test_accpar_moves_less_energy(self, reports):
        assert (reports["accpar"].energy.network_j
                < reports["dp"].energy.network_j)
        assert (reports["accpar"].samples_per_joule
                > reports["dp"].samples_per_joule)

    def test_energy_scales_with_batch(self):
        array = homogeneous_array(4)
        small = evaluate(
            Planner(array, get_scheme("dp")).plan(build_model("alexnet"), 64)
        )
        large = evaluate(
            Planner(array, get_scheme("dp")).plan(build_model("alexnet"), 256)
        )
        assert large.energy.compute_j > 3.5 * small.energy.compute_j

    def test_custom_energy_spec_threads_through(self):
        array = make_group(TPU_V3, 2)
        planned = Planner(array, get_scheme("dp")).plan(build_model("lenet"), 32)
        base = evaluate(planned, EngineConfig())
        pricey = evaluate(
            planned,
            EngineConfig(energy=EnergySpec(pj_per_flop=5000.0)),
        )
        assert pricey.energy.compute_j > base.energy.compute_j * 100

    def test_single_board_has_no_network_energy(self):
        planned = Planner(make_group(TPU_V3, 1), get_scheme("dp")).plan(
            build_model("lenet"), 32
        )
        report = evaluate(planned)
        assert report.energy.network_j == 0.0
        assert report.energy.compute_j > 0.0
