"""Unit tests for the hardware model: specs, groups, presets, pairing tree."""

import pytest

from repro.hardware import (
    AcceleratorGroup,
    AcceleratorSpec,
    TPU_V2,
    TPU_V3,
    bisection_tree,
    describe_tree,
    heterogeneous_array,
    homogeneous_array,
    make_group,
    max_hierarchy_levels,
    merge_groups,
)


class TestSpecs:
    def test_tpu_v2_table7(self):
        assert TPU_V2.flops == 180e12
        assert TPU_V2.memory_bytes == 64 * 2**30
        assert TPU_V2.memory_bandwidth == 2400e9
        assert TPU_V2.network_bandwidth == 1e9  # 8 Gb/s

    def test_tpu_v3_table7(self):
        assert TPU_V3.flops == 420e12
        assert TPU_V3.memory_bytes == 128 * 2**30
        assert TPU_V3.memory_bandwidth == 4800e9
        assert TPU_V3.network_bandwidth == 2e9  # 16 Gb/s

    def test_v3_is_stronger_everywhere(self):
        assert TPU_V3.flops > TPU_V2.flops
        assert TPU_V3.network_bandwidth > TPU_V2.network_bandwidth

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            AcceleratorSpec("bad", flops=0, memory_bytes=1, memory_bandwidth=1,
                            network_bandwidth=1)

    def test_str_mentions_name(self):
        assert "tpu-v2" in str(TPU_V2)


class TestGroups:
    def test_aggregation_sums(self):
        g = make_group(TPU_V2, 4)
        assert g.flops == 4 * TPU_V2.flops
        assert g.network_bandwidth == 4 * TPU_V2.network_bandwidth
        assert g.memory_bytes == 4 * TPU_V2.memory_bytes
        assert g.memory_bandwidth == 4 * TPU_V2.memory_bandwidth

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            AcceleratorGroup(())

    def test_make_group_rejects_zero(self):
        with pytest.raises(ValueError):
            make_group(TPU_V2, 0)

    def test_homogeneity(self):
        assert make_group(TPU_V2, 3).is_homogeneous
        assert not heterogeneous_array(2, 2).is_homogeneous

    def test_signature_is_order_insensitive(self):
        a = merge_groups(make_group(TPU_V2, 2), make_group(TPU_V3, 2))
        b = merge_groups(make_group(TPU_V3, 2), make_group(TPU_V2, 2))
        assert a.signature() == b.signature()

    def test_merge_sizes(self):
        g = merge_groups(make_group(TPU_V2, 3), make_group(TPU_V3, 5))
        assert g.size == 8


class TestPresets:
    def test_heterogeneous_default_is_128_plus_128(self):
        arr = heterogeneous_array()
        assert arr.size == 256
        assert dict(arr.signature()) == {"tpu-v2": 128, "tpu-v3": 128}

    def test_homogeneous_default(self):
        arr = homogeneous_array()
        assert arr.size == 128
        assert arr.is_homogeneous


class TestBisectionTree:
    def test_heterogeneous_first_split_separates_types(self):
        tree = bisection_tree(heterogeneous_array(4, 4), levels=1)
        assert tree.left is not None and tree.right is not None
        assert tree.left.group.is_homogeneous
        assert tree.right.group.is_homogeneous
        names = {tree.left.group.members[0].name, tree.right.group.members[0].name}
        assert names == {"tpu-v2", "tpu-v3"}

    def test_faster_type_goes_left(self):
        tree = bisection_tree(heterogeneous_array(4, 4), levels=1)
        assert tree.left.group.members[0].name == "tpu-v3"

    def test_full_depth(self):
        tree = bisection_tree(heterogeneous_array(4, 4), levels=10)
        assert tree.depth() == 3  # 8 accelerators -> 3 levels
        assert len(list(tree.leaves())) == 8
        assert all(leaf.group.size == 1 for leaf in tree.leaves())

    def test_requested_levels_cap(self):
        tree = bisection_tree(homogeneous_array(8), levels=2)
        assert tree.depth() == 2
        assert all(leaf.group.size == 2 for leaf in tree.leaves())

    def test_zero_levels(self):
        tree = bisection_tree(homogeneous_array(4), levels=0)
        assert tree.is_leaf

    def test_negative_levels_raise(self):
        with pytest.raises(ValueError):
            bisection_tree(homogeneous_array(4), levels=-1)

    def test_odd_sizes_split_unevenly_but_fully(self):
        tree = bisection_tree(homogeneous_array(3), levels=5)
        assert len(list(tree.leaves())) == 3

    def test_uneven_heterogeneous_split_at_type_boundary(self):
        tree = bisection_tree(heterogeneous_array(2, 6), levels=1)
        sizes = sorted([tree.left.group.size, tree.right.group.size])
        assert sizes == [2, 6]
        assert tree.left.group.is_homogeneous
        assert tree.right.group.is_homogeneous

    def test_internal_node_count(self):
        tree = bisection_tree(homogeneous_array(8), levels=3)
        assert len(list(tree.internal_nodes())) == 7

    def test_max_hierarchy_levels(self):
        assert max_hierarchy_levels(homogeneous_array(128)) == 7
        assert max_hierarchy_levels(heterogeneous_array()) == 8

    def test_levels_increase_down_the_tree(self):
        tree = bisection_tree(homogeneous_array(4), levels=2)
        assert tree.level == 0
        assert tree.left.level == 1
        assert tree.left.left.level == 2

    def test_describe_tree_renders(self):
        tree = bisection_tree(heterogeneous_array(2, 2), levels=2)
        text = describe_tree(tree)
        assert "tpu-v2" in text and "tpu-v3" in text

    def test_invalid_children_pairing(self):
        from repro.hardware.cluster import GroupNode

        with pytest.raises(ValueError):
            GroupNode(group=homogeneous_array(2), left=GroupNode(homogeneous_array(1)))


class TestSplitPolicies:
    def test_interleaved_split_mixes_types(self):
        from repro.hardware.cluster import bisection_tree

        tree = bisection_tree(heterogeneous_array(4, 4), levels=1,
                              policy="interleaved")
        assert not tree.left.group.is_homogeneous
        assert not tree.right.group.is_homogeneous
        assert dict(tree.left.group.signature()) == {"tpu-v2": 2, "tpu-v3": 2}

    def test_unknown_policy_raises(self):
        from repro.hardware.cluster import bisection_tree

        with pytest.raises(ValueError, match="split policy"):
            bisection_tree(homogeneous_array(4), levels=1, policy="random")

    def test_interleaved_on_homogeneous_equivalent_sizes(self):
        from repro.hardware.cluster import bisection_tree

        tree = bisection_tree(homogeneous_array(8), levels=3,
                              policy="interleaved")
        assert tree.depth() == 3
        assert len(list(tree.leaves())) == 8
