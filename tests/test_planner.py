"""Unit tests for the public planner API."""

import pytest

from repro.baselines import get_scheme
from repro.core.planner import AccParPlanner, AccParScheme, Planner
from repro.core.types import PartitionType
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import build_model

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


class TestAccParPlanner:
    def test_plan_depth_defaults_to_full_bisection(self):
        planner = AccParPlanner(homogeneous_array(8))
        planned = planner.plan(build_model("lenet"), batch=64)
        assert planned.hierarchy_levels() == 3

    def test_explicit_levels(self):
        planner = AccParPlanner(homogeneous_array(8), levels=2)
        planned = planner.plan(build_model("lenet"), batch=64)
        assert planned.hierarchy_levels() == 2

    def test_root_level_plan_covers_all_layers(self):
        planner = AccParPlanner(homogeneous_array(4))
        planned = planner.plan(build_model("alexnet"), batch=64)
        names = set(planned.root_level_plan.layer_assignments())
        expected = {w.name for w in build_model("alexnet").workloads(64)}
        assert names == expected

    def test_layer_types_by_level_shape(self):
        planner = AccParPlanner(homogeneous_array(16))
        planned = planner.plan(build_model("alexnet"), batch=64)
        per_level = planned.layer_types_by_level()
        assert len(per_level) == 4
        for level in per_level:
            assert len(level) >= 8  # 8 real layers (plus no join keys)

    def test_single_accelerator_has_no_level_plan(self):
        planner = AccParPlanner(homogeneous_array(1))
        planned = planner.plan(build_model("lenet"), batch=8)
        assert planned.plan.is_leaf
        with pytest.raises(ValueError):
            planned.root_level_plan

    def test_scheme_name_propagates(self):
        planner = AccParPlanner(homogeneous_array(2))
        planned = planner.plan(build_model("lenet"), batch=8)
        assert planned.scheme == "accpar"

    def test_fc_layers_prefer_model_partitioning(self):
        """Figure 7's core observation: AlexNet FC layers get Type-II/III."""
        planner = AccParPlanner(homogeneous_array(128), levels=7)
        planned = planner.plan(build_model("alexnet"), batch=128)
        types = planned.layer_types_by_level()[0]
        assert types["fc1"] in (II, III)
        assert types["fc2"] in (II, III)

    def test_early_conv_layers_prefer_data_partitioning(self):
        planner = AccParPlanner(homogeneous_array(128), levels=7)
        planned = planner.plan(build_model("alexnet"), batch=128)
        types = planned.layer_types_by_level()[0]
        assert types["cv1"] is I


class TestGenericPlanner:
    @pytest.mark.parametrize("scheme_name", ["dp", "owt", "hypar", "accpar"])
    def test_all_schemes_plan_resnet(self, scheme_name):
        planner = Planner(heterogeneous_array(2, 2), get_scheme(scheme_name))
        planned = planner.plan(build_model("resnet18"), batch=32)
        assert planned.hierarchy_levels() == 2
        assert planned.scheme == scheme_name

    def test_ablation_scheme_restricted_space(self):
        scheme = AccParScheme(space=(I, II), name="accpar-2type")
        planner = Planner(homogeneous_array(4), scheme)
        planned = planner.plan(build_model("alexnet"), batch=32)
        for level in planned.level_plans():
            for lp in level.layer_assignments().values():
                assert lp.ptype in (I, II)


class TestSubtreeReporting:
    """Figure-7 reporting under asymmetric sibling subtrees (heterogeneous
    arrays with the default type-separated split policy)."""

    @pytest.fixture(scope="class")
    def hetero_planned(self):
        return AccParPlanner(heterogeneous_array(4, 4)).plan(
            build_model("alexnet"), batch=128
        )

    @pytest.fixture(scope="class")
    def homo_planned(self):
        return AccParPlanner(homogeneous_array(8)).plan(
            build_model("alexnet"), batch=128
        )

    def test_homogeneous_subtrees_are_symmetric(self, homo_planned):
        assert homo_planned.subtrees_symmetric()

    def test_homogeneous_strict_mode_succeeds(self, homo_planned):
        per_level = homo_planned.layer_types_by_level(strict=True)
        assert len(per_level) == homo_planned.hierarchy_levels()

    def test_heterogeneous_subtrees_differ(self, hetero_planned):
        """Type-separated bisection of a heterogeneous array puts different
        sub-arrays under each root child; their plans legitimately differ."""
        assert not hetero_planned.subtrees_symmetric()

    def test_heterogeneous_strict_mode_raises(self, hetero_planned):
        with pytest.raises(ValueError, match="layer_types_by_subtree"):
            hetero_planned.layer_types_by_level(strict=True)

    def test_default_mode_keeps_leftmost_spine(self, hetero_planned):
        """Non-strict reporting still works (documented asymmetry)."""
        per_level = hetero_planned.layer_types_by_level()
        assert len(per_level) == hetero_planned.hierarchy_levels()

    def test_by_subtree_reports_every_internal_node(self, hetero_planned):
        by_subtree = hetero_planned.layer_types_by_subtree()
        assert "root" in by_subtree
        assert "rootL" in by_subtree and "rootR" in by_subtree
        # the siblings that break symmetry are visible side by side
        assert any(
            by_subtree["rootL"].get(name) is not by_subtree["rootR"].get(name)
            for name in by_subtree["rootL"]
        )

    def test_by_subtree_matches_spine_on_symmetric_plans(self, homo_planned):
        by_subtree = homo_planned.layer_types_by_subtree()
        per_level = homo_planned.layer_types_by_level()
        spine = "root"
        for level_types in per_level:
            assert by_subtree[spine] == level_types
            spine += "L"
