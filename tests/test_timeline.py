"""Unit tests for the Chrome-trace timeline exporter."""

import json

import pytest

from repro.core.planner import AccParPlanner
from repro.hardware import heterogeneous_array, homogeneous_array
from repro.models import build_model
from repro.sim.executor import evaluate
from repro.sim.timeline import critical_path_timeline, save_chrome_trace


@pytest.fixture(scope="module")
def planned():
    return AccParPlanner(heterogeneous_array(2, 2)).plan(
        build_model("alexnet"), batch=64
    )


class TestTimeline:
    def test_event_structure(self, planned):
        events = critical_path_timeline(planned)
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["cat"] in ("communication", "compute", "optimizer")

    def test_one_comm_event_per_level(self, planned):
        events = critical_path_timeline(planned)
        comm = [e for e in events if e["cat"] == "communication"]
        assert len(comm) == planned.hierarchy_levels()

    def test_leaf_has_three_phases_plus_update_per_layer(self, planned):
        events = critical_path_timeline(planned)
        compute = [e for e in events if e["cat"] == "compute"]
        updates = [e for e in events if e["cat"] == "optimizer"]
        n_layers = len(planned.root_level_plan.layer_assignments())
        assert len(compute) == 3 * n_layers
        assert len(updates) == n_layers

    def test_events_are_sequential(self, planned):
        events = critical_path_timeline(planned)
        cursor = 0.0
        for event in events:
            assert event["ts"] >= cursor - 1e-6
            cursor = event["ts"]

    def test_span_close_to_simulated_total(self, planned):
        """The timeline's end should be near the evaluator's total (the
        evaluator applies cross-layer overlap at the leaf, so the sequential
        timeline is an upper bound of the same order)."""
        events = critical_path_timeline(planned)
        span_s = max(e["ts"] + e["dur"] for e in events) / 1e6
        total = evaluate(planned).total_time
        assert span_s >= total * 0.5
        assert span_s <= total * 3.0

    def test_save_chrome_trace(self, planned, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(planned, path)
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        assert document["traceEvents"]

    def test_single_board_timeline_is_leaf_only(self):
        planned = AccParPlanner(homogeneous_array(1)).plan(
            build_model("lenet"), batch=8
        )
        events = critical_path_timeline(planned)
        assert all(e["cat"] != "communication" for e in events)
