"""Wire protocol v2: framing, negotiation, size caps, v1 sniffing."""

import asyncio
import socket
import threading

import pytest

from repro.fleet.wire import (
    FrameError,
    FrameTooLarge,
    PROTOCOL_VERSION,
    decode_body,
    encode_frame,
    hello_doc,
    looks_like_v1,
    negotiate,
    read_frame,
    recv_frame,
    send_frame,
)


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_roundtrip(self):
        a, b = socket_pair()
        doc = {"op": "plan", "model": "alexnet", "nested": {"x": [1, 2]}}
        send_frame(a, doc)
        assert recv_frame(b) == doc
        a.close(), b.close()

    def test_multiple_frames_on_one_stream(self):
        a, b = socket_pair()
        for i in range(5):
            send_frame(a, {"i": i})
        got = [recv_frame(b) for _ in range(5)]
        assert [d["i"] for d in got] == list(range(5))
        a.close(), b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_mid_frame_eof_is_an_error(self):
        a, b = socket_pair()
        frame = encode_frame({"op": "plan"})
        a.sendall(frame[: len(frame) - 3])  # truncated body
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_binary_safe_payload(self):
        # embedded newlines would break the v1 line protocol; frames don't care
        a, b = socket_pair()
        doc = {"text": "line one\nline two\r\n{\"nested\": true}"}
        send_frame(a, doc)
        assert recv_frame(b) == doc
        a.close(), b.close()

    def test_non_object_payload_rejected(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_body(b"[1, 2, 3]")
        with pytest.raises(FrameError, match="bad frame payload"):
            decode_body(b"{not json")


class TestSizeCap:
    def test_oversized_frame_rejected_before_body_read(self):
        a, b = socket_pair()
        big = encode_frame({"pad": "x" * 5000})
        a.sendall(big)
        with pytest.raises(FrameTooLarge) as info:
            recv_frame(b, max_bytes=1024)
        assert info.value.limit == 1024
        assert info.value.declared > 5000
        a.close(), b.close()

    def test_prefix_bytes_count_toward_the_header(self):
        a, b = socket_pair()
        frame = encode_frame({"op": "ping"})
        a.sendall(frame)
        first = b.recv(1)
        assert not looks_like_v1(first)
        assert recv_frame(b, prefix=first) == {"op": "ping"}
        a.close(), b.close()


class TestNegotiation:
    def test_hello_doc_carries_protocol(self):
        assert hello_doc()["proto"] == PROTOCOL_VERSION

    def test_matching_version_accepted(self):
        reply = negotiate(hello_doc(role="frontend"), role="shard", server="0")
        assert reply["ok"] and reply["proto"] == PROTOCOL_VERSION
        assert reply["role"] == "shard" and reply["server"] == "0"

    def test_future_version_refused_with_downgrade_info(self):
        reply = negotiate({"op": "hello", "proto": 3}, role="shard", server="0")
        assert not reply["ok"]
        assert reply["error"] == "unsupported protocol"
        assert reply["requested"] == 3 and reply["proto"] == PROTOCOL_VERSION

    def test_missing_proto_refused(self):
        assert not negotiate({"op": "hello"}, role="shard", server="0")["ok"]


class TestV1Sniff:
    def test_v1_first_bytes(self):
        # raw JSON text (and leading whitespace) marks a v1 line client
        for byte in (b"{", b" ", b"\t", b"\n", b"\r"):
            assert looks_like_v1(byte)

    def test_v2_length_prefix_never_looks_like_v1(self):
        # a v2 frame under the caps starts 0x00 0x0?…: the first byte of a
        # <16 MiB length prefix is 0x00, never 0x7B ('{')
        frame = encode_frame({"op": "plan", "model": "alexnet"})
        assert frame[0:1] == b"\x00"
        assert not looks_like_v1(frame[0:1])


class TestAsyncCodec:
    """The asyncio twin must fail the same way on the same byte streams."""

    @staticmethod
    def _read(*chunks, eof=True, **kwargs):
        async def run():
            reader = asyncio.StreamReader()
            for chunk in chunks:
                reader.feed_data(chunk)
            if eof:
                reader.feed_eof()
            return await read_frame(reader, **kwargs)

        return asyncio.run(run())

    def test_roundtrip(self):
        doc = {"op": "plan", "model": "alexnet", "nested": {"x": [1, 2]}}
        assert self._read(encode_frame(doc)) == doc

    def test_clean_eof_returns_none(self):
        assert self._read() is None

    def test_truncated_header_is_an_error(self):
        with pytest.raises(FrameError, match="mid-frame"):
            self._read(b"\x00\x00")

    def test_disconnect_mid_body_is_an_error(self):
        frame = encode_frame({"op": "plan", "model": "alexnet"})
        with pytest.raises(FrameError, match="mid-frame"):
            self._read(frame[: len(frame) - 3])

    def test_oversized_frame_rejected_before_body_read(self):
        big = encode_frame({"pad": "x" * 5000})
        # only the header is fed: the cap must trip without the body
        with pytest.raises(FrameTooLarge) as info:
            self._read(big[:4], eof=False, max_bytes=1024)
        assert info.value.limit == 1024 and info.value.declared > 5000

    def test_prefix_bytes_count_toward_the_header(self):
        frame = encode_frame({"op": "ping"})
        assert self._read(frame[1:], prefix=frame[:1]) == {"op": "ping"}

    def test_prefix_then_eof_mid_header_is_an_error(self):
        with pytest.raises(FrameError, match="mid-frame"):
            self._read(prefix=b"\x00")


class TestGarbageBeforeHello:
    """A connection that opens with garbage must get a clean refusal."""

    @pytest.fixture
    def shard(self):
        from repro.fleet.shard import ShardServer

        server = ShardServer("g")
        server.start_background()
        yield server
        server.stop()

    def _open(self, shard):
        sock = socket.create_connection((shard.host, shard.port),
                                        timeout=5.0)
        sock.settimeout(5.0)
        return sock

    def test_huge_bogus_length_prefix_refused(self, shard):
        # 0xFF... as a length prefix declares a ~4 GiB frame
        with self._open(shard) as sock:
            sock.sendall(b"\xff\xff\xff\xff" + b"junk")
            reply = recv_frame(sock)
            assert reply["ok"] is False
            assert reply["error"] == "request too large"
            assert recv_frame(sock) is None  # then the stream closes

    def test_http_request_line_refused(self, shard):
        # 'G' (0x47) as the first length byte also declares >1 GiB:
        # a stray HTTP client cannot wedge a shard
        with self._open(shard) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            reply = recv_frame(sock)
            assert reply["ok"] is False
            assert reply["error"] == "request too large"

    def test_valid_length_prefix_with_garbage_body_drops_cleanly(self, shard):
        with self._open(shard) as sock:
            sock.sendall(b"\x00\x00\x00\x09not json!")
            # unparseable body: the shard drops the connection rather
            # than guess at resynchronization
            assert recv_frame(sock) is None

    def test_server_survives_garbage_and_keeps_serving(self, shard):
        with self._open(shard) as sock:
            sock.sendall(b"\xde\xad\xbe\xef")
            recv_frame(sock)
        with self._open(shard) as sock:
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["ok"]


def test_request_reply_pingpong_across_threads():
    """A server thread answering frame-for-frame stays in lockstep."""
    a, b = socket_pair()

    def server():
        while True:
            doc = recv_frame(b)
            if doc is None:
                return
            send_frame(b, {"echo": doc["i"]})

    thread = threading.Thread(target=server, daemon=True)
    thread.start()
    for i in range(50):
        send_frame(a, {"i": i})
        assert recv_frame(a) == {"echo": i}
    a.close()
    thread.join(5.0)
    b.close()
