"""Unit tests for trace generation and quantization."""

import pytest

from repro.core.types import PartitionType, Phase, ShardedWorkload
from repro.graph.layers import LayerWorkload
from repro.sim.trace import (
    EventKind,
    TraceEvent,
    granule_of,
    layer_events,
    layer_phase_events,
    psum_exchange_events,
    total_amount,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def fc_sw(batch=8, d_in=6, d_out=4):
    return ShardedWorkload(
        LayerWorkload("fc", batch, d_in, d_out, (1, 1), (1, 1), (1, 1), False)
    )


def conv_sw():
    return ShardedWorkload(
        LayerWorkload("cv", 2, 3, 5, (8, 8), (8, 8), (3, 3), True)
    )


class TestTraceEvent:
    def test_quantization_rounds_up(self):
        e = TraceEvent(EventKind.LOAD, "l", Phase.FORWARD, 10.0, granule=9)
        assert e.quantized_amount() == 18.0

    def test_granule_one_is_identity(self):
        e = TraceEvent(EventKind.LOAD, "l", Phase.FORWARD, 10.5, granule=1)
        assert e.quantized_amount() == 10.5

    def test_exact_multiple_unchanged(self):
        e = TraceEvent(EventKind.LOAD, "l", Phase.FORWARD, 18.0, granule=9)
        assert e.quantized_amount() == 18.0

    def test_negative_amount_raises(self):
        with pytest.raises(ValueError):
            TraceEvent(EventKind.LOAD, "l", Phase.FORWARD, -1.0)

    def test_bad_granule_raises(self):
        with pytest.raises(ValueError):
            TraceEvent(EventKind.LOAD, "l", Phase.FORWARD, 1.0, granule=0)


class TestGranularity:
    def test_fc_is_element_wise(self):
        assert granule_of(fc_sw()) == 1

    def test_conv_is_kernel_wise(self):
        assert granule_of(conv_sw()) == 9


class TestPhaseEvents:
    def test_forward_tensor_roles(self):
        sw = fc_sw()
        events = layer_phase_events(sw, Phase.FORWARD)
        loads = total_amount(events, EventKind.LOAD, quantized=False)
        stores = total_amount(events, EventKind.STORE, quantized=False)
        assert loads == sw.a_input_fm() + sw.a_weight()
        assert stores == sw.a_output_fm()

    def test_backward_reads_three_tensors(self):
        sw = fc_sw()
        events = layer_phase_events(sw, Phase.BACKWARD)
        loads = total_amount(events, EventKind.LOAD, quantized=False)
        assert loads == sw.a_output_fm() + sw.a_weight() + sw.a_input_fm()

    def test_gradient_writes_weight(self):
        sw = fc_sw()
        events = layer_phase_events(sw, Phase.GRADIENT)
        stores = total_amount(events, EventKind.STORE, quantized=False)
        assert stores == sw.a_weight()

    def test_flops_match_table6(self):
        sw = fc_sw()
        for phase in Phase:
            events = layer_phase_events(sw, phase)
            flops = (
                total_amount(events, EventKind.MULT, quantized=False)
                + total_amount(events, EventKind.ADD, quantized=False)
            )
            assert flops == pytest.approx(sw.flops_phase(phase))

    def test_mults_one_more_than_adds(self):
        # a 2K-1 reduction is K mults and K-1 adds
        sw = fc_sw()
        events = layer_phase_events(sw, Phase.FORWARD)
        mults = total_amount(events, EventKind.MULT, quantized=False)
        adds = total_amount(events, EventKind.ADD, quantized=False)
        assert mults > adds

    def test_layer_events_cover_three_phases(self):
        events = layer_events(fc_sw())
        phases = {e.phase for e in events}
        assert phases == set(Phase)


class TestPsumEvents:
    @pytest.mark.parametrize(
        "ptype,phase",
        [(I, Phase.GRADIENT), (II, Phase.FORWARD), (III, Phase.BACKWARD)],
    )
    def test_exchange_in_correct_phase(self, ptype, phase):
        events = psum_exchange_events(fc_sw(), ptype)
        assert all(e.phase is phase for e in events)

    def test_exchange_amount_is_psum_size(self):
        sw = fc_sw()
        events = psum_exchange_events(sw, I)
        net = total_amount(events, EventKind.NET_READ, quantized=False)
        adds = total_amount(events, EventKind.ADD, quantized=False)
        assert net == sw.a_psum(I)
        assert adds == sw.a_psum(I)

    def test_conv_exchange_quantized_to_kernel(self):
        sw = conv_sw().shard(I, 0.3)
        events = psum_exchange_events(sw, I)
        for e in events:
            assert e.quantized_amount() % 9 == 0
