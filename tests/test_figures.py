"""Tests for the figure entry points at reduced (fast) scale."""

import pytest

from repro.core.types import PartitionType
from repro.experiments.figures import (
    figure5_heterogeneous,
    figure6_homogeneous,
    figure7_alexnet_types,
    figure8_hierarchy_sweep,
)

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III

SMALL_MODELS = ["lenet", "alexnet", "resnet18"]


class TestFigure5:
    @pytest.fixture(scope="class")
    def table(self):
        return figure5_heterogeneous(models=SMALL_MODELS, batch=64, n_v2=4, n_v3=4)

    def test_scheme_ordering_on_geomean(self, table):
        """Table 8's flexibility ordering DP ≺ OWT ≺ HyPar ≺ AccPar must show
        in the geomean (OWT can lose to DP on individual tiny models)."""
        assert table.geomean("accpar") >= table.geomean("hypar")
        assert table.geomean("accpar") > table.geomean("dp")

    def test_all_models_present(self, table):
        assert table.models == SMALL_MODELS


class TestFigure6:
    @pytest.fixture(scope="class")
    def table(self):
        return figure6_homogeneous(models=SMALL_MODELS, batch=64, n=8)

    def test_accpar_wins(self, table):
        assert table.geomean("accpar") >= table.geomean("hypar") - 1e-9

    def test_renders(self, table):
        from repro.experiments.reporting import format_speedup_table

        text = format_speedup_table(table)
        assert "AccPar" in text


class TestHeterogeneityAdvantage:
    def test_hetero_gap_exceeds_homo_gap(self):
        """The paper's headline: AccPar's edge over HyPar is much larger on
        the heterogeneous array (6.30/3.78) than the homogeneous one
        (3.86/3.51)."""
        models = ["alexnet", "resnet18"]
        hetero = figure5_heterogeneous(models=models, batch=64, n_v2=4, n_v3=4)
        homo = figure6_homogeneous(models=models, batch=64, n=8)
        hetero_gap = hetero.geomean("accpar") / hetero.geomean("hypar")
        homo_gap = homo.geomean("accpar") / homo.geomean("hypar")
        assert hetero_gap > homo_gap


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7_alexnet_types(batch=128, n=16, levels=4)

    def test_levels_and_layers(self, result):
        assert len(result.per_level) == 4
        assert result.layer_names == [
            "cv1", "cv2", "cv3", "cv4", "cv5", "fc1", "fc2", "fc3"
        ]

    def test_fc_layers_use_model_partitioning(self, result):
        for level in result.per_level:
            assert level["fc1"] in (II, III)
            assert level["fc2"] in (II, III)

    def test_conv_layers_mostly_type_i(self, result):
        level1 = result.per_level[0]
        conv_types = [level1[f"cv{i}"] for i in range(1, 6)]
        assert conv_types.count(I) >= 3

    def test_renders(self, result):
        text = result.rendered()
        assert "cv1" in text and "fc3" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8_hierarchy_sweep(model="vgg11", levels=(2, 3, 4), batch=64)

    def test_dp_flat_at_one(self, result):
        assert all(v == pytest.approx(1.0) for v in result.speedups["dp"])

    def test_accpar_grows_with_hierarchy(self, result):
        acc = result.speedups["accpar"]
        assert acc[-1] > acc[0]

    def test_accpar_tops_every_level(self, result):
        for idx in range(len(result.levels)):
            best = max(result.speedups[s][idx] for s in result.speedups)
            assert result.speedups["accpar"][idx] == pytest.approx(best)

    def test_renders(self, result):
        assert "h" in result.rendered()
