"""Unit tests for the pluggable hardware-profile layer.

Covers the :mod:`repro.hardware.profile` contract: validation of
:class:`SpecProfile` documents, the log-linear bandwidth-efficiency
interpolation, group-level aggregation, ``repro.hardware.profile/v1``
round-trips (including the committed golden fixture), mismatch errors,
and :func:`resolve_profile` coercion.
"""

import json
import math
import pathlib

import pytest

from repro.hardware import TPU_V2, TPU_V3, heterogeneous_array, make_group
from repro.hardware.profile import (
    ANALYTIC,
    PROFILE_SCHEMA,
    AnalyticProfile,
    CalibratedProfile,
    ProfileError,
    ProfileMismatchError,
    SpecProfile,
    load_profile,
    profile_from_doc,
    profile_to_doc,
    resolve_profile,
    save_profile,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "profiles_v1"


def simple_profile(**overrides) -> CalibratedProfile:
    kwargs = dict(
        name="test",
        specs=(
            SpecProfile(
                spec="tpu-v2",
                compute_rates=(("default", 90e12), ("fc", 40e12)),
                bandwidth_efficiency=((1e4, 0.5), (1e7, 0.9)),
                transfer_latency_s=1e-5,
            ),
            SpecProfile(
                spec="tpu-v3",
                compute_rates=(("default", 230e12),),
            ),
        ),
    )
    kwargs.update(overrides)
    return CalibratedProfile(**kwargs)


class TestSpecProfileValidation:
    def test_needs_default_rate(self):
        with pytest.raises(ProfileError, match="default"):
            SpecProfile(spec="x", compute_rates=(("conv", 1e12),))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ProfileError, match="positive"):
            SpecProfile(spec="x", compute_rates=(("default", 0.0),))

    def test_rejects_negative_latency(self):
        with pytest.raises(ProfileError, match="latency"):
            SpecProfile(spec="x", compute_rates=(("default", 1e12),),
                        transfer_latency_s=-1e-6)

    def test_rejects_bad_efficiency_point(self):
        with pytest.raises(ProfileError, match="efficiency"):
            SpecProfile(spec="x", compute_rates=(("default", 1e12),),
                        bandwidth_efficiency=((1e6, 1.5),))
        with pytest.raises(ProfileError, match="efficiency"):
            SpecProfile(spec="x", compute_rates=(("default", 1e12),),
                        bandwidth_efficiency=((0.0, 0.5),))

    def test_curve_points_sorted_by_size(self):
        sp = SpecProfile(spec="x", compute_rates=(("default", 1e12),),
                         bandwidth_efficiency=((1e6, 0.7), (1e3, 0.4)))
        assert sp.bandwidth_efficiency == ((1e3, 0.4), (1e6, 0.7))

    def test_unknown_kind_falls_back_to_default(self):
        sp = SpecProfile(spec="x",
                         compute_rates=(("default", 1e12), ("fc", 5e11)))
        assert sp.compute_rate("fc") == 5e11
        assert sp.compute_rate("conv") == 1e12
        assert sp.compute_rate() == 1e12


class TestEfficiencyInterpolation:
    sp = SpecProfile(spec="x", compute_rates=(("default", 1e12),),
                     bandwidth_efficiency=((1e3, 0.4), (1e6, 0.8)))

    def test_clamps_below_and_above(self):
        assert self.sp.efficiency(1.0) == 0.4
        assert self.sp.efficiency(1e9) == 0.8

    def test_exact_points(self):
        assert self.sp.efficiency(1e3) == 0.4
        assert self.sp.efficiency(1e6) == pytest.approx(0.8)

    def test_log_linear_midpoint(self):
        # geometric midpoint of the sizes -> arithmetic midpoint of the effs
        mid = math.sqrt(1e3 * 1e6)
        assert self.sp.efficiency(mid) == pytest.approx(0.6)

    def test_empty_curve_is_unit_efficiency(self):
        flat = SpecProfile(spec="x", compute_rates=(("default", 1e12),))
        assert flat.efficiency(123.0) == 1.0


class TestAnalyticProfile:
    def test_returns_group_peaks_unchanged(self):
        group = heterogeneous_array(2, 2)
        assert ANALYTIC.compute_rate(group) == group.flops
        assert ANALYTIC.network_bandwidth(group) == group.network_bandwidth
        assert ANALYTIC.memory_bandwidth(group) == group.memory_bandwidth
        assert ANALYTIC.transfer_latency_s(group) == 0.0

    def test_validates_any_array(self):
        ANALYTIC.validate_array(heterogeneous_array(2, 2))  # no raise

    def test_equality_and_fingerprint_stable(self):
        assert AnalyticProfile() == ANALYTIC
        assert AnalyticProfile().fingerprint() == ANALYTIC.fingerprint()


class TestCalibratedAggregation:
    def test_group_rate_sums_members(self):
        profile = simple_profile()
        group = make_group(TPU_V2, 4)
        assert profile.compute_rate(group) == pytest.approx(4 * 90e12)
        assert profile.compute_rate(group, "fc") == pytest.approx(4 * 40e12)

    def test_mixed_group_sums_per_member(self):
        profile = simple_profile()
        group = heterogeneous_array(2, 3)
        assert profile.compute_rate(group) == pytest.approx(
            2 * 90e12 + 3 * 230e12)

    def test_latency_is_slowest_member(self):
        profile = simple_profile()
        assert profile.transfer_latency_s(heterogeneous_array(1, 1)) == 1e-5
        assert profile.transfer_latency_s(make_group(TPU_V3, 2)) == 0.0

    def test_bandwidth_applies_efficiency(self):
        profile = simple_profile()
        group = make_group(TPU_V2, 2)
        small = profile.network_bandwidth(group, 1e3)
        large = profile.network_bandwidth(group, 1e8)
        assert small == pytest.approx(group.network_bandwidth * 0.5)
        assert large == pytest.approx(group.network_bandwidth * 0.9)
        # None = asymptotic (last curve point)
        assert profile.network_bandwidth(group) == pytest.approx(large)

    def test_duplicate_spec_rejected(self):
        sp = SpecProfile(spec="tpu-v2", compute_rates=(("default", 1e12),))
        with pytest.raises(ProfileError, match="duplicate"):
            CalibratedProfile(name="dup", specs=(sp, sp))

    def test_empty_profile_rejected(self):
        with pytest.raises(ProfileError, match="no specs"):
            CalibratedProfile(name="empty", specs=())


class TestMismatch:
    def test_validate_array_names_missing_and_covered(self):
        profile = simple_profile(specs=(
            SpecProfile(spec="tpu-v3", compute_rates=(("default", 1e12),)),
        ))
        with pytest.raises(ProfileMismatchError) as err:
            profile.validate_array(heterogeneous_array(1, 1))
        assert "tpu-v2" in str(err.value)
        assert "covered: tpu-v3" in str(err.value)

    def test_group_rate_on_uncovered_spec_raises(self):
        profile = simple_profile(specs=(
            SpecProfile(spec="tpu-v3", compute_rates=(("default", 1e12),)),
        ))
        with pytest.raises(ProfileMismatchError):
            profile.compute_rate(make_group(TPU_V2, 2))


class TestRoundTrip:
    def test_doc_round_trip_preserves_fingerprint(self):
        profile = simple_profile()
        doc = profile_to_doc(profile)
        again = profile_from_doc(json.loads(json.dumps(doc)))
        assert again == profile
        assert again.fingerprint() == profile.fingerprint()

    def test_file_round_trip(self, tmp_path):
        profile = simple_profile()
        path = tmp_path / "p.json"
        save_profile(profile, path)
        assert load_profile(path) == profile

    def test_golden_fixture_loads(self):
        profile = load_profile(FIXTURES / "golden.json")
        assert profile.name == "golden"
        assert profile.spec_names() == ("tpu-v2", "tpu-v3")
        assert profile.spec_compute_rate(TPU_V2, "fc") == 40e12
        assert profile.spec_compute_rate(TPU_V3, "conv") == 250e12
        assert dict(profile.meta)["source"] == "golden fixture"
        # the serialized document is canonical: re-serializing the loaded
        # profile reproduces the committed bytes
        doc = json.loads((FIXTURES / "golden.json").read_text())
        assert profile_to_doc(profile) == doc

    def test_golden_fixture_fingerprint_pinned(self):
        # fingerprints feed cache keys; silent drift would invalidate (or
        # worse, alias) every persisted plan keyed on this content
        profile = load_profile(FIXTURES / "golden.json")
        assert profile.fingerprint() == "9a1c19c5db2e016a"

    def test_analytic_round_trips_to_singleton(self):
        doc = profile_to_doc(ANALYTIC)
        assert doc["kind"] == "analytic"
        assert profile_from_doc(doc) is ANALYTIC

    def test_rejects_wrong_schema(self):
        with pytest.raises(ProfileError, match="schema"):
            profile_from_doc({"schema": "nope", "kind": "calibrated"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProfileError, match="kind"):
            profile_from_doc({"schema": PROFILE_SCHEMA, "kind": "mystic"})

    def test_rejects_specless_document(self):
        with pytest.raises(ProfileError, match="specs"):
            profile_from_doc({"schema": PROFILE_SCHEMA, "kind": "calibrated",
                              "name": "x", "specs": {}})


class TestResolveProfile:
    def test_none_and_name_resolve_analytic(self):
        assert resolve_profile(None) is ANALYTIC
        assert resolve_profile("analytic") is ANALYTIC
        assert resolve_profile("ANALYTIC") is ANALYTIC

    def test_profile_passes_through(self):
        profile = simple_profile()
        assert resolve_profile(profile) is profile

    def test_dict_parses_as_document(self):
        profile = simple_profile()
        assert resolve_profile(profile_to_doc(profile)) == profile

    def test_path_loads_file(self, tmp_path):
        profile = simple_profile()
        path = tmp_path / "p.json"
        save_profile(profile, path)
        assert resolve_profile(str(path)) == profile

    def test_bad_json_file_is_a_profile_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ProfileError, match="not valid JSON"):
            resolve_profile(str(path))

    def test_unresolvable_type_raises(self):
        with pytest.raises(ProfileError, match="cannot resolve"):
            resolve_profile(42)
