"""Hardware model: accelerator specs, groups, presets, profiles and the pairing tree."""

from .accelerator import AcceleratorGroup, AcceleratorSpec, make_group, merge_groups
from .cluster import GroupNode, bisection_tree, describe_tree, max_hierarchy_levels
from .presets import (
    BFLOAT16_BYTES,
    PAPER_BATCH,
    TPU_V2,
    TPU_V3,
    heterogeneous_array,
    homogeneous_array,
)
from .profile import (
    ANALYTIC,
    PROFILE_SCHEMA,
    AnalyticProfile,
    CalibratedProfile,
    HardwareProfile,
    ProfileError,
    ProfileMismatchError,
    SpecProfile,
    load_profile,
    profile_from_doc,
    profile_to_doc,
    resolve_profile,
    save_profile,
)

__all__ = [
    "ANALYTIC",
    "AcceleratorGroup",
    "AcceleratorSpec",
    "AnalyticProfile",
    "BFLOAT16_BYTES",
    "CalibratedProfile",
    "GroupNode",
    "HardwareProfile",
    "PAPER_BATCH",
    "PROFILE_SCHEMA",
    "ProfileError",
    "ProfileMismatchError",
    "SpecProfile",
    "TPU_V2",
    "TPU_V3",
    "bisection_tree",
    "describe_tree",
    "heterogeneous_array",
    "homogeneous_array",
    "load_profile",
    "make_group",
    "max_hierarchy_levels",
    "merge_groups",
    "profile_from_doc",
    "profile_to_doc",
    "resolve_profile",
    "save_profile",
]
