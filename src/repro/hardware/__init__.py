"""Hardware model: accelerator specs, groups, presets and the pairing tree."""

from .accelerator import AcceleratorGroup, AcceleratorSpec, make_group, merge_groups
from .cluster import GroupNode, bisection_tree, describe_tree, max_hierarchy_levels
from .presets import (
    BFLOAT16_BYTES,
    PAPER_BATCH,
    TPU_V2,
    TPU_V3,
    heterogeneous_array,
    homogeneous_array,
)

__all__ = [
    "AcceleratorGroup",
    "AcceleratorSpec",
    "BFLOAT16_BYTES",
    "GroupNode",
    "PAPER_BATCH",
    "TPU_V2",
    "TPU_V3",
    "bisection_tree",
    "describe_tree",
    "heterogeneous_array",
    "homogeneous_array",
    "make_group",
    "max_hierarchy_levels",
    "merge_groups",
]
