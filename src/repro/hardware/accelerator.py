"""Accelerator and accelerator-group hardware models.

The cost model (Section 4) needs two numbers per party: a compute density
``c_i`` (FLOP/s) and a network bandwidth ``b_i`` (bytes/s).  The simulator
additionally uses HBM capacity and memory bandwidth.  A *group* of
accelerators acts as a super-accelerator whose densities and bandwidths are
the sums of its members' — this is what makes the hierarchical (recursive)
partitioning of Section 5.1 compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

from ..digest import stable_digest


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator board (Table 7 row).

    All rates are in base SI units: FLOP/s and bytes/s.
    """

    name: str
    flops: float               # c_i, peak FLOP/s
    memory_bytes: float        # HBM capacity
    memory_bandwidth: float    # HBM bytes/s
    network_bandwidth: float   # b_i, link bytes/s

    def __post_init__(self) -> None:
        for field_name in ("flops", "memory_bytes", "memory_bandwidth", "network_bandwidth"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive for {self.name!r}")

    def fingerprint(self) -> str:
        """Stable content hash over every field the cost model reads.

        Two specs with the same fingerprint are interchangeable for planning,
        so the plan-service cache keys on this rather than object identity.
        """
        return stable_digest(
            {
                "name": self.name,
                "flops": self.flops,
                "memory_bytes": self.memory_bytes,
                "memory_bandwidth": self.memory_bandwidth,
                "network_bandwidth": self.network_bandwidth,
            }
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.flops / 1e12:.0f} TFLOPS, "
            f"{self.memory_bytes / 2**30:.0f} GiB HBM @ {self.memory_bandwidth / 1e9:.0f} GB/s, "
            f"net {self.network_bandwidth / 1e9:.2f} GB/s"
        )


@dataclass(frozen=True)
class AcceleratorGroup:
    """An ordered collection of accelerators acting as one party.

    Aggregation rule: a group's compute density and bandwidths are the sums
    over members.  This matches the paper's recursive treatment, where an
    "accelerator" in the two-party derivation may itself be a group.
    """

    members: Tuple[AcceleratorSpec, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("an AcceleratorGroup needs at least one member")

    # aggregates are over an immutable member tuple, so they are computed
    # once per group (cached_property stores into the instance __dict__,
    # which frozen dataclasses retain); the planner reads them per tree node
    @property
    def size(self) -> int:
        return len(self.members)

    @cached_property
    def flops(self) -> float:
        return sum(m.flops for m in self.members)

    @cached_property
    def memory_bytes(self) -> float:
        return sum(m.memory_bytes for m in self.members)

    @cached_property
    def memory_bandwidth(self) -> float:
        return sum(m.memory_bandwidth for m in self.members)

    @cached_property
    def network_bandwidth(self) -> float:
        return sum(m.network_bandwidth for m in self.members)

    @property
    def is_homogeneous(self) -> bool:
        return len({m.name for m in self.members}) == 1

    @cached_property
    def _signature(self) -> Tuple[Tuple[str, int], ...]:
        counts: dict = {}
        for m in self.members:
            counts[m.name] = counts.get(m.name, 0) + 1
        return tuple(sorted(counts.items()))

    def signature(self) -> Tuple[Tuple[str, int], ...]:
        """Hashable multiset of member types; used for plan/sim memoization."""
        return self._signature

    def fingerprint(self) -> str:
        """Stable content hash of the ordered member list.

        Member *order* is included: :func:`~repro.hardware.cluster.bisection_tree`
        sorts members itself, but two groups with different orderings are
        still distinct request inputs, and hashing the order keeps the
        fingerprint a pure function of the constructor arguments.
        """
        return stable_digest([m.fingerprint() for m in self.members])

    def __str__(self) -> str:
        parts = ", ".join(f"{n}x{c}" for n, c in self.signature())
        return f"Group[{parts}]"


def make_group(spec: AcceleratorSpec, count: int) -> AcceleratorGroup:
    """Convenience: a homogeneous group of ``count`` copies of ``spec``."""
    if count <= 0:
        raise ValueError("count must be positive")
    return AcceleratorGroup(tuple([spec] * count))


def merge_groups(*groups: AcceleratorGroup) -> AcceleratorGroup:
    members: list = []
    for g in groups:
        members.extend(g.members)
    return AcceleratorGroup(tuple(members))
