"""Hierarchical bisection of an accelerator array into a pairing tree.

The recursive partitioning of Section 5.1 works on two parties at a time: an
array of accelerators is bisected ``h`` times (the *hierarchy level* of
Section 6.4), and the two-group tensor-partitioning problem is solved at
every internal node of the resulting tree.

Split policy (heterogeneity-aware): members are sorted by descending compute
density; if the group mixes accelerator types, the split lands on the type
boundary closest to the midpoint, so a 128+128 TPU-v2/TPU-v3 array first
separates into a pure-v2 and a pure-v3 group — the only level where the
Eq. 10 ratio solver departs from 1/2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .accelerator import AcceleratorGroup, AcceleratorSpec
from .profile import HardwareProfile


@dataclass
class GroupNode:
    """One node of the pairing tree."""

    group: AcceleratorGroup
    left: Optional["GroupNode"] = None
    right: Optional["GroupNode"] = None
    level: int = 0  # root is level 0; its split is hierarchy level 1

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def __post_init__(self) -> None:
        if (self.left is None) != (self.right is None):
            raise ValueError("GroupNode must have either zero or two children")

    def depth(self) -> int:
        """Number of split levels below this node.

        Cached after the first call: the pairing tree is fully built by
        :func:`bisection_tree` before anyone asks for depths, and the
        hierarchy planner asks at every internal node.
        """
        cached = self.__dict__.get("_depth")
        if cached is None:
            if self.is_leaf:
                cached = 0
            else:
                assert self.left is not None and self.right is not None
                cached = 1 + max(self.left.depth(), self.right.depth())
            self.__dict__["_depth"] = cached
        return cached

    def internal_nodes(self) -> Iterator["GroupNode"]:
        if not self.is_leaf:
            yield self
            assert self.left is not None and self.right is not None
            yield from self.left.internal_nodes()
            yield from self.right.internal_nodes()

    def leaves(self) -> Iterator["GroupNode"]:
        if self.is_leaf:
            yield self
        else:
            assert self.left is not None and self.right is not None
            yield from self.left.leaves()
            yield from self.right.leaves()


def _split_members(
    members: Tuple[AcceleratorSpec, ...],
) -> Tuple[Tuple[AcceleratorSpec, ...], Tuple[AcceleratorSpec, ...]]:
    """Split a sorted member tuple into two non-empty halves."""
    n = len(members)
    mid = n // 2
    # candidate boundaries where the accelerator type changes
    boundaries = [i for i in range(1, n) if members[i - 1].name != members[i].name]
    if boundaries:
        cut = min(boundaries, key=lambda i: abs(i - mid))
    else:
        cut = mid
    return members[:cut], members[cut:]


def _split_interleaved(
    members: Tuple[AcceleratorSpec, ...],
) -> Tuple[Tuple[AcceleratorSpec, ...], Tuple[AcceleratorSpec, ...]]:
    """Heterogeneity-UNAWARE split: each half gets an even mix of types.

    Used by the grouping ablation: mixing types in every subgroup denies the
    ratio solver a clean fast-vs-slow boundary and models a naive placement.
    """
    return members[0::2], members[1::2]

#: available split policies for :func:`bisection_tree`
SPLIT_POLICIES = {
    "type-separated": _split_members,
    "interleaved": _split_interleaved,
}

#: pairing trees are pure functions of (sorted members, levels, policy);
#: AcceleratorSpec is a frozen value type, so identical arrays built at
#: different times share one tree.  The tree is read-only after
#: construction (planners only traverse it and memoize depths), and real
#: deployments use a handful of array shapes, so the cache stays tiny.
_TREE_CACHE: Dict[Tuple, GroupNode] = {}

#: same reasoning for the depth probe of :func:`max_hierarchy_levels`
_DEPTH_CACHE: Dict[Tuple[AcceleratorSpec, ...], int] = {}


def _member_order_key(profile: Optional[HardwareProfile]):
    """Sort key: descending *effective* compute density, name-stable.

    With no profile (or the analytic one) the key is the historical
    ``(-peak flops, name)``; a calibrated profile sorts by its per-spec
    effective default rate instead, so the pairing tree's fast/slow
    boundary reflects measured throughput.
    """
    if profile is None or getattr(profile, "is_analytic", False):
        return lambda m: (-m.flops, m.name)
    return lambda m: (-profile.spec_compute_rate(m), m.name)


def bisection_tree(array: AcceleratorGroup, levels: int,
                   policy: str = "type-separated",
                   profile: Optional[HardwareProfile] = None) -> GroupNode:
    """Build the pairing tree for ``levels`` hierarchy levels.

    A branch stops splitting early once it reaches a single accelerator, so
    requesting more levels than ``log2(len(array))`` saturates rather than
    failing — matching the flattening tail of Figure 8.

    ``policy`` selects how heterogeneous groups are halved:
    ``"type-separated"`` (default — the paper's implicit choice: v2 and v3
    part ways at the first split) or ``"interleaved"`` (the
    heterogeneity-unaware ablation).  ``profile`` (when calibrated) orders
    members by measured rather than peak compute density before splitting.
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    if policy not in SPLIT_POLICIES:
        raise ValueError(
            f"unknown split policy {policy!r}; available: {sorted(SPLIT_POLICIES)}"
        )
    split = SPLIT_POLICIES[policy]

    ordered = tuple(sorted(array.members, key=_member_order_key(profile)))
    cache_key = (ordered, levels, policy)
    cached = _TREE_CACHE.get(cache_key)
    if cached is not None:
        return cached

    def build(members: Tuple[AcceleratorSpec, ...], level: int) -> GroupNode:
        node = GroupNode(group=AcceleratorGroup(members), level=level)
        if level < levels and len(members) > 1:
            left_members, right_members = split(members)
            node.left = build(left_members, level + 1)
            node.right = build(right_members, level + 1)
        return node

    root = build(ordered, 0)
    _TREE_CACHE[cache_key] = root
    return root


def max_hierarchy_levels(array: AcceleratorGroup) -> int:
    """Deepest possible pairing tree for this array.

    Recurses over member tuples only — building the full node/group tree
    just to measure its depth costs O(n²) group constructions for an
    n-accelerator array.
    """
    split = SPLIT_POLICIES["type-separated"]
    ordered = tuple(sorted(array.members, key=lambda m: (-m.flops, m.name)))
    cached = _DEPTH_CACHE.get(ordered)
    if cached is not None:
        return cached

    def depth_of(members: Tuple[AcceleratorSpec, ...]) -> int:
        if len(members) <= 1:
            return 0
        left, right = split(members)
        return 1 + max(depth_of(left), depth_of(right))

    depth = depth_of(ordered)
    _DEPTH_CACHE[ordered] = depth
    return depth


def describe_tree(root: GroupNode, max_depth: int = 3) -> str:
    """Compact textual rendering of the top of the pairing tree."""
    lines: List[str] = []

    def visit(node: GroupNode, indent: int) -> None:
        if indent > max_depth:
            return
        lines.append("  " * indent + str(node.group))
        if not node.is_leaf:
            assert node.left is not None and node.right is not None
            visit(node.left, indent + 1)
            visit(node.right, indent + 1)

    visit(root, 0)
    return "\n".join(lines)
