"""Hardware presets: the TPU-v2 / TPU-v3 boards of Table 7.

Values follow Section 6.1 exactly:

* TPU-v2: 180 TFLOPS, 64 GB HBM, 2400 GB/s memory bandwidth;
* TPU-v3: 420 TFLOPS, 128 GB HBM, 4800 GB/s memory bandwidth (assumed);
* network data rate 8 Gb/s for TPU-v2 and 16 Gb/s for TPU-v3
  (the paper scales the 2 Gb/s-per-core VPC quota by core count).

Gb/s are converted to bytes/s here so the rest of the library never touches
bit units.
"""

from __future__ import annotations

from .accelerator import AcceleratorSpec, AcceleratorGroup, make_group, merge_groups

GB = 1e9
GIB = 2**30

TPU_V2 = AcceleratorSpec(
    name="tpu-v2",
    flops=180e12,
    memory_bytes=64 * GIB,
    memory_bandwidth=2400 * GB,
    network_bandwidth=8e9 / 8,   # 8 Gb/s -> 1 GB/s
)

TPU_V3 = AcceleratorSpec(
    name="tpu-v3",
    flops=420e12,
    memory_bytes=128 * GIB,
    memory_bandwidth=4800 * GB,
    network_bandwidth=16e9 / 8,  # 16 Gb/s -> 2 GB/s
)

#: spec registry by name: how CLI array strings and calibration exports
#: (whose per-hardware keys are spec names) resolve to concrete specs
KNOWN_SPECS = {
    TPU_V2.name: TPU_V2,
    TPU_V3.name: TPU_V3,
}

#: bfloat16, "Google's 16-bit floating point data format for training"
BFLOAT16_BYTES = 2

#: mini-batch size used throughout Section 6 (except Figure 7, which uses 128)
PAPER_BATCH = 512


def heterogeneous_array(n_v2: int = 128, n_v3: int = 128) -> AcceleratorGroup:
    """The Section 6.2 array: 128 TPU-v2 + 128 TPU-v3 boards."""
    return merge_groups(make_group(TPU_V2, n_v2), make_group(TPU_V3, n_v3))


def homogeneous_array(n: int = 128) -> AcceleratorGroup:
    """The Section 6.3 array: 128 TPU-v3 boards."""
    return make_group(TPU_V3, n)
