"""Pluggable hardware profiles: the seam between specs and costs.

Every cost the planner or the simulator computes flows through a
:class:`HardwareProfile`: given an accelerator group, the profile answers
"what rates does this hardware *actually* deliver?".  Two implementations:

* :class:`AnalyticProfile` — peak datasheet rates (Table 7), exactly the
  pre-profile behavior.  It returns the group's own aggregate numbers
  unchanged, so plans under the default profile are bit-identical to the
  historical spec-driven ones.
* :class:`CalibratedProfile` — *effective* rates fitted from measurements
  (:mod:`repro.calib`): per-op-kind compute densities, a size-dependent
  network bandwidth-efficiency curve, a per-transfer latency constant and
  a memory-bandwidth derate, one :class:`SpecProfile` per accelerator spec.

The calibrated communication model is an alpha-beta (latency + inverse
bandwidth) law with a size-dependent efficiency::

    time(S) = latency + S / (peak_bw * efficiency(S))

Inside the Eq. 10 ratio solve the efficiency is evaluated at the
*alpha-independent* base tensor size of the transfer, so each party's cost
stays affine/quadratic in the ratio and the closed forms of
:mod:`repro.core.ratio` keep applying — the latency constant only adds an
affine (constant) term per transfer.

Profiles serialize as ``repro.hardware.profile/v1`` JSON documents
(:func:`profile_to_doc` / :func:`profile_from_doc`); the document digest is
the profile's :meth:`~CalibratedProfile.fingerprint`, which the plan service
folds into every request fingerprint so calibrated and analytic plans never
share a cache entry.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple

from ..digest import stable_digest
from ..ioutil import atomic_write_text
from .accelerator import AcceleratorGroup, AcceleratorSpec

#: schema tag of the profile JSON document
PROFILE_SCHEMA = "repro.hardware.profile/v1"

#: the op-kind fallback: a profile must always answer this kind
DEFAULT_KIND = "default"


class ProfileError(ValueError):
    """Malformed profile document or fit input."""


class ProfileMismatchError(ProfileError):
    """A profile was asked about hardware it has no calibration for."""


@dataclass(frozen=True)
class SpecProfile:
    """Effective-rate model of one accelerator spec (one Table 7 row).

    ``compute_rates`` maps op kinds (``conv``, ``fc``, …) to effective
    FLOP/s per board; a ``default`` entry is required and answers unknown
    kinds.  ``bandwidth_efficiency`` is a piecewise log-linear curve of
    ``(transfer_bytes, efficiency)`` points multiplying the spec's peak
    network bandwidth (empty curve = 1.0 everywhere); efficiencies clamp at
    the first/last point outside the sampled range.  ``transfer_latency_s``
    is the fixed per-transfer cost (the alpha of an alpha-beta model) and
    ``memory_bandwidth_scale`` derates the HBM stream in the simulator.
    """

    spec: str
    compute_rates: Tuple[Tuple[str, float], ...]
    bandwidth_efficiency: Tuple[Tuple[float, float], ...] = ()
    transfer_latency_s: float = 0.0
    memory_bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        rates = dict(self.compute_rates)
        if DEFAULT_KIND not in rates:
            raise ProfileError(
                f"spec profile {self.spec!r} needs a {DEFAULT_KIND!r} compute rate"
            )
        for kind, rate in rates.items():
            if not (isinstance(rate, (int, float)) and rate > 0):
                raise ProfileError(
                    f"compute rate for {self.spec!r}/{kind!r} must be positive"
                )
        if self.transfer_latency_s < 0:
            raise ProfileError("transfer_latency_s must be non-negative")
        if self.memory_bandwidth_scale <= 0:
            raise ProfileError("memory_bandwidth_scale must be positive")
        points = tuple(sorted((float(s), float(e))
                              for s, e in self.bandwidth_efficiency))
        for size, eff in points:
            if size <= 0 or not 0 < eff <= 1.0:
                raise ProfileError(
                    f"bandwidth efficiency point ({size}, {eff}) of "
                    f"{self.spec!r} must have size > 0 and efficiency in (0, 1]"
                )
        object.__setattr__(self, "bandwidth_efficiency", points)
        object.__setattr__(self, "compute_rates",
                           tuple(sorted(rates.items())))

    def compute_rate(self, kind: str = DEFAULT_KIND) -> float:
        """Effective FLOP/s of one board for ``kind`` ops."""
        rates = dict(self.compute_rates)
        return rates.get(kind, rates[DEFAULT_KIND])

    def efficiency(self, nbytes: float) -> float:
        """Bandwidth efficiency for a transfer of ``nbytes`` (log-linear)."""
        points = self.bandwidth_efficiency
        if not points:
            return 1.0
        if nbytes <= points[0][0]:
            return points[0][1]
        if nbytes >= points[-1][0]:
            return points[-1][1]
        for (s0, e0), (s1, e1) in zip(points, points[1:]):
            if s0 <= nbytes <= s1:
                if s1 == s0:
                    return e1
                frac = (math.log(nbytes) - math.log(s0)) / \
                    (math.log(s1) - math.log(s0))
                return e0 + frac * (e1 - e0)
        return points[-1][1]  # pragma: no cover - covered by the clamps


class AnalyticProfile:
    """Peak datasheet rates: the historical "spec == cost model" behavior.

    Every method returns the group's own aggregate number unchanged (and a
    zero latency constant), so the cost arithmetic downstream is
    bit-identical to the pre-profile code paths.
    """

    name = "analytic"
    is_analytic = True

    def compute_rate(self, group: AcceleratorGroup,
                     kind: str = DEFAULT_KIND) -> float:
        return group.flops

    def spec_compute_rate(self, spec: AcceleratorSpec,
                          kind: str = DEFAULT_KIND) -> float:
        return spec.flops

    def network_bandwidth(self, group: AcceleratorGroup,
                          nbytes: Optional[float] = None) -> float:
        return group.network_bandwidth

    def transfer_latency_s(self, group: AcceleratorGroup) -> float:
        return 0.0

    def memory_bandwidth(self, group: AcceleratorGroup) -> float:
        return group.memory_bandwidth

    def validate_array(self, group: AcceleratorGroup) -> None:
        """Peak rates exist for every spec; nothing to check."""

    def fingerprint(self) -> str:
        return stable_digest({"schema": PROFILE_SCHEMA, "kind": "analytic"})

    def __repr__(self) -> str:
        return "AnalyticProfile()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnalyticProfile)

    def __hash__(self) -> int:
        return hash(("AnalyticProfile",))


#: the process-wide default profile (stateless, safe to share)
ANALYTIC = AnalyticProfile()


@dataclass(frozen=True)
class CalibratedProfile:
    """Measured effective rates, one :class:`SpecProfile` per spec name.

    Group-level aggregation mirrors :class:`AcceleratorGroup`'s summation
    rule: a group's effective compute rate (per kind) and its effective
    bandwidth (at a given transfer size) are sums over members; the
    latency constant of a group is the slowest member's (a transfer
    completes when the slowest party finishes its fixed overhead).
    """

    name: str
    specs: Tuple[SpecProfile, ...]
    #: provenance strings (fit source, sample counts, …); excluded from
    #: nothing — they are part of the document and the fingerprint
    meta: Tuple[Tuple[str, str], ...] = ()

    is_analytic = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("a calibrated profile needs a name")
        if not self.specs:
            raise ProfileError(f"profile {self.name!r} calibrates no specs")
        by_name = {}
        for sp in self.specs:
            if sp.spec in by_name:
                raise ProfileError(
                    f"profile {self.name!r} has duplicate spec {sp.spec!r}"
                )
            by_name[sp.spec] = sp
        object.__setattr__(self, "specs",
                           tuple(sorted(self.specs, key=lambda s: s.spec)))
        object.__setattr__(self, "meta", tuple(sorted(self.meta)))

    # ------------------------------------------------------------------
    def spec_names(self) -> Tuple[str, ...]:
        return tuple(sp.spec for sp in self.specs)

    def _spec(self, name: str) -> SpecProfile:
        for sp in self.specs:
            if sp.spec == name:
                return sp
        raise ProfileMismatchError(
            f"profile {self.name!r} has no calibration for spec {name!r}; "
            f"covered: {', '.join(self.spec_names())}"
        )

    def validate_array(self, group: AcceleratorGroup) -> None:
        """Raise :class:`ProfileMismatchError` unless every member is covered."""
        missing = sorted({m.name for m in group.members}
                         - set(self.spec_names()))
        if missing:
            raise ProfileMismatchError(
                f"profile {self.name!r} has no calibration for accelerator "
                f"spec(s) {', '.join(missing)}; covered: "
                f"{', '.join(self.spec_names())}"
            )

    # -- group-level effective rates -----------------------------------
    def compute_rate(self, group: AcceleratorGroup,
                     kind: str = DEFAULT_KIND) -> float:
        return sum(self._spec(m.name).compute_rate(kind)
                   for m in group.members)

    def spec_compute_rate(self, spec: AcceleratorSpec,
                          kind: str = DEFAULT_KIND) -> float:
        return self._spec(spec.name).compute_rate(kind)

    def network_bandwidth(self, group: AcceleratorGroup,
                          nbytes: Optional[float] = None) -> float:
        if nbytes is None:
            nbytes = float("inf")  # asymptotic efficiency (last curve point)
        return sum(m.network_bandwidth * self._spec(m.name).efficiency(nbytes)
                   for m in group.members)

    def transfer_latency_s(self, group: AcceleratorGroup) -> float:
        return max(self._spec(m.name).transfer_latency_s
                   for m in group.members)

    def memory_bandwidth(self, group: AcceleratorGroup) -> float:
        return sum(m.memory_bandwidth * self._spec(m.name).memory_bandwidth_scale
                   for m in group.members)

    def fingerprint(self) -> str:
        return stable_digest(profile_to_doc(self))

    def __str__(self) -> str:
        return f"CalibratedProfile[{self.name}: {', '.join(self.spec_names())}]"


# ----------------------------------------------------------------------
# serialization: repro.hardware.profile/v1
# ----------------------------------------------------------------------

def profile_to_doc(profile) -> Dict:
    """The ``repro.hardware.profile/v1`` JSON document of a profile."""
    if getattr(profile, "is_analytic", False):
        return {"schema": PROFILE_SCHEMA, "kind": "analytic",
                "name": "analytic"}
    specs = {}
    for sp in profile.specs:
        specs[sp.spec] = {
            "compute_rates": dict(sp.compute_rates),
            "bandwidth_efficiency": [list(p) for p in sp.bandwidth_efficiency],
            "transfer_latency_s": sp.transfer_latency_s,
            "memory_bandwidth_scale": sp.memory_bandwidth_scale,
        }
    return {
        "schema": PROFILE_SCHEMA,
        "kind": "calibrated",
        "name": profile.name,
        "specs": specs,
        "meta": dict(profile.meta),
    }


def profile_from_doc(doc) -> "HardwareProfile":
    """Parse a ``repro.hardware.profile/v1`` document (tolerant of extras)."""
    if not isinstance(doc, dict):
        raise ProfileError("profile document must be a JSON object")
    schema = doc.get("schema")
    if schema != PROFILE_SCHEMA:
        raise ProfileError(
            f"unsupported profile schema {schema!r}; expected {PROFILE_SCHEMA!r}"
        )
    kind = doc.get("kind", "calibrated")
    if kind == "analytic":
        return ANALYTIC
    if kind != "calibrated":
        raise ProfileError(f"unknown profile kind {kind!r}")
    specs_doc = doc.get("specs")
    if not isinstance(specs_doc, dict) or not specs_doc:
        raise ProfileError("calibrated profile needs a non-empty 'specs' map")
    specs = []
    for name, sd in specs_doc.items():
        if not isinstance(sd, dict):
            raise ProfileError(f"spec entry {name!r} must be an object")
        rates = sd.get("compute_rates")
        if not isinstance(rates, dict):
            raise ProfileError(f"spec entry {name!r} needs 'compute_rates'")
        specs.append(SpecProfile(
            spec=str(name),
            compute_rates=tuple((str(k), float(v)) for k, v in rates.items()),
            bandwidth_efficiency=tuple(
                (float(s), float(e))
                for s, e in sd.get("bandwidth_efficiency", ())),
            transfer_latency_s=float(sd.get("transfer_latency_s", 0.0)),
            memory_bandwidth_scale=float(sd.get("memory_bandwidth_scale", 1.0)),
        ))
    meta = doc.get("meta", {})
    if not isinstance(meta, dict):
        raise ProfileError("'meta' must be an object")
    return CalibratedProfile(
        name=str(doc.get("name", "calibrated")),
        specs=tuple(specs),
        meta=tuple((str(k), str(v)) for k, v in meta.items()),
    )


def save_profile(profile, path) -> None:
    """Write a profile as pretty-printed v1 JSON (atomically)."""
    text = json.dumps(profile_to_doc(profile), indent=2, sort_keys=True)
    atomic_write_text(path, text + "\n")


def load_profile(path) -> "HardwareProfile":
    """Read a ``repro.hardware.profile/v1`` JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ProfileError(f"{path}: not valid JSON ({exc})") from exc
    return profile_from_doc(doc)


def resolve_profile(value) -> "HardwareProfile":
    """Coerce ``None`` / name / path / document / profile into a profile.

    ``None`` and ``"analytic"`` mean peak rates; a dict is parsed as a v1
    document; any other string is treated as a JSON file path.
    """
    if value is None or value is ANALYTIC:
        return ANALYTIC
    if isinstance(value, (AnalyticProfile, CalibratedProfile)):
        return value
    if isinstance(value, dict):
        return profile_from_doc(value)
    if isinstance(value, str):
        if value.lower() == "analytic":
            return ANALYTIC
        return load_profile(value)
    raise ProfileError(f"cannot resolve a profile from {type(value).__name__}")


class HardwareProfile(Protocol):
    """Structural interface every profile implementation satisfies."""

    name: str
    is_analytic: bool

    def compute_rate(self, group: AcceleratorGroup,
                     kind: str = DEFAULT_KIND) -> float: ...
    def spec_compute_rate(self, spec: AcceleratorSpec,
                          kind: str = DEFAULT_KIND) -> float: ...
    def network_bandwidth(self, group: AcceleratorGroup,
                          nbytes: Optional[float] = None) -> float: ...
    def transfer_latency_s(self, group: AcceleratorGroup) -> float: ...
    def memory_bandwidth(self, group: AcceleratorGroup) -> float: ...
    def validate_array(self, group: AcceleratorGroup) -> None: ...
    def fingerprint(self) -> str: ...
