"""Hierarchical (multi-level) numeric execution of CNN training.

The CONV counterpart of :mod:`repro.numeric.hierarchical`: nested partition
types over a symmetric pairing tree, with convolution kernels in place of
mat-muls.  The recursion is structurally identical — Type-I splits the
batch axis, Type-II the input-channel axis (of both F and W), Type-III the
output-channel axis of W — which is itself the point: Section 3.3's claim
that CONV changes the arithmetic but not the partition structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.types import PartitionType
from .conv_partitioned import ConvLayerPlan
from .conv_reference import (
    CnnSpec,
    ConvTrace,
    conv_forward,
    conv_input_grad,
    conv_weight_grad,
)
from .hierarchical import HierCommLog
from .reference import relu, relu_grad
from .sharding import split_point

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def _split_axis(t: np.ndarray, axis: int, ratio: float):
    cut = split_point(t.shape[axis], ratio)
    index_lo = [slice(None)] * t.ndim
    index_hi = [slice(None)] * t.ndim
    index_lo[axis] = slice(0, cut)
    index_hi[axis] = slice(cut, t.shape[axis])
    return t[tuple(index_lo)], t[tuple(index_hi)]


class HierarchicalCnnExecutor:
    """Execute one CNN training step over a symmetric pairing tree.

    ``level_plans[l][k]`` assigns layer ``k`` a (type, ratio) at level
    ``l``; the same plan applies across a level's sibling nodes.
    """

    def __init__(
        self,
        spec: CnnSpec,
        weights: Sequence[np.ndarray],
        level_plans: Sequence[Sequence[ConvLayerPlan]],
        batch: int,
    ):
        for l, plans in enumerate(level_plans):
            if len(plans) != spec.n_layers:
                raise ValueError(
                    f"level {l} has {len(plans)} assignments for "
                    f"{spec.n_layers} layers"
                )
        self.spec = spec
        self.weights = [w.astype(np.float64) for w in weights]
        self.level_plans = [list(p) for p in level_plans]
        self.batch = batch
        self.n_levels = len(level_plans)

    @property
    def n_leaf_devices(self) -> int:
        return 2 ** self.n_levels

    # -- recursive kernels ------------------------------------------------
    def _forward(self, level: int, k: int, a: np.ndarray, w: np.ndarray,
                 log: HierCommLog) -> np.ndarray:
        layer = self.spec.layers[k]
        if level == self.n_levels:
            return conv_forward(a, w, layer.stride, layer.padding)
        plan = self.level_plans[level][k]
        name = f"cv{k}"
        if plan.ptype is I:
            a0, a1 = _split_axis(a, 0, plan.ratio)
            z0 = self._forward(level + 1, k, a0, w, log)
            z1 = self._forward(level + 1, k, a1, w, log)
            return np.concatenate([z0, z1], axis=0)
        if plan.ptype is II:
            a0, a1 = _split_axis(a, 1, plan.ratio)
            w0, w1 = _split_axis(w, 0, plan.ratio)
            z0 = self._forward(level + 1, k, a0, w0, log)
            z1 = self._forward(level + 1, k, a1, w1, log)
            log.record(level, name, z0.size + z1.size)
            return z0 + z1
        w0, w1 = _split_axis(w, 1, plan.ratio)
        z0 = self._forward(level + 1, k, a, w0, log)
        z1 = self._forward(level + 1, k, a, w1, log)
        return np.concatenate([z0, z1], axis=1)

    def _backward(self, level: int, k: int, e: np.ndarray, w: np.ndarray,
                  x_shape: Tuple[int, int, int, int],
                  log: HierCommLog) -> np.ndarray:
        layer = self.spec.layers[k]
        if level == self.n_levels:
            return conv_input_grad(e, w, x_shape, layer.stride, layer.padding)
        plan = self.level_plans[level][k]
        name = f"cv{k}"
        b, c, h, wd = x_shape
        if plan.ptype is I:
            e0, e1 = _split_axis(e, 0, plan.ratio)
            cut = split_point(b, plan.ratio)
            p0 = self._backward(level + 1, k, e0, w, (cut, c, h, wd), log)
            p1 = self._backward(level + 1, k, e1, w, (b - cut, c, h, wd), log)
            return np.concatenate([p0, p1], axis=0)
        if plan.ptype is II:
            w0, w1 = _split_axis(w, 0, plan.ratio)
            cut = split_point(c, plan.ratio)
            p0 = self._backward(level + 1, k, e, w0, (b, cut, h, wd), log)
            p1 = self._backward(level + 1, k, e, w1, (b, c - cut, h, wd), log)
            return np.concatenate([p0, p1], axis=1)
        e0, e1 = _split_axis(e, 1, plan.ratio)
        w0, w1 = _split_axis(w, 1, plan.ratio)
        p0 = self._backward(level + 1, k, e0, w0, x_shape, log)
        p1 = self._backward(level + 1, k, e1, w1, x_shape, log)
        log.record(level, name, p0.size + p1.size)
        return p0 + p1

    def _gradient(self, level: int, k: int, a: np.ndarray, e: np.ndarray,
                  w_shape, log: HierCommLog) -> np.ndarray:
        layer = self.spec.layers[k]
        if level == self.n_levels:
            return conv_weight_grad(a, e, w_shape, layer.stride, layer.padding)
        plan = self.level_plans[level][k]
        name = f"cv{k}"
        c_in, c_out, kh, kw = w_shape
        if plan.ptype is I:
            a0, a1 = _split_axis(a, 0, plan.ratio)
            e0, e1 = _split_axis(e, 0, plan.ratio)
            g0 = self._gradient(level + 1, k, a0, e0, w_shape, log)
            g1 = self._gradient(level + 1, k, a1, e1, w_shape, log)
            log.record(level, name, g0.size + g1.size)
            return g0 + g1
        if plan.ptype is II:
            a0, a1 = _split_axis(a, 1, plan.ratio)
            cut = split_point(c_in, plan.ratio)
            g0 = self._gradient(level + 1, k, a0, e, (cut, c_out, kh, kw), log)
            g1 = self._gradient(level + 1, k, a1, e,
                                (c_in - cut, c_out, kh, kw), log)
            return np.concatenate([g0, g1], axis=0)
        e0, e1 = _split_axis(e, 1, plan.ratio)
        cut = split_point(c_out, plan.ratio)
        g0 = self._gradient(level + 1, k, a, e0, (c_in, cut, kh, kw), log)
        g1 = self._gradient(level + 1, k, a, e1,
                            (c_in, c_out - cut, kh, kw), log)
        return np.concatenate([g0, g1], axis=1)

    # -- one training step --------------------------------------------------
    def step(self, x: np.ndarray, target: np.ndarray):
        n = self.spec.n_layers
        log = HierCommLog()

        activations = [x.astype(np.float64)]
        pre_acts: List[np.ndarray] = []
        for k in range(n):
            z = self._forward(0, k, activations[-1], self.weights[k], log)
            pre_acts.append(z)
            activations.append(relu(z) if k < n - 1 else z)

        output = activations[-1]
        loss = 0.5 * float(np.sum((output - target) ** 2))

        errors: List[Optional[np.ndarray]] = [None] * n
        errors[n - 1] = output - target
        for k in range(n - 2, -1, -1):
            propagated = self._backward(
                0, k + 1, errors[k + 1], self.weights[k + 1],
                activations[k + 1].shape, log,
            )
            errors[k] = propagated * relu_grad(pre_acts[k])

        gradients = [
            self._gradient(0, k, activations[k], errors[k],
                           self.weights[k].shape, log)
            for k in range(n)
        ]
        trace = ConvTrace(
            activations=activations,
            pre_activations=pre_acts,
            errors=[e for e in errors if e is not None],
            gradients=gradients,
            loss=loss,
        )
        return trace, log
