"""Two-device partitioned MLP training: a numeric execution of Section 3.

This module *executes* the three basic tensor-partitioning types with real
numpy matrices on two simulated devices, including every exchange the paper
derives:

* the per-type tensor layouts (which device holds which rows/columns of
  F, W, E — Figure 1);
* the intra-layer partial-sum exchanges of Table 4 (gradient psums under
  Type-I, forward psums under Type-II, backward psums under Type-III);
* the inter-layer re-sharding of the boundary tensors between two adjacent
  layers' types, whose transferred element counts realize Table 5.

The executor counts every remotely fetched element, so the tests can check
the analytic communication model against an actual execution, and compare
the computed activations/gradients bit-for-bit (float64) against the
single-device reference of :mod:`repro.numeric.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.types import PartitionType
from .reference import MlpSpec, relu, relu_grad
from .sharding import AxisShard, reassemble, split_point, take

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


# ----------------------------------------------------------------------
# layouts: how a boundary tensor of shape (B, D) is distributed
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Layout:
    """Distribution of a (B, D) matrix over the two devices.

    ``kind`` is ``"full"`` (replicated), ``"row"`` (batch-sharded) or
    ``"col"`` (feature-sharded); ``shard`` carries the split for the
    sharded kinds.
    """

    kind: str
    shard: Optional[AxisShard] = None

    def __post_init__(self) -> None:
        if self.kind not in ("full", "row", "col"):
            raise ValueError(f"unknown layout kind {self.kind!r}")
        if (self.kind == "full") != (self.shard is None):
            raise ValueError("full layouts carry no shard; sharded layouts must")

    def owned_extent(self, device: int, shape: Tuple[int, int]) -> Tuple[int, int]:
        """(rows, cols) of the region this device owns."""
        rows, cols = shape
        if self.kind == "full":
            return rows, cols
        assert self.shard is not None
        size = self.shard.sizes[device]
        return (size, cols) if self.kind == "row" else (rows, size)

    def device_part(self, full: np.ndarray, device: int) -> np.ndarray:
        if self.kind == "full":
            return full
        assert self.shard is not None
        axis = 0 if self.kind == "row" else 1
        return take(full, self.shard, device, axis)


def overlap_elements(a: Layout, b: Layout, device: int,
                     shape: Tuple[int, int]) -> int:
    """Elements of ``shape`` a device owns under BOTH layouts.

    Used to count re-sharding traffic: what a device needs under the new
    layout minus what it already holds under the old one.
    """
    rows, cols = shape

    def ranges(layout: Layout) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        if layout.kind == "full":
            return (0, rows), (0, cols)
        assert layout.shard is not None
        sl = layout.shard.slice_of(device)
        if layout.kind == "row":
            return (sl.start, sl.stop), (0, cols)
        return (0, rows), (sl.start, sl.stop)

    (r0a, r1a), (c0a, c1a) = ranges(a)
    (r0b, r1b), (c0b, c1b) = ranges(b)
    row_overlap = max(0, min(r1a, r1b) - max(r0a, r0b))
    col_overlap = max(0, min(c1a, c1b) - max(c0a, c0b))
    return row_overlap * col_overlap


@dataclass
class CommLog:
    """Remotely fetched element counts, per category and device."""

    intra: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    inter_forward: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    inter_backward: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def record(self, table: Dict[str, Tuple[int, int]], key: str,
               d0: int, d1: int) -> None:
        prev = table.get(key, (0, 0))
        table[key] = (prev[0] + d0, prev[1] + d1)

    def total_elements(self) -> int:
        return sum(
            a + b
            for table in (self.intra, self.inter_forward, self.inter_backward)
            for a, b in table.values()
        )


# ----------------------------------------------------------------------
# per-layer partition state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayerPlanNumeric:
    """One layer's numeric partition: type + the integer split it induces."""

    ptype: PartitionType
    ratio: float

    def shard_for(self, batch: int, d_in: int, d_out: int) -> AxisShard:
        if self.ptype is I:
            return AxisShard(batch, split_point(batch, self.ratio))
        if self.ptype is II:
            return AxisShard(d_in, split_point(d_in, self.ratio))
        return AxisShard(d_out, split_point(d_out, self.ratio))

    def effective_alpha(self, batch: int, d_in: int, d_out: int) -> float:
        shard = self.shard_for(batch, d_in, d_out)
        return shard.split / shard.size


def input_layout(plan: LayerPlanNumeric, batch: int, d_in: int,
                 d_out: int) -> Layout:
    """Layout in which a layer consumes its input F_l (and holds A_l)."""
    shard = plan.shard_for(batch, d_in, d_out)
    if plan.ptype is I:
        return Layout("row", shard)
    if plan.ptype is II:
        return Layout("col", shard)
    return Layout("full")


def output_layout(plan: LayerPlanNumeric, batch: int, d_in: int,
                  d_out: int) -> Layout:
    """Layout in which a layer's output F_{l+1} materializes after forward
    (post psum-exchange for Type-II)."""
    shard = plan.shard_for(batch, d_in, d_out)
    if plan.ptype is I:
        return Layout("row", shard)
    if plan.ptype is II:
        return Layout("full")
    return Layout("col", shard)


def error_consumer_layout(plan: LayerPlanNumeric, batch: int, d_in: int,
                          d_out: int) -> Layout:
    """Layout in which a layer needs its output error E_{l+1}."""
    shard = plan.shard_for(batch, d_in, d_out)
    if plan.ptype is I:
        return Layout("row", shard)
    if plan.ptype is II:
        return Layout("full")
    return Layout("col", shard)


def error_producer_layout(plan: LayerPlanNumeric, batch: int, d_in: int,
                          d_out: int) -> Layout:
    """Layout of the propagated error P = E_{l+1} W^T after a layer's
    backward phase (post psum-exchange for Type-III)."""
    shard = plan.shard_for(batch, d_in, d_out)
    if plan.ptype is I:
        return Layout("row", shard)
    if plan.ptype is II:
        return Layout("col", shard)
    return Layout("full")


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
@dataclass
class PartitionedTrace:
    """Results of one partitioned training step, reassembled."""

    activations: List[np.ndarray]
    gradients: List[np.ndarray]
    loss: float
    comm: CommLog


class TwoDeviceExecutor:
    """Execute one training step of an MLP partitioned over two devices."""

    def __init__(
        self,
        spec: MlpSpec,
        weights: Sequence[np.ndarray],
        plan: Sequence[LayerPlanNumeric],
        batch: int,
    ):
        if len(plan) != spec.n_layers:
            raise ValueError(
                f"plan has {len(plan)} entries for {spec.n_layers} layers"
            )
        self.spec = spec
        self.plan = list(plan)
        self.batch = batch
        self.weights = [w.astype(np.float64) for w in weights]
        self._dims = [
            (batch, spec.widths[k], spec.widths[k + 1])
            for k in range(spec.n_layers)
        ]

    # -- helpers --------------------------------------------------------
    def _weight_parts(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Each device's shard of W_k per the layer's type (Figure 1)."""
        plan = self.plan[k]
        w = self.weights[k]
        if plan.ptype is I:
            return w, w  # replicated
        shard = plan.shard_for(*self._dims[k])
        axis = 0 if plan.ptype is II else 1
        return take(w, shard, 0, axis), take(w, shard, 1, axis)

    def _reshard(
        self,
        full: np.ndarray,
        src: Layout,
        dst: Layout,
        log_table: Dict[str, Tuple[int, int]],
        log: CommLog,
        key: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert a boundary tensor between layouts, counting fetches."""
        shape = (full.shape[0], full.shape[1])
        fetches = []
        for device in (0, 1):
            needed_rows, needed_cols = dst.owned_extent(device, shape)
            needed = needed_rows * needed_cols
            fetches.append(needed - overlap_elements(src, dst, device, shape))
        log.record(log_table, key, fetches[0], fetches[1])
        return dst.device_part(full, 0), dst.device_part(full, 1)

    # -- the step -------------------------------------------------------
    def step(self, x: np.ndarray, target: np.ndarray) -> PartitionedTrace:
        n = self.spec.n_layers
        log = CommLog()

        # forward ------------------------------------------------------
        full_acts: List[np.ndarray] = [x.astype(np.float64)]
        consumed_parts: List[Tuple[np.ndarray, np.ndarray]] = []
        pre_acts_full: List[np.ndarray] = []
        producer_layout = Layout("full")  # network input is replicated

        for k in range(n):
            plan = self.plan[k]
            dims = self._dims[k]
            in_layout = input_layout(plan, *dims)
            a0, a1 = self._reshard(
                full_acts[-1], producer_layout, in_layout,
                log.inter_forward, log, f"boundary{k}",
            )
            consumed_parts.append((a0, a1))
            w0, w1 = self._weight_parts(k)

            if plan.ptype is II:
                # partial products over the split reduction dimension
                z0 = a0 @ w0
                z1 = a1 @ w1
                # intra-layer exchange: each device fetches the peer's psum
                log.record(log.intra, f"layer{k}", z1.size, z0.size)
                z_full = z0 + z1
            else:
                z0 = a0 @ w0
                z1 = a1 @ w1
                axis = 0 if plan.ptype is I else 1
                z_full = reassemble(z0, z1, axis)

            pre_acts_full.append(z_full)
            activated = relu(z_full) if k < n - 1 else z_full
            full_acts.append(activated)
            producer_layout = output_layout(plan, *dims)

        output = full_acts[-1]
        loss = 0.5 * float(np.sum((output - target) ** 2))

        # backward + gradient -------------------------------------------
        gradients: List[Optional[np.ndarray]] = [None] * n
        err_full = output - target  # dL/dZ_{n-1}
        err_layout = Layout("full")  # the loss produces it replicated

        for k in range(n - 1, -1, -1):
            plan = self.plan[k]
            dims = self._dims[k]
            need_layout = error_consumer_layout(plan, *dims)
            e0, e1 = self._reshard(
                err_full, err_layout, need_layout,
                log.inter_backward, log, f"boundary{k + 1}",
            )
            a0, a1 = consumed_parts[k]
            w0, w1 = self._weight_parts(k)

            # gradient phase: ΔW = F^T E
            if plan.ptype is I:
                g0 = a0.T @ e0
                g1 = a1.T @ e1
                # Table 4 Type-I: both devices fetch the peer's ΔW psum
                log.record(log.intra, f"layer{k}", g1.size, g0.size)
                gradients[k] = g0 + g1
            elif plan.ptype is II:
                g0 = a0.T @ e0
                g1 = a1.T @ e1
                gradients[k] = reassemble(g0, g1, axis=0)
            else:
                g0 = a0.T @ e0
                g1 = a1.T @ e1
                gradients[k] = reassemble(g0, g1, axis=1)

            if k == 0:
                break

            # backward phase: P = E W^T, then the ReLU mask of layer k-1
            if plan.ptype is III:
                p0 = e0 @ w0.T
                p1 = e1 @ w1.T
                # Table 4 Type-III: exchange the E_l partial sums
                log.record(log.intra, f"layer{k}", p1.size, p0.size)
                p_full = p0 + p1
            elif plan.ptype is II:
                p0 = e0 @ w0.T
                p1 = e1 @ w1.T
                p_full = reassemble(p0, p1, axis=1)
            else:
                p0 = e0 @ w0.T
                p1 = e1 @ w1.T
                p_full = reassemble(p0, p1, axis=0)

            err_full = p_full * relu_grad(pre_acts_full[k - 1])
            err_layout = error_producer_layout(plan, *dims)

        return PartitionedTrace(
            activations=full_acts,
            gradients=[g for g in gradients if g is not None],
            loss=loss,
            comm=log,
        )
