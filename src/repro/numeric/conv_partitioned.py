"""Two-device partitioned CNN training: Section 3.3 executed.

The FC executor of :mod:`repro.numeric.two_device` demonstrates the three
partitioning types on matrices; this module does the same for convolutional
layers, where the partitionable dimensions are the batch and the
input/output *channel* axes and the spatial extents ride along as the
paper's "meta dimensions".  Layouts and communication counting reuse the FC
machinery on the (batch, channel) grid, scaled by the spatial size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.types import PartitionType
from .conv_reference import (
    CnnSpec,
    ConvTrace,
    conv_forward,
    conv_input_grad,
    conv_weight_grad,
)
from .reference import relu, relu_grad
from .sharding import AxisShard, reassemble, split_point, take
from .two_device import CommLog, Layout, overlap_elements

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


@dataclass(frozen=True)
class ConvLayerPlan:
    """One CONV layer's partition: type + ratio (integer split derived)."""

    ptype: PartitionType
    ratio: float

    def shard_for(self, batch: int, c_in: int, c_out: int) -> AxisShard:
        if self.ptype is I:
            return AxisShard(batch, split_point(batch, self.ratio))
        if self.ptype is II:
            return AxisShard(c_in, split_point(c_in, self.ratio))
        return AxisShard(c_out, split_point(c_out, self.ratio))

    def effective_alpha(self, batch: int, c_in: int, c_out: int) -> float:
        shard = self.shard_for(batch, c_in, c_out)
        return shard.split / shard.size


def _conv_input_layout(plan: ConvLayerPlan, batch, c_in, c_out) -> Layout:
    shard = plan.shard_for(batch, c_in, c_out)
    if plan.ptype is I:
        return Layout("row", shard)
    if plan.ptype is II:
        return Layout("col", shard)
    return Layout("full")


def _conv_output_layout(plan: ConvLayerPlan, batch, c_in, c_out) -> Layout:
    shard = plan.shard_for(batch, c_in, c_out)
    if plan.ptype is I:
        return Layout("row", shard)
    if plan.ptype is II:
        return Layout("full")
    return Layout("col", shard)


def _error_consumer_layout(plan: ConvLayerPlan, batch, c_in, c_out) -> Layout:
    return _conv_output_layout(plan, batch, c_in, c_out)


def _error_producer_layout(plan: ConvLayerPlan, batch, c_in, c_out) -> Layout:
    shard = plan.shard_for(batch, c_in, c_out)
    if plan.ptype is I:
        return Layout("row", shard)
    if plan.ptype is II:
        return Layout("col", shard)
    return Layout("full")


def _device_part4d(full: np.ndarray, layout: Layout, device: int) -> np.ndarray:
    """Slice a (B, C, H, W) tensor per a (batch, channel) layout."""
    if layout.kind == "full":
        return full
    assert layout.shard is not None
    axis = 0 if layout.kind == "row" else 1
    return take(full, layout.shard, device, axis)


class ConvTwoDeviceExecutor:
    """Execute one CNN training step partitioned over two devices."""

    def __init__(
        self,
        spec: CnnSpec,
        weights: Sequence[np.ndarray],
        plan: Sequence[ConvLayerPlan],
        batch: int,
    ):
        if len(plan) != spec.n_layers:
            raise ValueError(
                f"plan has {len(plan)} entries for {spec.n_layers} layers"
            )
        self.spec = spec
        self.plan = list(plan)
        self.batch = batch
        self.weights = [w.astype(np.float64) for w in weights]
        geoms = spec.geometries()
        #: (batch, c_in, c_out) per layer plus input/output spatial sizes
        self._dims = [
            (batch, spec.layers[k].in_channels, spec.layers[k].out_channels)
            for k in range(spec.n_layers)
        ]
        self._spatial_in = [g[1] * g[2] for g in geoms[:-1]]
        self._spatial_out = [g[1] * g[2] for g in geoms[1:]]

    def _weight_parts(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        plan = self.plan[k]
        w = self.weights[k]
        if plan.ptype is I:
            return w, w
        shard = plan.shard_for(*self._dims[k])
        axis = 0 if plan.ptype is II else 1
        return take(w, shard, 0, axis), take(w, shard, 1, axis)

    def _reshard4d(
        self,
        full: np.ndarray,
        src: Layout,
        dst: Layout,
        log_table: Dict[str, Tuple[int, int]],
        log: CommLog,
        key: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-layout a (B, C, H, W) tensor, counting fetched elements."""
        b, c = full.shape[0], full.shape[1]
        spatial = full.shape[2] * full.shape[3]
        fetches = []
        for device in (0, 1):
            rows, cols = dst.owned_extent(device, (b, c))
            needed = rows * cols
            owned = overlap_elements(src, dst, device, (b, c))
            fetches.append((needed - owned) * spatial)
        log.record(log_table, key, fetches[0], fetches[1])
        return _device_part4d(full, dst, 0), _device_part4d(full, dst, 1)

    def step(self, x: np.ndarray,
             target: np.ndarray) -> Tuple[ConvTrace, CommLog]:
        n = self.spec.n_layers
        log = CommLog()

        full_acts: List[np.ndarray] = [x.astype(np.float64)]
        consumed: List[Tuple[np.ndarray, np.ndarray]] = []
        pre_acts: List[np.ndarray] = []
        producer = Layout("full")

        for k in range(n):
            plan = self.plan[k]
            layer = self.spec.layers[k]
            in_layout = _conv_input_layout(plan, *self._dims[k])
            a0, a1 = self._reshard4d(full_acts[-1], producer, in_layout,
                                     log.inter_forward, log, f"boundary{k}")
            consumed.append((a0, a1))
            w0, w1 = self._weight_parts(k)

            z0 = conv_forward(a0, w0, layer.stride, layer.padding)
            z1 = conv_forward(a1, w1, layer.stride, layer.padding)
            if plan.ptype is II:
                log.record(log.intra, f"layer{k}", z1.size, z0.size)
                z_full = z0 + z1
            else:
                axis = 0 if plan.ptype is I else 1
                z_full = reassemble(z0, z1, axis)

            pre_acts.append(z_full)
            full_acts.append(relu(z_full) if k < n - 1 else z_full)
            producer = _conv_output_layout(plan, *self._dims[k])

        output = full_acts[-1]
        loss = 0.5 * float(np.sum((output - target) ** 2))

        gradients: List[Optional[np.ndarray]] = [None] * n
        err_full = output - target
        err_layout = Layout("full")

        for k in range(n - 1, -1, -1):
            plan = self.plan[k]
            layer = self.spec.layers[k]
            need = _error_consumer_layout(plan, *self._dims[k])
            e0, e1 = self._reshard4d(err_full, err_layout, need,
                                     log.inter_backward, log, f"boundary{k + 1}")
            a0, a1 = consumed[k]
            w0, w1 = self._weight_parts(k)

            g0 = conv_weight_grad(a0, e0, w0.shape, layer.stride, layer.padding)
            g1 = conv_weight_grad(a1, e1, w1.shape, layer.stride, layer.padding)
            if plan.ptype is I:
                log.record(log.intra, f"layer{k}", g1.size, g0.size)
                gradients[k] = g0 + g1
            elif plan.ptype is II:
                gradients[k] = reassemble(g0, g1, axis=0)
            else:
                gradients[k] = reassemble(g0, g1, axis=1)

            if k == 0:
                break

            p0 = conv_input_grad(e0, w0, a0.shape, layer.stride, layer.padding)
            p1 = conv_input_grad(e1, w1, a1.shape, layer.stride, layer.padding)
            if plan.ptype is III:
                log.record(log.intra, f"layer{k}", p1.size, p0.size)
                p_full = p0 + p1
            elif plan.ptype is II:
                p_full = reassemble(p0, p1, axis=1)
            else:
                p_full = reassemble(p0, p1, axis=0)

            err_full = p_full * relu_grad(pre_acts[k - 1])
            err_layout = _error_producer_layout(plan, *self._dims[k])

        return ConvTrace(
            activations=full_acts,
            pre_activations=pre_acts,
            errors=[],
            gradients=[g for g in gradients if g is not None],
            loss=loss,
        ), log
