"""Reference (single-device) MLP training step in numpy.

This is the ground truth the partitioned executor is validated against:
a plain fully-connected network trained with the three tensor computing
phases of Section 2.1,

    forward:  F_{l+1} = f(F_l x W_l)
    backward: E_l     = (E_{l+1} x W_l^T) ⊙ f'(F_l x W_l)
    gradient: ΔW_l    = F_l^T x E_{l+1}

with ReLU activations on the hidden layers and a squared-error loss at the
output.  Everything is float64 so equality checks against the two-device
executor are tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class MlpSpec:
    """Layer widths of a fully-connected network: [d0, d1, ..., dn]."""

    widths: Sequence[int]

    def __post_init__(self) -> None:
        if len(self.widths) < 2:
            raise ValueError("an MLP needs at least one layer (two widths)")
        if any(w < 2 for w in self.widths):
            raise ValueError("all widths must be >= 2 so every axis can split")

    @property
    def n_layers(self) -> int:
        return len(self.widths) - 1

    def init_weights(self, seed: int = 0) -> List[np.ndarray]:
        rng = np.random.default_rng(seed)
        return [
            rng.standard_normal((self.widths[i], self.widths[i + 1]))
            / np.sqrt(self.widths[i])
            for i in range(self.n_layers)
        ]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(pre_activation: np.ndarray) -> np.ndarray:
    return (pre_activation > 0.0).astype(pre_activation.dtype)


@dataclass
class TrainingTrace:
    """Everything one training step produces (for comparison)."""

    activations: List[np.ndarray]   # F_0 .. F_n (post-activation)
    pre_activations: List[np.ndarray]  # Z_1 .. Z_n
    errors: List[np.ndarray]        # E_1 .. E_n (error at each layer output)
    gradients: List[np.ndarray]     # ΔW_1 .. ΔW_n
    loss: float


def reference_step(
    weights: Sequence[np.ndarray],
    x: np.ndarray,
    target: np.ndarray,
) -> TrainingTrace:
    """One full training step: forward, loss, backward, gradient.

    The last layer is linear (no ReLU); the loss is 0.5 * ||F_n - target||^2
    so the output error is simply F_n - target.
    """
    n = len(weights)
    activations = [x]
    pre_activations: List[np.ndarray] = []
    for idx, w in enumerate(weights):
        z = activations[-1] @ w
        pre_activations.append(z)
        activations.append(relu(z) if idx < n - 1 else z)

    output = activations[-1]
    loss = 0.5 * float(np.sum((output - target) ** 2))

    # errors[idx] is the gradient of the loss w.r.t. pre_activations[idx]
    errors: List[Optional[np.ndarray]] = [None] * n
    errors[n - 1] = output - target
    for idx in range(n - 2, -1, -1):
        propagated = errors[idx + 1] @ weights[idx + 1].T
        errors[idx] = propagated * relu_grad(pre_activations[idx])

    gradients = [activations[idx].T @ errors[idx] for idx in range(n)]
    return TrainingTrace(
        activations=activations,
        pre_activations=pre_activations,
        errors=[e for e in errors if e is not None],
        gradients=gradients,
        loss=loss,
    )


def numerical_gradients(
    weights: Sequence[np.ndarray],
    x: np.ndarray,
    target: np.ndarray,
    epsilon: float = 1e-6,
    max_entries: int = 24,
    seed: int = 1,
) -> List[List[Tuple[Tuple[int, int], float]]]:
    """Central-difference loss gradients at sampled weight entries.

    Used by the tests to certify the analytic backward/gradient phases; a
    full finite-difference sweep would be O(weights^2), so we sample.
    """

    def loss_of(ws) -> float:
        return reference_step(ws, x, target).loss

    rng = np.random.default_rng(seed)
    out: List[List[Tuple[Tuple[int, int], float]]] = []
    for layer_idx, w in enumerate(weights):
        entries: List[Tuple[Tuple[int, int], float]] = []
        n_samples = min(max_entries, w.size)
        flat_indices = rng.choice(w.size, size=n_samples, replace=False)
        for flat in flat_indices:
            i, j = np.unravel_index(flat, w.shape)
            bumped = [wk.copy() for wk in weights]
            bumped[layer_idx][i, j] += epsilon
            up = loss_of(bumped)
            bumped[layer_idx][i, j] -= 2 * epsilon
            down = loss_of(bumped)
            entries.append(((int(i), int(j)), (up - down) / (2 * epsilon)))
        out.append(entries)
    return out
