"""Execute real planner output numerically: the end-to-end bridge.

:mod:`repro.numeric.hierarchical` validates symmetric level plans; this
module consumes an actual :class:`~repro.plan.ir.HierarchicalPlan` as
produced by :class:`~repro.core.planner.AccParPlanner` — per-*node* types
and ratios, asymmetric across heterogeneous subtrees — and runs the
training step with real matrices.  It is the final link in the chain:

    paper → cost model → DP plan → numeric execution → bit-exact training.

Only fully-connected networks are supported (a planner plan maps onto an
:class:`~repro.numeric.reference.MlpSpec` whose layer names match), which
is all the exactness argument needs: the CONV algebra is validated
separately and the plan structures are identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.types import PartitionType
from ..plan.ir import HierarchicalPlan
from .hierarchical import HierCommLog, HierTrace
from .reference import MlpSpec, relu, relu_grad
from .sharding import split_point

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


def _split_rows(m: np.ndarray, ratio: float):
    cut = split_point(m.shape[0], ratio)
    return m[:cut], m[cut:]


def _split_cols(m: np.ndarray, ratio: float):
    cut = split_point(m.shape[1], ratio)
    return m[:, :cut], m[:, cut:]


class PlanTreeMlpExecutor:
    """Run one MLP training step under a planner-produced plan tree.

    ``layer_names[k]`` maps layer index ``k`` to the name used in the
    plan's per-level assignments.
    """

    def __init__(
        self,
        spec: MlpSpec,
        weights: Sequence[np.ndarray],
        plan: HierarchicalPlan,
        batch: int,
        layer_names: Optional[Sequence[str]] = None,
    ):
        self.spec = spec
        self.weights = [w.astype(np.float64) for w in weights]
        self.plan = plan
        self.batch = batch
        self.layer_names = (
            list(layer_names)
            if layer_names is not None
            else [f"fc{k}" for k in range(spec.n_layers)]
        )
        if len(self.layer_names) != spec.n_layers:
            raise ValueError("layer_names must cover every layer")
        self._check_plan(plan)

    def _check_plan(self, plan: HierarchicalPlan) -> None:
        if plan.level_plan is None:
            return
        assigned = {a.name for a in plan.level_plan.layers()}
        missing = [name for name in self.layer_names if name not in assigned]
        if missing:
            raise ValueError(f"plan misses assignments for layers {missing}")
        assert plan.left is not None and plan.right is not None
        self._check_plan(plan.left)
        self._check_plan(plan.right)

    def _assignment(self, plan: HierarchicalPlan, k: int):
        assert plan.level_plan is not None
        return plan.level_plan.partition(self.layer_names[k])

    # -- recursive kernels over the plan tree ---------------------------
    def _forward(self, plan: HierarchicalPlan, level: int, k: int,
                 a: np.ndarray, w: np.ndarray, log: HierCommLog) -> np.ndarray:
        if plan.level_plan is None:
            return a @ w
        lp = self._assignment(plan, k)
        assert plan.left is not None and plan.right is not None
        name = self.layer_names[k]
        if lp.ptype is I:
            a0, a1 = _split_rows(a, lp.ratio)
            z0 = self._forward(plan.left, level + 1, k, a0, w, log)
            z1 = self._forward(plan.right, level + 1, k, a1, w, log)
            return np.concatenate([z0, z1], axis=0)
        if lp.ptype is II:
            a0, a1 = _split_cols(a, lp.ratio)
            w0, w1 = _split_rows(w, lp.ratio)
            z0 = self._forward(plan.left, level + 1, k, a0, w0, log)
            z1 = self._forward(plan.right, level + 1, k, a1, w1, log)
            log.record(level, name, z0.size + z1.size)
            return z0 + z1
        w0, w1 = _split_cols(w, lp.ratio)
        z0 = self._forward(plan.left, level + 1, k, a, w0, log)
        z1 = self._forward(plan.right, level + 1, k, a, w1, log)
        return np.concatenate([z0, z1], axis=1)

    def _backward(self, plan: HierarchicalPlan, level: int, k: int,
                  e: np.ndarray, w: np.ndarray, log: HierCommLog) -> np.ndarray:
        if plan.level_plan is None:
            return e @ w.T
        lp = self._assignment(plan, k)
        assert plan.left is not None and plan.right is not None
        name = self.layer_names[k]
        if lp.ptype is I:
            e0, e1 = _split_rows(e, lp.ratio)
            p0 = self._backward(plan.left, level + 1, k, e0, w, log)
            p1 = self._backward(plan.right, level + 1, k, e1, w, log)
            return np.concatenate([p0, p1], axis=0)
        if lp.ptype is II:
            w0, w1 = _split_rows(w, lp.ratio)
            p0 = self._backward(plan.left, level + 1, k, e, w0, log)
            p1 = self._backward(plan.right, level + 1, k, e, w1, log)
            return np.concatenate([p0, p1], axis=1)
        e0, e1 = _split_cols(e, lp.ratio)
        w0, w1 = _split_cols(w, lp.ratio)
        p0 = self._backward(plan.left, level + 1, k, e0, w0, log)
        p1 = self._backward(plan.right, level + 1, k, e1, w1, log)
        log.record(level, name, p0.size + p1.size)
        return p0 + p1

    def _gradient(self, plan: HierarchicalPlan, level: int, k: int,
                  a: np.ndarray, e: np.ndarray, log: HierCommLog) -> np.ndarray:
        if plan.level_plan is None:
            return a.T @ e
        lp = self._assignment(plan, k)
        assert plan.left is not None and plan.right is not None
        name = self.layer_names[k]
        if lp.ptype is I:
            a0, a1 = _split_rows(a, lp.ratio)
            e0, e1 = _split_rows(e, lp.ratio)
            g0 = self._gradient(plan.left, level + 1, k, a0, e0, log)
            g1 = self._gradient(plan.right, level + 1, k, a1, e1, log)
            log.record(level, name, g0.size + g1.size)
            return g0 + g1
        if lp.ptype is II:
            a0, a1 = _split_cols(a, lp.ratio)
            g0 = self._gradient(plan.left, level + 1, k, a0, e, log)
            g1 = self._gradient(plan.right, level + 1, k, a1, e, log)
            return np.concatenate([g0, g1], axis=0)
        e0, e1 = _split_cols(e, lp.ratio)
        g0 = self._gradient(plan.left, level + 1, k, a, e0, log)
        g1 = self._gradient(plan.right, level + 1, k, a, e1, log)
        return np.concatenate([g0, g1], axis=1)

    # -- one training step ------------------------------------------------
    def step(self, x: np.ndarray, target: np.ndarray) -> HierTrace:
        n = self.spec.n_layers
        log = HierCommLog()

        activations = [x.astype(np.float64)]
        pre_acts: List[np.ndarray] = []
        for k in range(n):
            z = self._forward(self.plan, 0, k, activations[-1],
                              self.weights[k], log)
            pre_acts.append(z)
            activations.append(relu(z) if k < n - 1 else z)

        output = activations[-1]
        loss = 0.5 * float(np.sum((output - target) ** 2))

        errors: List[Optional[np.ndarray]] = [None] * n
        errors[n - 1] = output - target
        for k in range(n - 2, -1, -1):
            propagated = self._backward(self.plan, 0, k + 1, errors[k + 1],
                                        self.weights[k + 1], log)
            errors[k] = propagated * relu_grad(pre_acts[k])

        gradients = [
            self._gradient(self.plan, 0, k, activations[k], errors[k], log)
            for k in range(n)
        ]
        return HierTrace(
            activations=activations,
            gradients=gradients,
            loss=loss,
            comm=log,
            n_leaf_devices=2 ** self.plan.depth() if self.plan.depth() else 1,
        )


def mlp_network(widths: Sequence[int], name: str = "mlp"):
    """Build a planner-compatible Network for an MlpSpec's widths.

    Layer names are ``fc0 .. fc{n-1}``, matching the executor's default.
    """
    from ..graph import Input, Linear, Network, ReLU

    net = Network(name, Input("input", channels=widths[0]))
    for k in range(len(widths) - 1):
        net.add(Linear(f"fc{k}", widths[k], widths[k + 1]))
        if k < len(widths) - 2:
            net.add(ReLU(f"relu{k}"))
    return net
