"""Reference (single-device) CNN training step in numpy.

Implements the three training phases for 2-D convolutions via im2col:

    forward:  F_{l+1} = f(F_l ⊗ W_l)
    backward: E_l     = (E_{l+1} ⊗ W_l^T) ⊙ f'(Z_l)
    gradient: ΔW_l    = F_l^T ⊗ E_{l+1}

Tensors follow the IR's conventions: activations are (B, C, H, W) and
kernels are (C_in, C_out, K_h, K_w).  This is the ground truth for the
partitioned CONV executor, which validates Section 3.3's claim that the
three partitioning types carry over from FC to CONV unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .reference import relu, relu_grad


@dataclass(frozen=True)
class ConvLayerSpec:
    """One convolutional layer's geometry."""

    in_channels: int
    out_channels: int
    kernel: int = 3
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if self.in_channels < 2 or self.out_channels < 2:
            raise ValueError("channel counts must be >= 2 so the axis can split")
        if self.kernel < 1 or self.stride < 1 or self.padding < 0:
            raise ValueError("invalid kernel/stride/padding")

    def out_hw(self, h: int, w: int) -> Tuple[int, int]:
        oh = (h + 2 * self.padding - self.kernel) // self.stride + 1
        ow = (w + 2 * self.padding - self.kernel) // self.stride + 1
        if oh <= 0 or ow <= 0:
            raise ValueError("convolution output collapsed to zero")
        return oh, ow


@dataclass
class CnnSpec:
    """A CONV-only network: input geometry plus a layer list."""

    in_channels: int
    height: int
    width: int
    layers: Sequence[ConvLayerSpec]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a CNN needs at least one layer")
        c, h, w = self.in_channels, self.height, self.width
        for idx, layer in enumerate(self.layers):
            if layer.in_channels != c:
                raise ValueError(
                    f"layer {idx} expects {layer.in_channels} channels, gets {c}"
                )
            h, w = layer.out_hw(h, w)
            c = layer.out_channels

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def geometries(self) -> List[Tuple[int, int, int]]:
        """(C, H, W) before each layer plus the final output geometry."""
        out = [(self.in_channels, self.height, self.width)]
        c, h, w = out[0]
        for layer in self.layers:
            h, w = layer.out_hw(h, w)
            c = layer.out_channels
            out.append((c, h, w))
        return out

    def init_weights(self, seed: int = 0) -> List[np.ndarray]:
        rng = np.random.default_rng(seed)
        weights = []
        for layer in self.layers:
            fan_in = layer.in_channels * layer.kernel * layer.kernel
            weights.append(
                rng.standard_normal(
                    (layer.in_channels, layer.out_channels, layer.kernel, layer.kernel)
                )
                / np.sqrt(fan_in)
            )
        return weights


# ----------------------------------------------------------------------
# im2col convolution primitives
# ----------------------------------------------------------------------
def _pad(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """(B, C, H, W) -> (B, OH, OW, C*K*K) patch matrix."""
    x = _pad(x, padding)
    b, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    cols = np.empty((b, oh, ow, c, kernel, kernel), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            cols[:, :, :, :, i, j] = x[
                :, :, i : i + oh * stride : stride, j : j + ow * stride : stride
            ].transpose(0, 2, 3, 1)
    return cols.reshape(b, oh, ow, c * kernel * kernel)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back to (B, C, H, W)."""
    b, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    oh = (hp - kernel) // stride + 1
    ow = (wp - kernel) // stride + 1
    cols = cols.reshape(b, oh, ow, c, kernel, kernel)
    out = np.zeros((b, c, hp, wp), dtype=cols.dtype)
    for i in range(kernel):
        for j in range(kernel):
            out[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def conv_forward(x: np.ndarray, w: np.ndarray, stride: int,
                 padding: int) -> np.ndarray:
    """F_l ⊗ W_l with kernels shaped (C_in, C_out, K, K)."""
    c_in, c_out, k, _ = w.shape
    cols = im2col(x, k, stride, padding)                      # B,OH,OW,CKK
    w_mat = w.transpose(0, 2, 3, 1).reshape(c_in * k * k, c_out)
    out = cols @ w_mat                                         # B,OH,OW,Cout
    return out.transpose(0, 3, 1, 2)


def conv_input_grad(dz: np.ndarray, w: np.ndarray,
                    x_shape: Tuple[int, int, int, int], stride: int,
                    padding: int) -> np.ndarray:
    """E_l = E_{l+1} ⊗ W^T : gradient w.r.t. the layer input."""
    c_in, c_out, k, _ = w.shape
    w_mat = w.transpose(0, 2, 3, 1).reshape(c_in * k * k, c_out)
    dz_mat = dz.transpose(0, 2, 3, 1)                          # B,OH,OW,Cout
    dcols = dz_mat @ w_mat.T                                    # B,OH,OW,CKK
    return col2im(dcols, x_shape, k, stride, padding)


def conv_weight_grad(x: np.ndarray, dz: np.ndarray, w_shape, stride: int,
                     padding: int) -> np.ndarray:
    """ΔW = F^T ⊗ E_{l+1} : gradient w.r.t. the kernel."""
    c_in, c_out, k, _ = w_shape
    cols = im2col(x, k, stride, padding)                       # B,OH,OW,CKK
    dz_mat = dz.transpose(0, 2, 3, 1)                           # B,OH,OW,Cout
    grad = np.tensordot(cols, dz_mat, axes=([0, 1, 2], [0, 1, 2]))  # CKK,Cout
    return grad.reshape(c_in, k, k, c_out).transpose(0, 3, 1, 2)


@dataclass
class ConvTrace:
    activations: List[np.ndarray]
    pre_activations: List[np.ndarray]
    errors: List[np.ndarray]
    gradients: List[np.ndarray]
    loss: float


def conv_reference_step(
    spec: CnnSpec,
    weights: Sequence[np.ndarray],
    x: np.ndarray,
    target: np.ndarray,
) -> ConvTrace:
    """One training step of the CONV network (ReLU hidden, linear last)."""
    n = spec.n_layers
    activations = [x]
    pre_activations: List[np.ndarray] = []
    for idx, (layer, w) in enumerate(zip(spec.layers, weights)):
        z = conv_forward(activations[-1], w, layer.stride, layer.padding)
        pre_activations.append(z)
        activations.append(relu(z) if idx < n - 1 else z)

    output = activations[-1]
    loss = 0.5 * float(np.sum((output - target) ** 2))

    errors: List[Optional[np.ndarray]] = [None] * n
    errors[n - 1] = output - target
    for idx in range(n - 2, -1, -1):
        layer = spec.layers[idx + 1]
        propagated = conv_input_grad(
            errors[idx + 1], weights[idx + 1],
            activations[idx + 1].shape, layer.stride, layer.padding,
        )
        errors[idx] = propagated * relu_grad(pre_activations[idx])

    gradients = [
        conv_weight_grad(activations[idx], errors[idx], weights[idx].shape,
                         spec.layers[idx].stride, spec.layers[idx].padding)
        for idx in range(n)
    ]
    return ConvTrace(
        activations=activations,
        pre_activations=pre_activations,
        errors=[e for e in errors if e is not None],
        gradients=gradients,
        loss=loss,
    )
