"""Tensor sharding helpers for the numeric two-device executor.

The analytic library works with fractional shares; the numeric validator
executes real matrices, so shares become integer split points.  These
helpers slice and reassemble numpy arrays along one axis and keep the
bookkeeping (which rows/columns a device owns) in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class AxisShard:
    """A contiguous shard of one axis: device 0 gets [0, split), device 1
    gets [split, size)."""

    size: int
    split: int

    def __post_init__(self) -> None:
        if not 0 < self.split < self.size:
            raise ValueError(
                f"split must be strictly inside (0, {self.size}), got {self.split}"
            )

    @property
    def sizes(self) -> Tuple[int, int]:
        return self.split, self.size - self.split

    def slice_of(self, device: int) -> slice:
        if device == 0:
            return slice(0, self.split)
        if device == 1:
            return slice(self.split, self.size)
        raise ValueError(f"device must be 0 or 1, got {device}")


def split_point(size: int, ratio: float) -> int:
    """Integer split of ``size`` closest to ``ratio``, keeping both parts
    non-empty."""
    if size < 2:
        raise ValueError(f"cannot split an axis of size {size} two ways")
    point = int(round(size * ratio))
    return min(max(point, 1), size - 1)


def take(tensor: np.ndarray, shard: AxisShard, device: int, axis: int) -> np.ndarray:
    """The shard of ``tensor`` owned by ``device`` along ``axis``."""
    index = [slice(None)] * tensor.ndim
    index[axis] = shard.slice_of(device)
    return tensor[tuple(index)]


def reassemble(part0: np.ndarray, part1: np.ndarray, axis: int) -> np.ndarray:
    """Concatenate the two devices' shards back into the full tensor."""
    return np.concatenate([part0, part1], axis=axis)
