"""Hierarchical (multi-level) numeric execution of MLP training.

The two-device executor validates one split; this module validates the
*recursive* scheme of Section 5.1: a pairing tree of depth ``h`` (2^h leaf
devices) where every level assigns each layer a partition type and ratio.
Each phase of each layer is computed by structural recursion over the
levels:

* **Type-I** level — the batch rows split; subtrees compute disjoint row
  blocks (concat to combine);
* **Type-II** level — the reduction dimension splits (A's columns, W's
  rows); subtrees produce full-shape partial sums that are exchanged and
  added — the level's intra-layer communication;
* **Type-III** level — W's columns split; subtrees produce disjoint column
  blocks (concat).

Backward and gradient recurse with the roles rotated exactly as Table 3
prescribes.  The executor counts the partial-sum elements exchanged at each
level, which certifies the per-level accounting of the performance
simulator — e.g. that pure data parallelism really pays the *full* A(W_l)
exchange at every one of its h levels.

Inter-layer re-sharding across nested layouts is performed exactly but not
metered per level (the two-device executor already certifies Table 5); the
levels' psum traffic is the quantity of interest here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.types import PartitionType
from .reference import MlpSpec, relu, relu_grad
from .sharding import split_point
from .two_device import LayerPlanNumeric

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


@dataclass
class HierCommLog:
    """Partial-sum elements exchanged per (level, layer)."""

    psum_elements: Dict[Tuple[int, str], int] = field(default_factory=dict)

    def record(self, level: int, layer: str, elements: int) -> None:
        key = (level, layer)
        self.psum_elements[key] = self.psum_elements.get(key, 0) + elements

    def per_level_totals(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for (level, _), elements in self.psum_elements.items():
            out[level] = out.get(level, 0) + elements
        return out


@dataclass
class HierTrace:
    activations: List[np.ndarray]
    gradients: List[np.ndarray]
    loss: float
    comm: HierCommLog
    n_leaf_devices: int


def _split_rows(m: np.ndarray, ratio: float) -> Tuple[np.ndarray, np.ndarray]:
    cut = split_point(m.shape[0], ratio)
    return m[:cut], m[cut:]


def _split_cols(m: np.ndarray, ratio: float) -> Tuple[np.ndarray, np.ndarray]:
    cut = split_point(m.shape[1], ratio)
    return m[:, :cut], m[:, cut:]


class HierarchicalMlpExecutor:
    """Execute one MLP training step over a symmetric pairing tree.

    ``level_plans[l][k]`` is the (type, ratio) of layer ``k`` at hierarchy
    level ``l`` (level 0 = root split).  The same level plan applies across
    all sibling nodes of a level — the symmetric-subtree situation the
    planner's memoization exploits.
    """

    def __init__(
        self,
        spec: MlpSpec,
        weights: Sequence[np.ndarray],
        level_plans: Sequence[Sequence[LayerPlanNumeric]],
        batch: int,
    ):
        for l, plans in enumerate(level_plans):
            if len(plans) != spec.n_layers:
                raise ValueError(
                    f"level {l} has {len(plans)} assignments for "
                    f"{spec.n_layers} layers"
                )
        self.spec = spec
        self.weights = [w.astype(np.float64) for w in weights]
        self.level_plans = [list(p) for p in level_plans]
        self.batch = batch
        self.n_levels = len(level_plans)

    @property
    def n_leaf_devices(self) -> int:
        return 2 ** self.n_levels

    # -- recursive phase kernels ----------------------------------------
    def _forward(self, level: int, k: int, a: np.ndarray, w: np.ndarray,
                 log: HierCommLog) -> np.ndarray:
        """Z = A @ W via the level's partitioning (recursive)."""
        if level == self.n_levels:
            return a @ w
        plan = self.level_plans[level][k]
        name = f"fc{k}"
        if plan.ptype is I:
            a0, a1 = _split_rows(a, plan.ratio)
            z0 = self._forward(level + 1, k, a0, w, log)
            z1 = self._forward(level + 1, k, a1, w, log)
            return np.concatenate([z0, z1], axis=0)
        if plan.ptype is II:
            a0, a1 = _split_cols(a, plan.ratio)
            w0, w1 = _split_rows(w, plan.ratio)
            z0 = self._forward(level + 1, k, a0, w0, log)
            z1 = self._forward(level + 1, k, a1, w1, log)
            # both sides fetch the peer's full partial sum (Table 4, Type-II)
            log.record(level, name, z0.size + z1.size)
            return z0 + z1
        w0, w1 = _split_cols(w, plan.ratio)
        z0 = self._forward(level + 1, k, a, w0, log)
        z1 = self._forward(level + 1, k, a, w1, log)
        return np.concatenate([z0, z1], axis=1)

    def _backward(self, level: int, k: int, e: np.ndarray, w: np.ndarray,
                  log: HierCommLog) -> np.ndarray:
        """P = E @ W^T via the level's partitioning (recursive)."""
        if level == self.n_levels:
            return e @ w.T
        plan = self.level_plans[level][k]
        name = f"fc{k}"
        if plan.ptype is I:
            e0, e1 = _split_rows(e, plan.ratio)
            p0 = self._backward(level + 1, k, e0, w, log)
            p1 = self._backward(level + 1, k, e1, w, log)
            return np.concatenate([p0, p1], axis=0)
        if plan.ptype is II:
            w0, w1 = _split_rows(w, plan.ratio)
            p0 = self._backward(level + 1, k, e, w0, log)
            p1 = self._backward(level + 1, k, e, w1, log)
            return np.concatenate([p0, p1], axis=1)
        e0, e1 = _split_cols(e, plan.ratio)
        w0, w1 = _split_cols(w, plan.ratio)
        p0 = self._backward(level + 1, k, e0, w0, log)
        p1 = self._backward(level + 1, k, e1, w1, log)
        # Type-III backward produces full-shape partial sums (Table 4)
        log.record(level, name, p0.size + p1.size)
        return p0 + p1

    def _gradient(self, level: int, k: int, a: np.ndarray, e: np.ndarray,
                  log: HierCommLog) -> np.ndarray:
        """G = A^T @ E via the level's partitioning (recursive)."""
        if level == self.n_levels:
            return a.T @ e
        plan = self.level_plans[level][k]
        name = f"fc{k}"
        if plan.ptype is I:
            a0, a1 = _split_rows(a, plan.ratio)
            e0, e1 = _split_rows(e, plan.ratio)
            g0 = self._gradient(level + 1, k, a0, e0, log)
            g1 = self._gradient(level + 1, k, a1, e1, log)
            # Type-I gradient: the classic full-ΔW exchange at this level
            log.record(level, name, g0.size + g1.size)
            return g0 + g1
        if plan.ptype is II:
            a0, a1 = _split_cols(a, plan.ratio)
            g0 = self._gradient(level + 1, k, a0, e, log)
            g1 = self._gradient(level + 1, k, a1, e, log)
            return np.concatenate([g0, g1], axis=0)
        e0, e1 = _split_cols(e, plan.ratio)
        g0 = self._gradient(level + 1, k, a, e0, log)
        g1 = self._gradient(level + 1, k, a, e1, log)
        return np.concatenate([g0, g1], axis=1)

    # -- one training step ------------------------------------------------
    def step(self, x: np.ndarray, target: np.ndarray) -> HierTrace:
        n = self.spec.n_layers
        log = HierCommLog()

        activations = [x.astype(np.float64)]
        pre_acts: List[np.ndarray] = []
        for k in range(n):
            z = self._forward(0, k, activations[-1], self.weights[k], log)
            pre_acts.append(z)
            activations.append(relu(z) if k < n - 1 else z)

        output = activations[-1]
        loss = 0.5 * float(np.sum((output - target) ** 2))

        errors: List[Optional[np.ndarray]] = [None] * n
        errors[n - 1] = output - target
        for k in range(n - 2, -1, -1):
            propagated = self._backward(0, k + 1, errors[k + 1],
                                        self.weights[k + 1], log)
            errors[k] = propagated * relu_grad(pre_acts[k])

        gradients = [
            self._gradient(0, k, activations[k], errors[k], log)
            for k in range(n)
        ]
        return HierTrace(
            activations=activations,
            gradients=gradients,
            loss=loss,
            comm=log,
            n_leaf_devices=self.n_leaf_devices,
        )
