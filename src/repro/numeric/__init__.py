"""Numeric validation substrate: execute the partition algebra for real.

Everything else in the library *models* the three partitioning types; this
package runs them with numpy on two simulated devices and checks the
results (and the communication element counts) against a single-device
reference — the executable proof of Section 3's algebra.
"""

from .conv_partitioned import ConvLayerPlan, ConvTwoDeviceExecutor
from .conv_reference import (
    CnnSpec,
    ConvLayerSpec,
    ConvTrace,
    col2im,
    conv_forward,
    conv_input_grad,
    conv_reference_step,
    conv_weight_grad,
    im2col,
)
from .hierarchical import HierarchicalMlpExecutor, HierCommLog, HierTrace
from .hierarchical_conv import HierarchicalCnnExecutor
from .plan_executor import PlanTreeMlpExecutor, mlp_network
from .reference import (
    MlpSpec,
    TrainingTrace,
    numerical_gradients,
    reference_step,
    relu,
    relu_grad,
)
from .sharding import AxisShard, reassemble, split_point, take
from .two_device import (
    CommLog,
    LayerPlanNumeric,
    Layout,
    PartitionedTrace,
    TwoDeviceExecutor,
    error_consumer_layout,
    error_producer_layout,
    input_layout,
    output_layout,
    overlap_elements,
)
from .validate import (
    ValidationReport,
    expected_conv_inter_elements,
    expected_conv_intra_elements,
    validate_conv_partitioned_training,
    expected_inter_elements,
    expected_intra_elements,
    validate_partitioned_training,
)

__all__ = [
    "HierCommLog",
    "HierTrace",
    "HierarchicalCnnExecutor",
    "HierarchicalMlpExecutor",
    "PlanTreeMlpExecutor",
    "mlp_network",
    "CnnSpec",
    "ConvLayerPlan",
    "ConvLayerSpec",
    "ConvTrace",
    "ConvTwoDeviceExecutor",
    "col2im",
    "conv_forward",
    "conv_input_grad",
    "conv_reference_step",
    "conv_weight_grad",
    "expected_conv_inter_elements",
    "expected_conv_intra_elements",
    "im2col",
    "validate_conv_partitioned_training",
    "AxisShard",
    "CommLog",
    "LayerPlanNumeric",
    "Layout",
    "MlpSpec",
    "PartitionedTrace",
    "TrainingTrace",
    "TwoDeviceExecutor",
    "ValidationReport",
    "error_consumer_layout",
    "error_producer_layout",
    "expected_inter_elements",
    "expected_intra_elements",
    "input_layout",
    "numerical_gradients",
    "output_layout",
    "overlap_elements",
    "reassemble",
    "reference_step",
    "relu",
    "relu_grad",
    "split_point",
    "take",
    "validate_partitioned_training",
]
