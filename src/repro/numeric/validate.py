"""End-to-end validation: partitioned execution vs the reference, and the
measured communication vs the analytic model.

This closes the loop on Section 3: the three partitioning types are not
just costed but *executed*, and must reproduce the single-device training
step exactly while moving exactly the element counts Tables 4 and 5
predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.cost_model import inter_layer_elements
from ..core.types import PartitionType
from .conv_partitioned import ConvLayerPlan, ConvTwoDeviceExecutor
from .conv_reference import CnnSpec, conv_reference_step
from .reference import MlpSpec, reference_step
from .two_device import LayerPlanNumeric, TwoDeviceExecutor

I, II, III = PartitionType.TYPE_I, PartitionType.TYPE_II, PartitionType.TYPE_III


@dataclass
class ValidationReport:
    """Outcome of comparing partitioned vs reference training."""

    max_activation_error: float
    max_gradient_error: float
    loss_error: float
    comm_total_elements: int
    intra_matches_table4: bool
    inter_matches_table5: bool

    @property
    def numerically_exact(self) -> bool:
        tol = 1e-9
        return (
            self.max_activation_error < tol
            and self.max_gradient_error < tol
            and self.loss_error < tol
        )


def expected_intra_elements(
    spec: MlpSpec, plan: Sequence[LayerPlanNumeric], batch: int
) -> Dict[str, Tuple[int, int]]:
    """Table 4 psum element counts per layer, per device."""
    out: Dict[str, Tuple[int, int]] = {}
    for k, lp in enumerate(plan):
        d_in, d_out = spec.widths[k], spec.widths[k + 1]
        if lp.ptype is I:
            # each device fetches the peer's full ΔW partial sum
            amount = (d_in * d_out, d_in * d_out)
        elif lp.ptype is II:
            # each device fetches the peer's full F_{l+1} partial sum
            amount = (batch * d_out, batch * d_out)
        else:
            if k == 0:
                # the first layer never propagates an error to the network
                # input, so its Type-III backward psum exchange never runs
                continue
            # each device fetches the peer's full E_l partial sum
            amount = (batch * d_in, batch * d_in)
        out[f"layer{k}"] = amount
    return out


def expected_inter_elements(
    spec: MlpSpec, plan: Sequence[LayerPlanNumeric], batch: int
) -> Dict[str, Tuple[int, int]]:
    """Table 5 element counts per boundary (F + E directions), per device.

    Valid when adjacent layers share the partitioning ratio and the splits
    are exact (no integer rounding) — the conditions of the paper's
    derivation.
    """
    out: Dict[str, Tuple[int, int]] = {}
    for k in range(1, spec.n_layers):
        prev, cur = plan[k - 1], plan[k]
        alpha = cur.effective_alpha(batch, spec.widths[k], spec.widths[k + 1])
        boundary = batch * spec.widths[k]
        amount_i, amount_j = inter_layer_elements(
            float(boundary), prev.ptype, cur.ptype, alpha
        )
        out[f"boundary{k}"] = (int(round(amount_i)), int(round(amount_j)))
    return out


def expected_conv_intra_elements(
    spec: CnnSpec, plan: Sequence[ConvLayerPlan], batch: int
) -> Dict[str, Tuple[int, int]]:
    """Table 4 psum counts for CONV layers (Section 4.3's spatial scaling)."""
    out: Dict[str, Tuple[int, int]] = {}
    geoms = spec.geometries()
    for k, (lp, layer) in enumerate(zip(plan, spec.layers)):
        _, h_in, w_in = geoms[k]
        _, h_out, w_out = geoms[k + 1]
        if lp.ptype is I:
            amount = layer.in_channels * layer.out_channels * layer.kernel ** 2
        elif lp.ptype is II:
            amount = batch * layer.out_channels * h_out * w_out
        else:
            if k == 0:
                continue  # first layer never propagates error to the input
            amount = batch * layer.in_channels * h_in * w_in
        out[f"layer{k}"] = (amount, amount)
    return out


def expected_conv_inter_elements(
    spec: CnnSpec, plan: Sequence[ConvLayerPlan], batch: int
) -> Dict[str, Tuple[int, int]]:
    """Table 5 boundary counts for CONV layers, per device."""
    out: Dict[str, Tuple[int, int]] = {}
    geoms = spec.geometries()
    for k in range(1, spec.n_layers):
        prev, cur = plan[k - 1], plan[k]
        dims = (batch, spec.layers[k].in_channels, spec.layers[k].out_channels)
        alpha = cur.effective_alpha(*dims)
        c, h, w = geoms[k]
        boundary = batch * c * h * w
        amount_i, amount_j = inter_layer_elements(
            float(boundary), prev.ptype, cur.ptype, alpha
        )
        out[f"boundary{k}"] = (int(round(amount_i)), int(round(amount_j)))
    return out


def validate_conv_partitioned_training(
    spec: CnnSpec,
    plan: Sequence[ConvLayerPlan],
    batch: int,
    seed: int = 0,
    check_tables: bool = True,
) -> ValidationReport:
    """CONV counterpart of :func:`validate_partitioned_training`."""
    rng = np.random.default_rng(seed)
    weights = spec.init_weights(seed)
    x = rng.standard_normal((batch, spec.in_channels, spec.height, spec.width))
    out_geom = spec.geometries()[-1]
    target = rng.standard_normal((batch, *out_geom))

    ref = conv_reference_step(spec, weights, x, target)
    par, comm = ConvTwoDeviceExecutor(spec, weights, plan, batch).step(x, target)

    act_err = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.activations, par.activations)
    )
    grad_err = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.gradients, par.gradients)
    )
    loss_err = abs(ref.loss - par.loss)

    intra_ok = True
    inter_ok = True
    if check_tables:
        intra_ok = comm.intra == expected_conv_intra_elements(spec, plan, batch)
        expected_inter = expected_conv_inter_elements(spec, plan, batch)
        measured: Dict[str, Tuple[int, int]] = {}
        for key in expected_inter:
            fwd = comm.inter_forward.get(key, (0, 0))
            bwd = comm.inter_backward.get(key, (0, 0))
            measured[key] = (fwd[0] + bwd[0], fwd[1] + bwd[1])
        inter_ok = measured == expected_inter

    return ValidationReport(
        max_activation_error=act_err,
        max_gradient_error=grad_err,
        loss_error=loss_err,
        comm_total_elements=comm.total_elements(),
        intra_matches_table4=intra_ok,
        inter_matches_table5=inter_ok,
    )


def validate_partitioned_training(
    spec: MlpSpec,
    plan: Sequence[LayerPlanNumeric],
    batch: int,
    seed: int = 0,
    check_tables: bool = True,
) -> ValidationReport:
    """Run reference and two-device training on the same data and compare."""
    rng = np.random.default_rng(seed)
    weights = spec.init_weights(seed)
    x = rng.standard_normal((batch, spec.widths[0]))
    target = rng.standard_normal((batch, spec.widths[-1]))

    ref = reference_step(weights, x, target)
    executor = TwoDeviceExecutor(spec, weights, plan, batch)
    par = executor.step(x, target)

    act_err = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.activations, par.activations)
    )
    grad_err = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref.gradients, par.gradients)
    )
    loss_err = abs(ref.loss - par.loss)

    intra_ok = True
    inter_ok = True
    if check_tables:
        intra_ok = par.comm.intra == expected_intra_elements(spec, plan, batch)
        expected_inter = expected_inter_elements(spec, plan, batch)
        measured_inter: Dict[str, Tuple[int, int]] = {}
        for key in expected_inter:
            fwd = par.comm.inter_forward.get(key, (0, 0))
            bwd = par.comm.inter_backward.get(key, (0, 0))
            measured_inter[key] = (fwd[0] + bwd[0], fwd[1] + bwd[1])
        inter_ok = measured_inter == expected_inter

    return ValidationReport(
        max_activation_error=act_err,
        max_gradient_error=grad_err,
        loss_error=loss_err,
        comm_total_elements=par.comm.total_elements(),
        intra_matches_table4=intra_ok,
        inter_matches_table5=inter_ok,
    )
