"""Fit a :class:`~repro.hardware.profile.CalibratedProfile` from telemetry.

Ingests the ``repro.telemetry.calibration/v1`` export (``repro telemetry
export --calibration``) whose per-hardware series carry raw
``(elements, flops, seconds)`` samples, and regresses — NumPy least
squares only, no scipy:

* **compute**, per op kind (``conv``/``fc``) and per board::

      seconds ≈ (flops/devices) · x₀ + (bytes_moved/devices) · x₁

  so the effective per-board rate is ``c_eff = 1/x₀`` (the memory column
  soaks up the HBM-bound share of each phase; a flops-only fallback covers
  degenerate sample sets);

* **network**, per hardware, an alpha-beta (latency + inverse bandwidth)
  law from the ``net/comm`` series::

      seconds ≈ bytes · x₀ + transfers · x₁

  where ``x₁`` is the per-transfer latency, followed by a log₂-binned
  bandwidth-efficiency curve: each sample's latency-corrected effective
  bandwidth over the group's peak, binned by transfer size.

Hardware keys that are not known spec names (e.g. the ``"a+b"`` label of a
mixed leaf group) are skipped and noted in the profile's ``meta``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..hardware.accelerator import AcceleratorSpec
from ..hardware.presets import BFLOAT16_BYTES, KNOWN_SPECS
from ..hardware.profile import (
    CalibratedProfile,
    ProfileError,
    SpecProfile,
)
from ..obs.telemetry import CALIBRATION_SCHEMA
from .fit import CalibrationResult, Probe, calibrate

#: op kinds the compute fit distinguishes (matching the exporter's labels)
COMPUTE_KINDS = ("conv", "fc")

#: minimum samples before a per-kind rate is trusted over the default fit
MIN_KIND_SAMPLES = 2

#: efficiency floor: a fitted curve never claims less than 0.1% of peak
MIN_EFFICIENCY = 1e-3


def _compute_samples(series_map: Mapping[str, Any],
                     kinds: Sequence[str]) -> List[Tuple[float, float, float]]:
    """``(flops/board, elements/board, seconds)`` rows for the given kinds."""
    rows: List[Tuple[float, float, float]] = []
    for key, series in series_map.items():
        kind = key.split("/", 1)[0]
        if kind not in kinds:
            continue
        for sample in series.get("samples", ()):
            flops = sample.get("flops")
            elements = sample.get("elements")
            seconds = sample.get("seconds")
            devices = sample.get("devices", 1) or 1
            if not all(isinstance(v, (int, float))
                       for v in (flops, elements, seconds)):
                continue
            if seconds <= 0 or flops <= 0:
                continue
            rows.append((float(flops) / devices, float(elements) / devices,
                         float(seconds)))
    return rows


def _fit_rate(rows: Sequence[Tuple[float, float, float]],
              dtype_bytes: int,
              peak: Optional[float] = None) -> Optional[float]:
    """Per-board effective FLOP/s from compute samples; None if unfittable.

    A two-column fit on memory-bound samples can collapse the flops
    coefficient to ~0, implying an unphysical rate far above ``peak``
    (the spec's per-board datasheet FLOP/s); such fits fall back to the
    flops-only estimator, which folds the memory time into the rate and
    is therefore always a lower bound — clamped to ``peak`` regardless.
    """
    if len(rows) < MIN_KIND_SAMPLES:
        return None
    a = np.array([[r[0], r[1] * dtype_bytes] for r in rows], dtype=float)
    t = np.array([r[2] for r in rows], dtype=float)
    col_norms = np.linalg.norm(a, axis=0)
    if col_norms[0] == 0:
        return None
    if col_norms[1] > 0:
        scaled = a / col_norms
        x_scaled, _, rank, _ = np.linalg.lstsq(scaled, t, rcond=None)
        if rank == 2:
            x = x_scaled / col_norms
            if x[0] > 0:
                rate = float(1.0 / x[0])
                if peak is None or rate <= peak:
                    return rate
    # flops-only fallback: least squares through the origin
    f = a[:, 0]
    denom = float(f @ f)
    if denom == 0:
        return None
    x0 = float(f @ t) / denom
    if x0 <= 0:
        return None
    rate = 1.0 / x0
    return min(rate, peak) if peak is not None else rate


def _net_samples(series_map: Mapping[str, Any],
                 dtype_bytes: int) -> List[Tuple[float, float, float, float]]:
    """``(bytes, transfers, seconds, devices)`` rows from ``net/comm``."""
    rows: List[Tuple[float, float, float, float]] = []
    for key, series in series_map.items():
        if key.split("/", 1)[0] != "net":
            continue
        for sample in series.get("samples", ()):
            elements = sample.get("elements")
            seconds = sample.get("seconds")
            transfers = sample.get("transfers", 1) or 1
            devices = sample.get("devices", 1) or 1
            if not all(isinstance(v, (int, float)) for v in (elements, seconds)):
                continue
            if seconds <= 0 or elements <= 0:
                continue
            rows.append((float(elements) * dtype_bytes, float(transfers),
                         float(seconds), float(devices)))
    return rows


def _fit_network(
    rows: Sequence[Tuple[float, float, float, float]],
    spec: AcceleratorSpec,
) -> Tuple[Tuple[Tuple[float, float], ...], float]:
    """Bandwidth-efficiency curve points and per-transfer latency.

    Rows are *group-level* observations of ``t = S/(n·peak·eff(S)) + k·lat``
    (``S`` group bytes, ``n`` boards, ``k`` transfers).  The latency falls
    out of a two-column least squares on ``(S/n, k)`` — normalizing the
    bytes column per board makes mixed group sizes share one slope — and
    the efficiency curve is each sample's latency-corrected bandwidth over
    its group's summed peak, log₂-binned by the group transfer size (which
    is also the size the cost model evaluates the curve at).
    """
    if len(rows) < 2:
        return (), 0.0
    a = np.array([[r[0] / r[3], r[1]] for r in rows], dtype=float)
    t = np.array([r[2] for r in rows], dtype=float)
    col_norms = np.linalg.norm(a, axis=0)
    latency = 0.0
    if col_norms[0] > 0 and col_norms[1] > 0:
        scaled = a / col_norms
        x_scaled, _, rank, _ = np.linalg.lstsq(scaled, t, rcond=None)
        if rank == 2:
            x = x_scaled / col_norms
            if x[0] > 0:
                latency = max(0.0, float(x[1]))

    bins: Dict[int, List[Tuple[float, float]]] = {}
    for nbytes, transfers, seconds, devices in rows:
        corrected = seconds - transfers * latency
        if corrected <= 0:
            continue
        eff = (nbytes / corrected) / (devices * spec.network_bandwidth)
        bins.setdefault(int(math.log2(nbytes)), []).append((nbytes, eff))
    if not bins:
        return (), latency
    points: List[Tuple[float, float]] = []
    for _bin, samples in sorted(bins.items()):
        size = float(np.exp(np.mean([math.log(s) for s, _ in samples])))
        eff = float(np.mean([e for _, e in samples]))
        points.append((size, min(1.0, max(MIN_EFFICIENCY, eff))))
    # collapse a flat curve (all efficiencies within 1%) to a single point
    effs = [e for _, e in points]
    if max(effs) - min(effs) < 0.01:
        points = [points[-1]]
    return tuple(points), latency


def profile_from_export(
    doc: Mapping[str, Any],
    name: str = "calibrated",
    dtype_bytes: int = BFLOAT16_BYTES,
    specs: Optional[Mapping[str, AcceleratorSpec]] = None,
) -> CalibratedProfile:
    """Fit one :class:`SpecProfile` per known hardware key of an export."""
    schema = doc.get("schema") if isinstance(doc, Mapping) else None
    if schema != CALIBRATION_SCHEMA:
        raise ProfileError(
            f"unsupported calibration schema {schema!r}; "
            f"expected {CALIBRATION_SCHEMA!r}"
        )
    registry = KNOWN_SPECS if specs is None else specs
    hardware = doc.get("hardware", {})
    if not isinstance(hardware, Mapping) or not hardware:
        raise ProfileError("calibration export has no hardware series")

    fitted: List[SpecProfile] = []
    notes: List[Tuple[str, str]] = []
    for hw_name, series_map in sorted(hardware.items()):
        spec = registry.get(hw_name)
        if spec is None:
            notes.append((f"skipped:{hw_name}",
                          "not a known spec name (mixed group or unknown hardware)"))
            continue
        all_rows = _compute_samples(series_map, COMPUTE_KINDS)
        default_rate = _fit_rate(all_rows, dtype_bytes, peak=spec.flops)
        if default_rate is None:
            notes.append((f"skipped:{hw_name}",
                          "not enough compute samples for a rate fit"))
            continue
        rates: List[Tuple[str, float]] = [("default", default_rate)]
        for kind in COMPUTE_KINDS:
            kind_rate = _fit_rate(_compute_samples(series_map, (kind,)),
                                  dtype_bytes, peak=spec.flops)
            if kind_rate is not None:
                rates.append((kind, kind_rate))
        curve, latency = _fit_network(_net_samples(series_map, dtype_bytes),
                                      spec)
        fitted.append(SpecProfile(
            spec=hw_name,
            compute_rates=tuple(rates),
            bandwidth_efficiency=curve,
            transfer_latency_s=latency,
        ))
        notes.append((f"samples:{hw_name}", str(len(all_rows))))

    if not fitted:
        skipped = ", ".join(k.split(":", 1)[1] for k, _ in notes
                            if k.startswith("skipped:")) or "none"
        raise ProfileError(
            f"no known hardware could be calibrated from this export "
            f"(hardware keys: {', '.join(sorted(hardware))})"
        )
    notes.append(("source", str(doc.get("source", "export"))))
    notes.append(("fit", "repro.calib.profile_fit/lstsq"))
    return CalibratedProfile(name=name, specs=tuple(fitted),
                             meta=tuple(notes))


def profile_from_probes(
    spec: AcceleratorSpec,
    probes: Sequence[Probe],
    name: Optional[str] = None,
) -> CalibratedProfile:
    """Bridge the legacy :class:`Probe` path into a profile.

    Runs the historical two-parameter fit (:func:`repro.calib.calibrate`)
    and expresses its result as a single-spec profile: one default compute
    rate and a flat bandwidth-efficiency point (fitted effective bandwidth
    over the spec's peak, clamped to (0, 1]).
    """
    result: CalibrationResult = calibrate(probes)
    eff = result.effective_network_bandwidth / spec.network_bandwidth
    eff = min(1.0, max(MIN_EFFICIENCY, eff))
    return CalibratedProfile(
        name=name or f"{spec.name}-probes",
        specs=(SpecProfile(
            spec=spec.name,
            compute_rates=(("default", result.effective_flops),),
            bandwidth_efficiency=((1.0, eff),),
        ),),
        meta=(
            ("fit", "repro.calib.fit/two-parameter"),
            ("n_probes", str(result.n_probes)),
            ("residual_rms", repr(result.residual_rms)),
        ),
    )
