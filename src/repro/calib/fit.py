"""Probe-based calibration: fit effective hardware rates from measurements.

Peak datasheet numbers (Table 7) overstate what real workloads achieve.
Given measured iteration times for a set of (model, plan) probes, this
module fits *effective* compute density and network bandwidth by linear
least squares:

    T_measured ≈ flops / c_eff + bytes / b_eff
               =  flops · x₀  +  bytes · x₁,   x = argmin ‖Ax - t‖₂

so ``c_eff = 1/x₀`` and ``b_eff = 1/x₁``.  The fitted rates slot straight
back into :class:`~repro.hardware.AcceleratorSpec`, closing the loop a real
deployment needs: plan → measure → calibrate → re-plan.

This is the coarse two-parameter fit (one number per rate, no size or
op-kind dependence); :mod:`repro.calib.profile_fit` builds the richer
per-op-kind :class:`~repro.hardware.profile.CalibratedProfile` from the
``repro.telemetry.calibration/v1`` export.  Historically this module lived
at ``repro.experiments.calibration``, which remains as a re-export shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.planner import PlannedExecution
from ..core.stages import iter_sharded_workloads
from ..hardware.accelerator import AcceleratorSpec
from ..sim.executor import SimReport


@dataclass(frozen=True)
class Probe:
    """One calibration observation."""

    flops: float            # total FLOPs executed by the probed party
    network_bytes: float    # total bytes it moved over the network
    measured_seconds: float

    def __post_init__(self) -> None:
        if self.flops < 0 or self.network_bytes < 0:
            raise ValueError("probe quantities must be non-negative")
        if self.measured_seconds <= 0:
            raise ValueError("measured time must be positive")


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted effective rates plus the fit quality."""

    effective_flops: float
    effective_network_bandwidth: float
    residual_rms: float
    n_probes: int

    def apply_to(self, spec: AcceleratorSpec) -> AcceleratorSpec:
        """A copy of ``spec`` with the fitted effective rates."""
        return AcceleratorSpec(
            name=f"{spec.name}-calibrated",
            flops=self.effective_flops,
            memory_bytes=spec.memory_bytes,
            memory_bandwidth=spec.memory_bandwidth,
            network_bandwidth=self.effective_network_bandwidth,
        )


def probe_from_run(planned: PlannedExecution, report: SimReport) -> Probe:
    """Build a calibration probe from a simulated (or measured) run.

    ``flops`` is the whole workload's three-phase total; ``network_bytes``
    sums the critical path's per-level traffic.
    """
    flops = sum(sw.flops_total() for sw in iter_sharded_workloads(planned.stages))
    net_bytes = sum(lv.net_bytes_left + lv.net_bytes_right for lv in report.levels)
    return Probe(flops=flops, network_bytes=net_bytes,
                 measured_seconds=report.total_time)


def calibrate(probes: Sequence[Probe]) -> CalibrationResult:
    """Least-squares fit of effective rates from ≥2 diverse probes.

    Probes must exercise both terms: at least one compute-heavy and one
    communication-heavy observation, or the system is ill-conditioned and a
    ``ValueError`` explains which term is unidentifiable.
    """
    if len(probes) < 2:
        raise ValueError("calibration needs at least two probes")

    a = np.array([[p.flops, p.network_bytes] for p in probes], dtype=float)
    t = np.array([p.measured_seconds for p in probes], dtype=float)

    col_norms = np.linalg.norm(a, axis=0)
    if col_norms[0] == 0:
        raise ValueError("no probe exercises computation; c_eff unidentifiable")
    if col_norms[1] == 0:
        raise ValueError("no probe exercises the network; b_eff unidentifiable")

    scaled = a / col_norms
    x_scaled, _, rank, _ = np.linalg.lstsq(scaled, t, rcond=None)
    if rank < 2:
        raise ValueError(
            "probes are collinear (same flops:bytes ratio); vary the workload"
        )
    x = x_scaled / col_norms
    x = np.maximum(x, 1e-30)  # rates are physical: clamp to positive

    residual = a @ x - t
    rms = float(np.sqrt(np.mean(residual ** 2)))
    return CalibrationResult(
        effective_flops=float(1.0 / x[0]),
        effective_network_bandwidth=float(1.0 / x[1]),
        residual_rms=rms,
        n_probes=len(probes),
    )
