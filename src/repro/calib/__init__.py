"""Calibration: fit effective hardware rates and profiles from measurements.

Two entry points, one loop (plan → measure → calibrate → re-plan):

* :func:`calibrate` / :class:`Probe` — the coarse two-parameter fit from
  end-to-end run probes (historically ``repro.experiments.calibration``);
* :func:`profile_from_export` — the full per-op-kind
  :class:`~repro.hardware.profile.CalibratedProfile` fit from a
  ``repro.telemetry.calibration/v1`` export (``repro calibrate`` on the
  CLI).
"""

from .fit import CalibrationResult, Probe, calibrate, probe_from_run
from .profile_fit import profile_from_export, profile_from_probes

__all__ = [
    "CalibrationResult",
    "Probe",
    "calibrate",
    "probe_from_run",
    "profile_from_export",
    "profile_from_probes",
]
