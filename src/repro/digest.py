"""Stable content hashing shared by the fingerprint methods.

The plan service addresses its cache by content, so every object that can
influence a plan (accelerator specs, arrays, networks, request knobs) exposes
a ``fingerprint()`` built on this digest.  Stability contract: the digest of
a given payload never changes across processes, platforms or Python builds —
it feeds persistent (disk-tier) cache file names.
"""

from __future__ import annotations

import hashlib
import json


def stable_digest(payload) -> str:
    """Hex digest of a JSON-serializable payload, stable across processes.

    Canonical JSON (sorted keys, no whitespace) feeds SHA-256; the first 16
    hex characters are plenty for cache addressing and keep keys readable.
    Floats rely on Python's shortest-round-trip ``repr``, which is exact for
    any value that itself round-trips through JSON.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
