"""``repro top``: a live text dashboard over a running fleet frontend.

Polls the frontend's ``stats`` op on an interval and renders one screen
per poll: fleet-wide SLO state (attainment, error-budget burn on the fast
and slow windows), the frontend's queue and admission picture, and one
row per shard with health, request rate (computed as a delta between
polls), latency percentiles, and cache hit rate.  The renderer is a pure
function of two stats snapshots, so tests drive it without a fleet or a
terminal; the polling loop takes an ``iterations`` bound for the same
reason.

This is observability plumbing, not UI polish: plain ANSI clear-screen,
fixed-width columns, degrades to a scrolling log when redirected.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

#: ANSI "clear screen, home cursor"; suppressed when stdout is not a tty
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_ms(value: Optional[float]) -> str:
    """A latency in seconds as a fixed-width millisecond cell."""
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value * 1e3:.1f}"


def _fmt_rate(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.1f}"


def _fmt_pct(value: Optional[float]) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value * 100:.1f}%"


def _shard_row(name: str, snap: Optional[Dict[str, Any]],
               health: Dict[str, Any], qps: Optional[float]) -> List[str]:
    """One table row; a None snapshot means the stats probe failed."""
    hdoc = health.get(name) or {}
    up = "up" if hdoc.get("up", True) else "DOWN"
    if not snap:
        return [name, up, "-", "-", "-", "-", "-", "-", "-"]
    counters = (snap.get("metrics") or {}).get("counters") or {}
    hist = ((snap.get("metrics") or {}).get("histograms") or {}) \
        .get("request_latency_s") or {}
    requests = counters.get("requests", 0)
    hits = counters.get("hits_memory", 0) + counters.get("hits_disk", 0)
    hit_rate = hits / requests if requests else None
    slo = snap.get("slo") or {}
    return [
        name,
        up,
        str(requests),
        _fmt_rate(qps),
        _fmt_ms(hist.get("p50")),
        _fmt_ms(hist.get("p95")),
        _fmt_ms(hist.get("p99")),
        _fmt_pct(hit_rate) if hit_rate is not None else "-",
    ] + ([f"{slo['burn_rate_fast']:.2f}"] if "burn_rate_fast" in slo else ["-"])


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return lines


def render_dashboard(stats: Dict[str, Any],
                     previous: Optional[Dict[str, Any]] = None,
                     interval_s: float = 2.0) -> str:
    """One dashboard frame from a ``stats`` op reply.

    ``previous`` is the prior poll's reply (or None on the first frame);
    per-shard QPS is the request-counter delta divided by ``interval_s``.
    """
    frontend = stats.get("frontend") or {}
    shards = stats.get("shards") or {}
    prev_shards = (previous or {}).get("shards") or {}
    slo = frontend.get("slo") or {}
    counters = (frontend.get("metrics") or {}).get("counters") or {}
    health = (frontend.get("health") or {}).get("shards") or {}
    tracer = frontend.get("tracer") or {}

    lines = [
        f"repro top — {len(shards)} shard(s), "
        f"queue depth {frontend.get('queue_depth', 0)}",
        "",
        "fleet slo",
        f"  attainment          {_fmt_pct(slo.get('attainment'))}"
        f"   (objective {_fmt_pct(slo.get('objective'))},"
        f" target {slo.get('latency_target_ms', '-')} ms)",
        f"  deadline attainment {_fmt_pct(slo.get('deadline_attainment'))}",
        f"  error budget left   {_fmt_pct(slo.get('error_budget_remaining'))}",
        f"  burn rate           fast {slo.get('burn_rate_fast', 0.0):.2f}x"
        f" / slow {slo.get('burn_rate_slow', 0.0):.2f}x",
        "",
        "frontend",
        f"  requests={counters.get('requests', 0)}"
        f" shed={counters.get('shed_queue', 0) + counters.get('shed_deadline', 0)}"
        f" failovers={counters.get('failovers', 0)}"
        f" retries={counters.get('retries', 0)}",
        f"  tracer spans={tracer.get('spans_started', 0)}"
        f" dropped={tracer.get('spans_dropped', 0)}"
        f" buffer={tracer.get('buffer_len', 0)}"
        f"/{tracer.get('max_spans', 0)}",
        "",
    ]
    telemetry = frontend.get("telemetry")
    if telemetry:
        lines.insert(-1,
                     f"  telemetry events={telemetry.get('events_written', 0)}"
                     f" dropped={telemetry.get('events_dropped', 0)}"
                     f" segment={telemetry.get('segment_seq', 0)}")

    rows = []
    for name in sorted(shards):
        snap = shards[name]
        qps = None
        prev = prev_shards.get(name)
        if snap and prev and interval_s > 0:
            now_requests = ((snap.get("metrics") or {}).get("counters")
                            or {}).get("requests", 0)
            then_requests = ((prev.get("metrics") or {}).get("counters")
                             or {}).get("requests", 0)
            qps = max(0.0, (now_requests - then_requests) / interval_s)
        rows.append(_shard_row(name, snap, health, qps))
    lines += _table(
        ["shard", "state", "req", "qps", "p50ms", "p95ms", "p99ms",
         "hit", "burn"],
        rows,
    )
    return "\n".join(lines) + "\n"


def run_top(host: str, port: int, interval_s: float = 2.0,
            iterations: Optional[int] = None, out=None) -> int:
    """Poll a fleet frontend and redraw the dashboard until interrupted.

    ``iterations`` bounds the loop (None = forever) so tests and the CI
    smoke job can take a fixed number of frames and exit.
    """
    from ..fleet import FleetClient

    stream = out if out is not None else sys.stdout
    clear = _CLEAR if getattr(stream, "isatty", lambda: False)() else ""
    previous: Optional[Dict[str, Any]] = None
    frame = 0
    try:
        while iterations is None or frame < iterations:
            with FleetClient(host, port) as client:
                stats = client.stats()
            stream.write(clear + render_dashboard(
                stats, previous, interval_s=interval_s))
            stream.flush()
            previous = stats
            frame += 1
            if iterations is not None and frame >= iterations:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
