"""repro.obs — unified tracing, metrics, and profiling.

Three telemetry concerns, one dependency-free layer:

* :mod:`repro.obs.tracing` — structured spans with thread-local nesting and
  a process-wide :data:`~repro.obs.tracing.tracer`; near-zero overhead while
  disabled, which is the default.
* :mod:`repro.obs.registry` — the canonical home of the metric primitives
  (:class:`~repro.obs.registry.Counter`,
  :class:`~repro.obs.registry.LatencyHistogram`,
  :class:`~repro.obs.registry.MetricsRegistry`,
  :class:`~repro.obs.registry.PerfCounters`) plus Prometheus
  text-exposition rendering.  ``repro.service.metrics`` and
  ``repro.core.counters`` re-export from here, so old import paths keep
  working.
* :mod:`repro.obs.export` — Chrome Trace Event JSON and a self-time /
  cumulative-time profile table over collected spans.
* :mod:`repro.obs.logging` — structured JSON log lines carrying the active
  trace id plus a process-wide context (shard name in shard processes).
* :mod:`repro.obs.telemetry` — the durable half: an append-only JSONL
  event store (segment rotation, bounded retention, corrupt-line
  quarantine) recording request lifecycles, per-op sim timings and
  planner search records, with a process-wide
  :func:`~repro.obs.telemetry.active` writer gate.
* :mod:`repro.obs.slo` — latency/deadline SLO accounting: good/bad
  classification against an :class:`~repro.obs.slo.SLOConfig`, error
  budget and fast/slow burn-rate windows.

Typical profiling session::

    from repro.obs import tracer, chrome_trace_document, render_profile

    tracer.enable()
    planner.plan(network, batch)
    spans = tracer.drain()
    tracer.disable()
    print(render_profile(spans))
"""

from .export import (
    REQUIRED_EVENT_KEYS,
    chrome_trace_document,
    chrome_trace_from_dicts,
    dict_spans_to_events,
    profile_rows,
    render_profile,
    save_trace_document,
    spans_to_events,
)
from .logging import (
    JsonLogFormatter,
    clear_log_context,
    configure_json_logging,
    get_logger,
    log_context,
    set_log_context,
)
from .registry import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    PerfCounters,
    planner_counters,
    render_prometheus,
)
from .slo import SLOConfig, SLOSpecError, SLOTracker
from .telemetry import TelemetryWriter
from .tracing import Span, Tracer, new_trace_id, tracer

__all__ = [
    "Counter",
    "JsonLogFormatter",
    "LatencyHistogram",
    "MetricsRegistry",
    "PerfCounters",
    "REQUIRED_EVENT_KEYS",
    "SLOConfig",
    "SLOSpecError",
    "SLOTracker",
    "Span",
    "TelemetryWriter",
    "Tracer",
    "clear_log_context",
    "log_context",
    "set_log_context",
    "chrome_trace_document",
    "chrome_trace_from_dicts",
    "configure_json_logging",
    "dict_spans_to_events",
    "get_logger",
    "new_trace_id",
    "planner_counters",
    "profile_rows",
    "render_profile",
    "render_prometheus",
    "save_trace_document",
    "spans_to_events",
    "tracer",
]
