"""repro.obs — unified tracing, metrics, and profiling.

Three telemetry concerns, one dependency-free layer:

* :mod:`repro.obs.tracing` — structured spans with thread-local nesting and
  a process-wide :data:`~repro.obs.tracing.tracer`; near-zero overhead while
  disabled, which is the default.
* :mod:`repro.obs.registry` — the canonical home of the metric primitives
  (:class:`~repro.obs.registry.Counter`,
  :class:`~repro.obs.registry.LatencyHistogram`,
  :class:`~repro.obs.registry.MetricsRegistry`,
  :class:`~repro.obs.registry.PerfCounters`) plus Prometheus
  text-exposition rendering.  ``repro.service.metrics`` and
  ``repro.core.counters`` re-export from here, so old import paths keep
  working.
* :mod:`repro.obs.export` — Chrome Trace Event JSON and a self-time /
  cumulative-time profile table over collected spans.
* :mod:`repro.obs.logging` — structured JSON log lines carrying the active
  trace id.

Typical profiling session::

    from repro.obs import tracer, chrome_trace_document, render_profile

    tracer.enable()
    planner.plan(network, batch)
    spans = tracer.drain()
    tracer.disable()
    print(render_profile(spans))
"""

from .export import (
    REQUIRED_EVENT_KEYS,
    chrome_trace_document,
    chrome_trace_from_dicts,
    dict_spans_to_events,
    profile_rows,
    render_profile,
    save_trace_document,
    spans_to_events,
)
from .logging import JsonLogFormatter, configure_json_logging, get_logger
from .registry import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    PerfCounters,
    planner_counters,
    render_prometheus,
)
from .tracing import Span, Tracer, new_trace_id, tracer

__all__ = [
    "Counter",
    "JsonLogFormatter",
    "LatencyHistogram",
    "MetricsRegistry",
    "PerfCounters",
    "REQUIRED_EVENT_KEYS",
    "Span",
    "Tracer",
    "chrome_trace_document",
    "chrome_trace_from_dicts",
    "configure_json_logging",
    "dict_spans_to_events",
    "get_logger",
    "new_trace_id",
    "planner_counters",
    "profile_rows",
    "render_profile",
    "render_prometheus",
    "save_trace_document",
    "spans_to_events",
    "tracer",
]
