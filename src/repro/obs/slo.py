"""SLO accounting: latency/deadline objectives and error-budget burn.

An SLO here is "fraction ``objective`` of requests answer within
``latency_ms``" plus, for deadline-carrying requests, deadline
attainment.  :class:`SLOTracker` classifies every observation as good or
bad against a frozen :class:`SLOConfig` and maintains:

* lifetime good/bad totals → **attainment** and **error budget
  remaining** (1.0 = untouched budget, 0.0 = exactly spent, negative =
  overspent);
* two sliding windows (fast/slow, the multiwindow burn-rate alerting
  shape) → **burn rate** = windowed error rate / (1 - objective), so
  burn 1.0 means "spending budget exactly as fast as the objective
  allows" and burn 14 on the fast window is the classic page-now signal;
* chaos attribution: observations flagged ``injected`` (a chaos fault
  touched the request) are counted separately so injected latency does
  not masquerade as organic SLO burn.

Spec strings are comma-separated ``key=value`` pairs, the
``ChaosSpec.parse`` convention::

    latency_ms=250                          # defaults elsewhere
    latency_ms=100,objective=0.999
    latency_ms=250,objective=0.99,window_fast_s=300,window_slow_s=3600

The tracker is snapshot-driven: :meth:`SLOTracker.snapshot` feeds the
``"slo"`` section of service/fleet stats, and
:func:`repro.obs.registry.render_prometheus` renders that section as
``repro_slo_*`` gauges and counters.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple


class SLOSpecError(ValueError):
    """An SLO spec string does not parse."""


@dataclass(frozen=True)
class SLOConfig:
    """A frozen latency/deadline objective."""

    latency_ms: float = 250.0     # a request this fast (or faster) is good
    objective: float = 0.99       # target fraction of good requests
    window_fast_s: float = 300.0  # fast burn-rate window (page-worthy)
    window_slow_s: float = 3600.0  # slow burn-rate window (ticket-worthy)

    _FIELDS = ("latency_ms", "objective", "window_fast_s", "window_slow_s")

    def __post_init__(self):
        if self.latency_ms <= 0:
            raise SLOSpecError("latency_ms must be positive")
        if not 0.0 < self.objective < 1.0:
            raise SLOSpecError("objective must be in (0, 1)")
        if self.window_fast_s <= 0 or self.window_slow_s <= 0:
            raise SLOSpecError("burn-rate windows must be positive")
        if self.window_fast_s > self.window_slow_s:
            raise SLOSpecError("window_fast_s cannot exceed window_slow_s")

    @property
    def latency_s(self) -> float:
        return self.latency_ms / 1e3

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    @classmethod
    def parse(cls, text: str) -> "SLOConfig":
        """Parse ``"latency_ms=250,objective=0.99,window_fast_s=300"``."""
        values: Dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in cls._FIELDS:
                raise SLOSpecError(
                    f"bad slo spec entry {part!r}; known keys: "
                    f"{', '.join(cls._FIELDS)}")
            try:
                values[key] = float(raw)
            except ValueError as exc:
                raise SLOSpecError(
                    f"bad slo spec value for {key}: {raw!r}") from exc
        return cls(**values)  # type: ignore[arg-type]

    def describe(self) -> str:
        return ",".join(f"{name}={getattr(self, name):g}"
                        for name in self._FIELDS)


#: bound on windowed samples kept for burn-rate math; at fleet rates this
#: covers the slow window comfortably and keeps memory flat under floods
_WINDOW_SAMPLE_CAP = 65536


class SLOTracker:
    """Thread-safe good/bad classifier with burn-rate windows.

    ``clock`` is injectable (monotonic seconds) so tests can drive the
    windows deterministically.
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if isinstance(config, str):
            config = SLOConfig.parse(config)
        self.config = config or SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self.good_total = 0
        self.bad_total = 0
        self.injected_bad_total = 0
        self.deadline_total = 0
        self.deadline_met_total = 0
        # (ts, good) pairs, newest right; pruned lazily against the slow
        # window on observe and snapshot
        self._window: Deque[Tuple[float, bool]] = \
            deque(maxlen=_WINDOW_SAMPLE_CAP)

    # ------------------------------------------------------------------
    def observe(
        self,
        latency_s: float,
        *,
        ok: bool = True,
        deadline_met: Optional[bool] = None,
        injected: bool = False,
    ) -> bool:
        """Classify one request; returns whether it was good.

        ``ok=False`` (errors, sheds) is always bad regardless of latency;
        ``deadline_met`` feeds deadline attainment when the request
        carried a deadline; ``injected`` marks chaos-touched requests for
        burn attribution.
        """
        good = bool(ok) and latency_s <= self.config.latency_s
        now = self._clock()
        with self._lock:
            if good:
                self.good_total += 1
            else:
                self.bad_total += 1
                if injected:
                    self.injected_bad_total += 1
            if deadline_met is not None:
                self.deadline_total += 1
                if deadline_met:
                    self.deadline_met_total += 1
            self._window.append((now, good))
            self._prune(now)
        return good

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_slow_s
        window = self._window
        while window and window[0][0] < horizon:
            window.popleft()

    def _window_rate(self, now: float, window_s: float) -> Optional[float]:
        horizon = now - window_s
        total = bad = 0
        for ts, good in self._window:
            if ts >= horizon:
                total += 1
                if not good:
                    bad += 1
        if not total:
            return None
        return bad / total

    def burn_rate(self, window_s: Optional[float] = None) -> float:
        """Windowed error rate over the error budget; 0.0 when idle.

        1.0 = spending budget exactly at the sustainable rate; >1 =
        overspending (burn 14.4 on a 5-minute window against a 99.9%%
        objective is the canonical page threshold).
        """
        if window_s is None:
            window_s = self.config.window_fast_s
        now = self._clock()
        with self._lock:
            self._prune(now)
            rate = self._window_rate(now, window_s)
        if rate is None:
            return 0.0
        return rate / self.config.error_budget

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        now = self._clock()
        with self._lock:
            self._prune(now)
            good, bad = self.good_total, self.bad_total
            injected_bad = self.injected_bad_total
            deadline_total = self.deadline_total
            deadline_met = self.deadline_met_total
            fast = self._window_rate(now, self.config.window_fast_s)
            slow = self._window_rate(now, self.config.window_slow_s)
        total = good + bad
        budget = self.config.error_budget
        return {
            "config": self.config.describe(),
            "latency_target_ms": self.config.latency_ms,
            "objective": self.config.objective,
            "good_total": good,
            "bad_total": bad,
            "injected_bad_total": injected_bad,
            "total": total,
            "attainment": (good / total) if total else None,
            "deadline_total": deadline_total,
            "deadline_met_total": deadline_met,
            "deadline_attainment": (
                deadline_met / deadline_total if deadline_total else None),
            "error_budget_remaining": (
                1.0 - (bad / total) / budget if total else 1.0),
            "burn_rate_fast": (fast / budget) if fast is not None else 0.0,
            "burn_rate_slow": (slow / budget) if slow is not None else 0.0,
            "window_fast_s": self.config.window_fast_s,
            "window_slow_s": self.config.window_slow_s,
        }

    def render(self, title: str = "slo") -> str:
        """Aligned text block for ``service-stats`` / ``fleet-stats``."""
        snap = self.snapshot()
        return render_slo_lines(snap, title)


def render_slo_lines(snap: Dict[str, Any], title: str = "slo") -> str:
    """Text rendering shared by live trackers and offline snapshots."""
    attainment = snap.get("attainment")
    deadline = snap.get("deadline_attainment")
    lines = [
        title,
        f"  target          p({snap.get('objective')}) <= "
        f"{snap.get('latency_target_ms')}ms",
        f"  requests        good={snap.get('good_total', 0)} "
        f"bad={snap.get('bad_total', 0)} "
        f"injected_bad={snap.get('injected_bad_total', 0)}",
        f"  attainment      "
        f"{'n/a' if attainment is None else f'{attainment:.4f}'}",
        f"  deadline        met={snap.get('deadline_met_total', 0)}"
        f"/{snap.get('deadline_total', 0)}"
        + ("" if deadline is None else f" ({deadline:.4f})"),
        f"  budget_left     {snap.get('error_budget_remaining', 1.0):.3f}",
        f"  burn_rate       fast={snap.get('burn_rate_fast', 0.0):.2f} "
        f"slow={snap.get('burn_rate_slow', 0.0):.2f}",
    ]
    return "\n".join(lines)
