"""The unified metrics registry: one home for every counter and histogram.

Before this module existed the repo had two disjoint metric islands —
``repro.service.metrics`` (request counters + latency histograms) and
``repro.core.counters`` (planner search-work counters).  Both now live
here; the old modules are thin re-export shims, so every historical import
path (``from repro.service.metrics import MetricsRegistry``, ``from
repro.core.counters import planner_counters``) still resolves to the same
objects.

Everything is dependency-free (no prometheus client in the image), but
:func:`render_prometheus` emits standard `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so a real
scraper — or ``curl`` — can consume the numbers:

* service counters   → ``repro_service_<name>_total`` (counter)
* latency histograms → ``repro_service_<name>_seconds`` (summary:
  ``{quantile=...}`` samples plus ``_sum``/``_count``) **and**
  ``repro_service_<name>_hist_seconds`` (real histogram: cumulative
  log-spaced ``_bucket{le=...}`` plus ``_sum``/``_count``)
* cache gauges       → ``repro_cache_<name>`` (gauge)
* planner counters   → ``repro_planner_<name>_total`` (counter)
* SLO tracker        → ``repro_slo_*`` (attainment/budget/burn gauges +
  good/bad counters, from the snapshot's ``"slo"`` section)
* tracer health      → ``repro_tracer_*`` (spans_started/dropped,
  buffer high-water; the 200k ``max_spans`` cap made visible)
* telemetry writer   → ``repro_telemetry_*`` (events written/dropped,
  segment rotation)

The canonical series names are enumerated in :data:`SERVICE_COUNTER_NAMES`
and :data:`PLANNER_COUNTER_NAMES`; the renderer always emits them (zero
when unobserved) so dashboards never see a series wink in and out of
existence, and ``docs/observability.md`` documents the same lists.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence

#: every counter the plan service increments (see repro.service.service)
SERVICE_COUNTER_NAMES = (
    "requests",
    "hits_memory",
    "hits_disk",
    "misses",
    "coalesced",
    "degraded",
    "errors",
    "planner_runs",
    "slow_requests",
)

#: every latency histogram the plan service observes
SERVICE_HISTOGRAM_NAMES = (
    "request_latency_s",
    "exact_plan_s",
)

#: every counter the planner search bumps (see repro.core.counters for the
#: per-name documentation; StepStats merges into these after each level)
PLANNER_COUNTER_NAMES = (
    "step_calls",
    "step_cache_hits",
    "boundary_calls",
    "boundary_cache_hits",
    "ratio_solves",
    "ratio_closed_linear",
    "ratio_closed_quadratic",
    "ratio_bisection_fallback",
    "ratio_minimax",
    "hierarchy_memo_hits",
    "hierarchy_memo_misses",
    "multipath_path_dp_runs",
    "vec_searches",
    "vec_pack_cache_hits",
    "vec_pack_cache_misses",
    "vec_pack_ns",
    "vec_recurrence_ns",
    "vec_multipath_batches",
)


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


#: log-spaced (powers-of-two) bucket upper bounds for streaming
#: histograms, 0.1ms … ~105s — wide enough for both cache hits and cold
#: exact plans.  Geometric spacing keeps relative error constant per
#: bucket, the right shape for latency.
DEFAULT_LATENCY_BUCKETS = tuple(1e-4 * 2 ** i for i in range(21))


class LatencyHistogram:
    """Reservoir of recent latency observations with exact-rank percentiles.

    Keeps the most recent ``window`` samples (deque eviction), which biases
    percentiles toward current behavior — the right bias for a serving
    dashboard.  ``count``/``total`` cover every observation ever made.

    Alongside the reservoir, every observation lands in a log-spaced
    streaming bucket (:data:`DEFAULT_LATENCY_BUCKETS` by default) covering
    **all** observations, which :func:`render_prometheus` exposes as a real
    Prometheus histogram (``_bucket{le=...}``/``_sum``/``_count``) next to
    the reservoir summary — the summary answers "what is latency now",
    the histogram supports PromQL ``histogram_quantile`` over any range.
    """

    def __init__(self, name: str, window: int = 4096,
                 buckets: Optional[Sequence[float]] = None):
        if window <= 0:
            raise ValueError("window must be positive")
        bounds = tuple(DEFAULT_LATENCY_BUCKETS if buckets is None else buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        if bounds and bounds[0] <= 0:
            raise ValueError("bucket bounds must be positive")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._bounds = bounds
        # one slot per bound plus the overflow (+Inf) slot
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total += seconds
            self._bucket_counts[bisect_left(self._bounds, seconds)] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir; None when empty."""
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(1, round(p / 100 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def buckets(self) -> Dict[str, List[float]]:
        """Per-bucket (non-cumulative) counts with their upper bounds."""
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "counts": list(self._bucket_counts),
            }

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "mean": (self.total / self.count) if self.count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "total": self.total,
            "buckets": self.buckets(),
        }


class Gauge:
    """A thread-safe point-in-time value, optionally carrying labels.

    Unlike counters, gauges go both ways — the fleet uses them for shard
    liveness (``shard_up{shard="0"}`` flips between 1 and 0 as health
    transitions happen).
    """

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class MetricsRegistry:
    """Creates-on-first-use registry of counters, gauges and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[tuple, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str, **labels: str) -> Gauge:
        """A gauge keyed by name *and* label set (``gauge("up", shard="0")``)."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(name, labels)
            return self._gauges[key]

    def histogram(self, name: str, window: int = 4096) -> LatencyHistogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(name, window)
            return self._histograms[name]

    def value(self, name: str) -> int:
        """Current value of a counter (0 if it was never incremented)."""
        with self._lock:
            counter = self._counters.get(name)
        return counter.value if counter else 0

    def gauge_value(self, name: str, **labels: str) -> float:
        """Current value of a gauge (0 if it was never touched)."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            gauge = self._gauges.get(key)
        return gauge.value if gauge else 0

    def snapshot(self) -> Dict:
        """JSON-compatible dump of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        snap = {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "histograms": {n: h.summary() for n, h in sorted(histograms.items())},
        }
        if gauges:  # absent (not empty) when unused: older snapshot shape
            snap["gauges"] = [
                {"name": g.name, "labels": g.labels, "value": g.value}
                for _, g in sorted(gauges.items())
            ]
        return snap

    def render(self, title: str = "service metrics") -> str:
        """Aligned text snapshot (the ``service-stats`` output)."""
        snap = self.snapshot()
        lines: List[str] = [title]
        if not snap["counters"] and not snap["histograms"] \
                and not snap.get("gauges"):
            lines.append("  (no metrics recorded)")
            return "\n".join(lines)
        width = max((len(n) for n in snap["counters"]), default=0)
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<{width}}  {value}")
        for entry in snap.get("gauges", []):
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            shown = entry["name"] + (f"{{{label_text}}}" if label_text else "")
            lines.append(f"  {shown}  {entry['value']}")
        for name, s in snap["histograms"].items():
            if not s["count"]:
                lines.append(f"  {name}  count=0")
                continue
            lines.append(
                f"  {name}  count={s['count']}"
                f" mean={s['mean'] * 1e3:.2f}ms"
                f" p50={s['p50'] * 1e3:.2f}ms"
                f" p95={s['p95'] * 1e3:.2f}ms"
                f" p99={s['p99'] * 1e3:.2f}ms"
            )
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """This registry's metrics alone, as Prometheus exposition text."""
        return render_prometheus({"metrics": self.snapshot()},
                                 include_defaults=False)


class PerfCounters:
    """Thread-safe registry of named monotonic counters (planner work)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("perf counters only go up")
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def merge(self, counts: Mapping[str, int]) -> None:
        """Fold a batch of local counts (e.g. a model's StepStats) in."""
        with self._lock:
            for name, amount in counts.items():
                if amount:
                    self._counts[name] = self._counts.get(name, 0) + amount

    def value(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """JSON-compatible dump, sorted by name."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        """Zero every counter (tests and benchmark isolation)."""
        with self._lock:
            self._counts.clear()


#: process-wide planner counters; surfaced by the plan service and benchmarks
planner_counters = PerfCounters()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _metric_name(prefix: str, raw: str) -> str:
    return f"{prefix}_{_NAME_OK.sub('_', raw)}"


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _histogram_metric_name(raw: str) -> str:
    """``request_latency_s`` → ``repro_service_request_latency_seconds``."""
    base = _NAME_OK.sub("_", raw)
    if base.endswith("_s"):
        base = base[:-2]
    if not base.endswith("_seconds"):
        base += "_seconds"
    return f"repro_service_{base}"


def _bucket_metric_name(raw: str) -> str:
    """``request_latency_s`` → ``repro_service_request_latency_hist_seconds``.

    A Prometheus metric name cannot be both a summary and a histogram, so
    the real-histogram series (``_bucket{le=...}``) live under a distinct
    ``_hist_seconds`` name next to the reservoir summary.
    """
    name = _histogram_metric_name(raw)
    return name[: -len("_seconds")] + "_hist_seconds"


def _escape_label_value(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _label_text(labels: Optional[Mapping], extra: str = "") -> str:
    """``{k="v",...}`` rendered from a label mapping (plus a raw pair)."""
    pairs = [f'{k}="{_escape_label_value(v)}"'
             for k, v in (labels or {}).items()]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(
    snapshot: Mapping,
    include_defaults: bool = True,
    labels: Optional[Mapping] = None,
) -> str:
    """Render a service-stats snapshot as Prometheus exposition text.

    ``snapshot`` is the :meth:`repro.service.service.PlanService.snapshot`
    shape — ``{"metrics": {"counters", "histograms"}, "cache": {...},
    "planner": {...}}`` — with every part optional, so the offline
    ``repro service-stats --format prometheus`` can render a partial (or
    empty) snapshot loaded from disk.  With ``include_defaults`` the
    canonical service and planner series are always present, zero-valued
    when unobserved.

    ``labels`` attaches a constant label set to **every** emitted sample —
    the fleet renders each shard's snapshot with ``{"shard": name}`` so
    one scrape of ``repro fleet-stats --format prometheus`` yields
    distinguishable per-shard series instead of colliding names.
    """
    metrics = snapshot.get("metrics", {}) or {}
    counters = dict(metrics.get("counters", {}) or {})
    histograms = dict(metrics.get("histograms", {}) or {})
    cache = dict(snapshot.get("cache", {}) or {})
    planner = dict(snapshot.get("planner", {}) or {})

    if include_defaults:
        for name in SERVICE_COUNTER_NAMES:
            counters.setdefault(name, 0)
        for name in SERVICE_HISTOGRAM_NAMES:
            histograms.setdefault(
                name, {"count": 0, "mean": None, "p50": None,
                       "p95": None, "p99": None, "total": 0.0,
                       "buckets": {
                           "bounds": list(DEFAULT_LATENCY_BUCKETS),
                           "counts": [0] * (len(DEFAULT_LATENCY_BUCKETS) + 1),
                       }})
        for name in PLANNER_COUNTER_NAMES:
            planner.setdefault(name, 0)

    base = _label_text(labels)
    lines: List[str] = []
    for raw in sorted(counters):
        name = _metric_name("repro_service", raw)
        if not name.endswith("_total"):  # fleet names already carry it
            name += "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{base} {_format_value(counters[raw])}")

    for raw in sorted(histograms):
        s = histograms[raw]
        name = _histogram_metric_name(raw)
        count = int(s.get("count") or 0)
        mean = s.get("mean")
        total = s.get("total")
        if total is None:  # pre-bucket snapshots carry only the mean
            total = (mean or 0.0) * count
        lines.append(f"# TYPE {name} summary")
        for quantile, key in _QUANTILES:
            value = s.get(key)
            if value is None and count:
                continue
            quantile_labels = _label_text(labels, f'quantile="{quantile}"')
            lines.append(f"{name}{quantile_labels} {_format_value(value)}")
        lines.append(f"{name}_sum{base} {_format_value(total)}")
        lines.append(f"{name}_count{base} {count}")

        # the real histogram series: cumulative log-spaced buckets under a
        # distinct _hist_seconds name (a metric cannot be summary AND
        # histogram); `le` is cumulative and ends at +Inf == _count
        buckets = s.get("buckets") or {}
        bounds = buckets.get("bounds") or []
        per_bucket = buckets.get("counts") or []
        if bounds and len(per_bucket) == len(bounds) + 1:
            hist_name = _bucket_metric_name(raw)
            lines.append(f"# TYPE {hist_name} histogram")
            cumulative = 0
            for bound, bucket_count in zip(bounds, per_bucket):
                cumulative += int(bucket_count)
                le_labels = _label_text(
                    labels, f'le="{_format_value(bound)}"')
                lines.append(f"{hist_name}_bucket{le_labels} {cumulative}")
            cumulative += int(per_bucket[-1])
            inf_labels = _label_text(labels, 'le="+Inf"')
            lines.append(f"{hist_name}_bucket{inf_labels} {cumulative}")
            lines.append(f"{hist_name}_sum{base} {_format_value(total)}")
            lines.append(f"{hist_name}_count{base} {cumulative}")

    # labelled gauges (fleet health: shard_up{shard="0"} and friends)
    seen_gauge_types = set()
    for entry in metrics.get("gauges") or []:
        name = _metric_name("repro_fleet", entry.get("name", "gauge"))
        if name not in seen_gauge_types:
            lines.append(f"# TYPE {name} gauge")
            seen_gauge_types.add(name)
        merged = dict(labels or {})
        merged.update(entry.get("labels") or {})
        lines.append(
            f"{name}{_label_text(merged)} "
            f"{_format_value(entry.get('value'))}")

    for raw in sorted(cache):
        name = _metric_name("repro_cache", raw)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{base} {_format_value(cache[raw])}")

    for raw in sorted(planner):
        name = _metric_name("repro_planner", raw) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{base} {_format_value(planner[raw])}")

    # SLO section: attainment/budget gauges + good/bad counters
    slo = dict(snapshot.get("slo", {}) or {})
    if slo:
        for raw in ("good", "bad", "injected_bad", "deadline",
                    "deadline_met"):
            name = f"repro_slo_{raw}_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{base} "
                f"{_format_value(slo.get(raw + '_total', 0))}")
        gauges = [
            ("repro_slo_latency_target_seconds",
             (slo.get("latency_target_ms") or 0.0) / 1e3),
            ("repro_slo_objective", slo.get("objective")),
            ("repro_slo_attainment", slo.get("attainment")),
            ("repro_slo_deadline_attainment",
             slo.get("deadline_attainment")),
            ("repro_slo_error_budget_remaining",
             slo.get("error_budget_remaining")),
        ]
        for name, value in gauges:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{base} {_format_value(value)}")
        lines.append("# TYPE repro_slo_burn_rate gauge")
        for window in ("fast", "slow"):
            window_labels = _label_text(labels, f'window="{window}"')
            lines.append(
                f"repro_slo_burn_rate{window_labels} "
                f"{_format_value(slo.get(f'burn_rate_{window}', 0.0))}")

    # tracer buffer health: silent span truncation must be visible
    tracer = dict(snapshot.get("tracer", {}) or {})
    if tracer:
        for raw in ("spans_started", "spans_dropped"):
            name = f"repro_tracer_{raw}_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{base} {_format_value(tracer.get(raw, 0))}")
        for raw in ("enabled", "buffer_len", "buffer_high_water",
                    "max_spans"):
            name = f"repro_tracer_{raw}"
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{base} {_format_value(tracer.get(raw, 0))}")

    # durable telemetry writer health
    telemetry = dict(snapshot.get("telemetry", {}) or {})
    if telemetry:
        for raw in ("events_written", "events_dropped", "bytes_written",
                    "segments_rotated", "segments_deleted"):
            name = f"repro_telemetry_{raw}_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{base} {_format_value(telemetry.get(raw, 0))}")
        for raw in ("enabled", "segment_seq"):
            name = f"repro_telemetry_{raw}"
            lines.append(f"# TYPE {name} gauge")
            lines.append(
                f"{name}{base} {_format_value(telemetry.get(raw, 0))}")

    return "\n".join(lines) + "\n"
