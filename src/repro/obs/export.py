"""Span exporters: Chrome Trace Event JSON and a self-time profile table.

The Chrome trace here is the *execution-side* twin of
:mod:`repro.sim.timeline`: that module renders where the **simulated**
iteration spends its time on the accelerator array; this one renders where
the **planner itself** spends wall-clock time producing the plan.  Both
emit the same Trace Event Format (complete ``"X"`` events), so both load
in ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.

The profile table aggregates spans by name into cumulative time (span
duration, children included) and self time (duration minus direct
children), the two columns any profiler reader expects.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, NamedTuple, Sequence

from ..ioutil import atomic_write_text
from .tracing import Span, thread_rows

#: keys the Trace Event Format requires on every complete ("X") event
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def spans_to_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Complete ``"X"`` trace events, timestamps rebased to the first span.

    ``tid`` is a stable small integer per OS thread (worker-pool traces get
    one row per worker); attributes — including the trace id — land in
    ``args``, where the trace viewers display them on click.
    """
    finished = [s for s in spans if s.complete]
    if not finished:
        return []
    rows = thread_rows(finished)
    origin = min(s.start_ns for s in finished)
    events: List[Dict[str, Any]] = []
    for span in sorted(finished, key=lambda s: (s.start_ns, s.span_id)):
        args: Dict[str, Any] = dict(span.attributes)
        if span.trace_id:
            args["trace_id"] = span.trace_id
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": round((span.start_ns - origin) / 1e3, 3),
            "dur": round(max(span.duration_ns / 1e3, 0.001), 3),
            "pid": 0,
            "tid": rows[span.thread_id],
            "args": args,
        })
    return events


def chrome_trace_document(spans: Sequence[Span]) -> Dict[str, Any]:
    """The JSON document Chrome/Perfetto load: events + display unit."""
    return {"traceEvents": spans_to_events(spans), "displayTimeUnit": "ms"}


def dict_spans_to_events(
    span_dicts: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Trace events from :meth:`Span.as_dict` documents, multi-process aware.

    The fleet ships spans across process boundaries as JSON (a shard
    process cannot hand over :class:`Span` objects), tagging each with a
    ``"process"`` name ("frontend", "shard-0", ...).  Each distinct process
    gets its own ``pid`` row plus a ``process_name`` metadata event, and
    timestamps are rebased to the earliest span across *all* processes —
    ``perf_counter_ns`` on Linux is CLOCK_MONOTONIC, comparable between
    processes on one machine, so cross-shard fan-out renders on one
    coherent timeline with trace ids intact in ``args``.
    """
    finished = [
        s for s in span_dicts
        if s.get("end_ns", 0) >= s.get("start_ns", 0) > 0
    ]
    if not finished:
        return []
    origin = min(s["start_ns"] for s in finished)
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    ordered = sorted(
        finished,
        key=lambda s: (s.get("process", ""), s["start_ns"],
                       s.get("span_id", 0)),
    )
    for span in ordered:
        process = str(span.get("process", "main"))
        if process not in pids:
            pids[process] = len(pids)
            events.append({
                "name": "process_name", "ph": "M", "ts": 0, "dur": 0,
                "pid": pids[process], "tid": 0,
                "args": {"name": process},
            })
        thread_key = (process, span.get("thread_id", 0))
        if thread_key not in tids:
            tids[thread_key] = sum(1 for k in tids if k[0] == process)
        args: Dict[str, Any] = dict(span.get("attributes") or {})
        if span.get("trace_id"):
            args["trace_id"] = span["trace_id"]
        events.append({
            "name": span.get("name", "?"),
            "cat": span.get("category", "fleet"),
            "ph": "X",
            "ts": round((span["start_ns"] - origin) / 1e3, 3),
            "dur": round(max((span["end_ns"] - span["start_ns"]) / 1e3,
                             0.001), 3),
            "pid": pids[process],
            "tid": tids[thread_key],
            "args": args,
        })
    return events


def chrome_trace_from_dicts(
    span_dicts: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Chrome/Perfetto document over cross-process span dictionaries."""
    return {"traceEvents": dict_spans_to_events(span_dicts),
            "displayTimeUnit": "ms"}


def save_trace_document(document: Dict[str, Any], path) -> None:
    """Atomically persist a trace document as JSON."""
    atomic_write_text(path, json.dumps(document, indent=1) + "\n")


class ProfileRow(NamedTuple):
    """One aggregated line of the profile table."""

    name: str
    count: int
    cumulative_ms: float
    self_ms: float


def profile_rows(spans: Sequence[Span]) -> List[ProfileRow]:
    """Aggregate spans by name; sorted by descending self time.

    Self time is a span's duration minus its *direct* children's durations
    (floored at zero against clock skew), so the table's self-time column
    sums to roughly the roots' cumulative time — the property that lets a
    reader find where wall-clock actually went.
    """
    finished = [s for s in spans if s.complete]
    child_ns: Dict[int, int] = {}
    for span in finished:
        if span.parent_id is not None:
            child_ns[span.parent_id] = (
                child_ns.get(span.parent_id, 0) + span.duration_ns
            )

    totals: Dict[str, List[float]] = {}
    for span in finished:
        self_ns = max(span.duration_ns - child_ns.get(span.span_id, 0), 0)
        bucket = totals.setdefault(span.name, [0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += span.duration_ns
        bucket[2] += self_ns

    rows = [
        ProfileRow(name, int(count), cum / 1e6, self_ / 1e6)
        for name, (count, cum, self_) in totals.items()
    ]
    rows.sort(key=lambda r: (-r.self_ms, r.name))
    return rows


def render_profile(spans: Sequence[Span], title: str = "planner profile") -> str:
    """Aligned text profile table over a span list."""
    rows = profile_rows(spans)
    lines = [title]
    if not rows:
        lines.append("  (no spans collected)")
        return "\n".join(lines)
    width = max(max(len(r.name) for r in rows), len("span"))
    lines.append(f"  {'span':<{width}}  {'count':>7}  "
                 f"{'self ms':>10}  {'cum ms':>10}")
    for row in rows:
        lines.append(
            f"  {row.name:<{width}}  {row.count:>7}  "
            f"{row.self_ms:>10.3f}  {row.cumulative_ms:>10.3f}"
        )
    return "\n".join(lines)
