"""Durable telemetry: an append-only JSONL event store with rotation.

The PR 4 observability layer is in-memory only — spans and reservoir
percentiles vanish on restart.  This module is the durable half: every
event is one JSON object on one line, written with a single ``os.write``
on an ``O_APPEND`` descriptor (atomic at the line level on POSIX), into
size-rotated segment files with bounded retention::

    <dir>/events-00000001.jsonl
    <dir>/events-00000002.jsonl        # newest; the writer appends here
    <dir>/events-00000001.jsonl.corrupt  # quarantined lines (scrub)

Four event types flow through the store (``docs/observability.md`` has
the full schema table):

* ``request``   — one per plan request, from :class:`PlanService` and the
  fleet frontend (fingerprint, backend, shard, deadline, outcome,
  failover/chaos tags, latency);
* ``op_timing`` — one per (layer, phase) leaf evaluation in
  :func:`repro.sim.evaluate` (the measured-profile input the
  profile-guided calibration item in ROADMAP.md consumes);
* ``search``    — one per :meth:`Planner.plan` call (elapsed time plus a
  delta snapshot of the ``vec_*``/step planner counters);
* ``chaos``     — one per injected wire fault, so SLO burn attribution
  can separate injected latency from organic latency.

Design rules, mirrored from the PR 7 cache and chaos harness:

* **disabled path costs nothing** — every producer guards with
  ``t is not None and t.enabled`` before building the event dict, and
  the process-wide :func:`active` gate is one attribute read;
* **corrupt lines are quarantined, never deleted** — :func:`scrub`
  rewrites a damaged segment atomically without its bad lines and
  appends them to ``<segment>.corrupt`` (the PR 7 ``*.json.corrupt``
  convention), while :func:`iter_events` simply skips and counts them;
* **restart starts a fresh segment** — a crashed writer may leave a torn
  final line; the successor never appends after it, so damage stays
  confined to one segment tail.
"""

from __future__ import annotations

import io
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..ioutil import atomic_write_text

#: environment variable carrying a telemetry directory for process-wide
#: installation (the CLI's ``serve --telemetry-dir`` sets the same thing up)
TELEMETRY_ENV = "REPRO_TELEMETRY_DIR"

#: the event types the store understands (free-form extras are allowed,
#: but the CLI summary groups by these)
EVENT_TYPES = ("request", "op_timing", "search", "chaos")

SEGMENT_PATTERN = re.compile(r"^events-(\d{8})\.jsonl$")
QUARANTINE_SUFFIX = ".corrupt"

DEFAULT_MAX_SEGMENT_BYTES = 4 * 1024 * 1024
DEFAULT_MAX_SEGMENTS = 8


class TelemetryError(ValueError):
    """Bad telemetry configuration or an unusable store directory."""


def _segment_name(seq: int) -> str:
    return f"events-{seq:08d}.jsonl"


def segment_paths(directory) -> List[Path]:
    """Every segment in ``directory``, oldest first; [] when absent."""
    root = Path(directory)
    if not root.is_dir():
        return []
    found = []
    for entry in root.iterdir():
        match = SEGMENT_PATTERN.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


class TelemetryWriter:
    """Append-only JSONL writer with size rotation and bounded retention.

    Thread-safe; one instance is shared by every producer in a process
    (service request path, sim evaluator, planner).  ``enabled`` is the
    hot-path gate: producers must check it **before** building the event
    dict, so a disabled writer costs one attribute read and nothing else.
    """

    def __init__(
        self,
        directory,
        *,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        enabled: bool = True,
        clock: Callable[[], float] = time.time,
    ):
        if max_segment_bytes <= 0:
            raise TelemetryError("max_segment_bytes must be positive")
        if max_segments <= 0:
            raise TelemetryError("max_segments must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self.max_segments = max_segments
        self.enabled = enabled
        self._clock = clock
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._segment_bytes = 0
        # a restarted writer never appends after a possibly-torn tail:
        # it opens the segment after the newest existing one
        existing = segment_paths(self.directory)
        self._seq = (int(SEGMENT_PATTERN.match(existing[-1].name).group(1))
                     if existing else 0)
        self.events_written = 0
        self.events_dropped = 0
        self.bytes_written = 0
        self.segments_rotated = 0
        self.segments_deleted = 0

    # ------------------------------------------------------------------
    @property
    def segment_path(self) -> Optional[Path]:
        """The segment currently being appended to (None before any write)."""
        if self._fd is None:
            return None
        return self.directory / _segment_name(self._seq)

    def _open_next(self) -> None:
        self._seq += 1
        path = self.directory / _segment_name(self._seq)
        self._fd = os.open(
            str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._segment_bytes = 0
        self.segments_rotated += 1
        self._enforce_retention()

    def _enforce_retention(self) -> None:
        segments = segment_paths(self.directory)
        while len(segments) > self.max_segments:
            victim = segments.pop(0)
            try:
                victim.unlink()
                self.segments_deleted += 1
            except OSError:
                break
            # the quarantine sidecar travels with its segment
            sidecar = victim.with_name(victim.name + QUARANTINE_SUFFIX)
            try:
                sidecar.unlink()
            except OSError:
                pass

    def record(self, event: Dict[str, Any]) -> None:
        """Durably append one event (stamped with ``ts`` if absent).

        One ``os.write`` per event on an ``O_APPEND`` descriptor: readers
        and concurrent writers never interleave within a line.  Write
        errors are counted (``events_dropped``) instead of raised — losing
        a telemetry line must never fail a plan request.
        """
        if not self.enabled:
            return
        if "ts" not in event:
            event["ts"] = round(self._clock(), 6)
        line = json.dumps(event, separators=(",", ":"),
                          sort_keys=False, default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            try:
                if self._fd is None or \
                        self._segment_bytes + len(data) > self.max_segment_bytes:
                    if self._fd is not None:
                        os.close(self._fd)
                        self._fd = None
                    self._open_next()
                os.write(self._fd, data)
            except OSError:
                self.events_dropped += 1
                return
            self._segment_bytes += len(data)
            self.events_written += 1
            self.bytes_written += len(data)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": str(self.directory),
                "enabled": self.enabled,
                "events_written": self.events_written,
                "events_dropped": self.events_dropped,
                "bytes_written": self.bytes_written,
                "segments_rotated": self.segments_rotated,
                "segments_deleted": self.segments_deleted,
                "segment_seq": self._seq,
            }


# ----------------------------------------------------------------------
# reading back
# ----------------------------------------------------------------------

@dataclass
class ReadReport:
    """What a read pass over a store saw."""

    events: int = 0
    corrupt_lines: int = 0
    segments: int = 0
    quarantined: List[str] = field(default_factory=list)


def iter_events(
    directory,
    types: Optional[Iterable[str]] = None,
    report: Optional[ReadReport] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield every event in the store, oldest segment first.

    Unparseable lines are skipped and counted in ``report`` (a torn tail
    from a crashed writer is expected, not fatal); :func:`scrub`
    quarantines them durably.
    """
    wanted = set(types) if types is not None else None
    for path in segment_paths(directory):
        if report is not None:
            report.segments += 1
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                event = json.loads(line)
                if not isinstance(event, dict):
                    raise ValueError("not an object")
            except ValueError:
                if report is not None:
                    report.corrupt_lines += 1
                continue
            if report is not None:
                report.events += 1
            if wanted is None or event.get("type") in wanted:
                yield event


def read_events(directory,
                types: Optional[Iterable[str]] = None) -> List[Dict[str, Any]]:
    return list(iter_events(directory, types))


def scrub(directory) -> ReadReport:
    """Quarantine corrupt lines: rewrite damaged segments without them.

    Mirrors the PR 7 cache convention — bad data moves to a ``*.corrupt``
    sidecar (appended, never deleted) so nothing is silently destroyed,
    and the segment itself is rewritten atomically with only its good
    lines.  Returns the combined read report.
    """
    report = ReadReport()
    for path in segment_paths(directory):
        report.segments += 1
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        good: List[str] = []
        bad: List[str] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                event = json.loads(line)
                if not isinstance(event, dict):
                    raise ValueError("not an object")
            except ValueError:
                bad.append(line)
                continue
            good.append(line)
        report.events += len(good)
        if not bad:
            continue
        report.corrupt_lines += len(bad)
        sidecar = path.with_name(path.name + QUARANTINE_SUFFIX)
        with io.open(sidecar, "a", encoding="utf-8") as handle:
            for line in bad:
                handle.write(line + "\n")
        atomic_write_text(path, "".join(line + "\n" for line in good))
        report.quarantined.append(str(sidecar))
    return report


# ----------------------------------------------------------------------
# aggregation: summary and calibration export
# ----------------------------------------------------------------------

def _percentile(ordered: List[float], p: float) -> Optional[float]:
    if not ordered:
        return None
    rank = max(1, round(p / 100 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(directory) -> Dict[str, Any]:
    """Aggregate a store into the ``repro telemetry summary`` report."""
    report = ReadReport()
    by_type: Dict[str, int] = {name: 0 for name in EVENT_TYPES}
    outcomes: Dict[str, int] = {}
    shards: Dict[str, int] = {}
    backends: Dict[str, int] = {}
    latencies: List[float] = []
    injected_latencies: List[float] = []
    deadline_total = deadline_met = 0
    failovers = 0
    chaos_faults: Dict[str, int] = {}
    chaos_trace_ids = set()
    search_elapsed_ms = 0.0
    search_count = 0
    op_hardware: Dict[str, int] = {}

    events = list(iter_events(directory, report=report))
    # chaos events first: request records join on trace_id
    for event in events:
        if event.get("type") == "chaos":
            for fault in event.get("faults", ()):
                chaos_faults[fault] = chaos_faults.get(fault, 0) + 1
            trace_id = event.get("trace_id")
            if trace_id:
                chaos_trace_ids.add(trace_id)

    for event in events:
        etype = event.get("type", "unknown")
        by_type[etype] = by_type.get(etype, 0) + 1
        if etype == "request":
            outcome = event.get("outcome", "unknown")
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            shard = event.get("shard")
            if shard is not None:
                shards[str(shard)] = shards.get(str(shard), 0) + 1
            latency_ms = event.get("latency_ms")
            injected = bool(event.get("chaos")) or \
                (event.get("trace_id") in chaos_trace_ids)
            if isinstance(latency_ms, (int, float)):
                (injected_latencies if injected else latencies).append(
                    float(latency_ms))
            if event.get("deadline_ms") is not None:
                deadline_total += 1
                if event.get("deadline_met"):
                    deadline_met += 1
            if event.get("failover_from"):
                failovers += 1
        elif etype == "search":
            backend = event.get("backend", "unknown")
            backends[backend] = backends.get(backend, 0) + 1
            elapsed = event.get("elapsed_ms")
            if isinstance(elapsed, (int, float)):
                search_elapsed_ms += float(elapsed)
                search_count += 1
        elif etype == "op_timing":
            hardware = event.get("hardware", "unknown")
            op_hardware[hardware] = op_hardware.get(hardware, 0) + 1

    ordered = sorted(latencies)
    ordered_injected = sorted(injected_latencies)
    return {
        "directory": str(directory),
        "segments": report.segments,
        "events": report.events,
        "corrupt_lines": report.corrupt_lines,
        "by_type": {k: v for k, v in sorted(by_type.items()) if v},
        "requests": {
            "outcomes": dict(sorted(outcomes.items())),
            "by_shard": dict(sorted(shards.items())),
            "failovers": failovers,
            "deadline_total": deadline_total,
            "deadline_met": deadline_met,
            "deadline_attainment": (
                deadline_met / deadline_total if deadline_total else None),
            "organic": {
                "count": len(ordered),
                "p50_ms": _percentile(ordered, 50),
                "p95_ms": _percentile(ordered, 95),
                "p99_ms": _percentile(ordered, 99),
            },
            "chaos_injected": {
                "count": len(ordered_injected),
                "p50_ms": _percentile(ordered_injected, 50),
                "p95_ms": _percentile(ordered_injected, 95),
                "p99_ms": _percentile(ordered_injected, 99),
            },
        },
        "chaos_faults": dict(sorted(chaos_faults.items())),
        "search": {
            "by_backend": dict(sorted(backends.items())),
            "count": search_count,
            "total_elapsed_ms": round(search_elapsed_ms, 3),
        },
        "op_timing": {"by_hardware": dict(sorted(op_hardware.items()))},
    }


#: schema tag on the calibration export; the calibration PR keys on it
CALIBRATION_SCHEMA = "repro.telemetry.calibration/v1"

#: cap on raw samples retained per (hardware, op, phase) series — enough
#: for a curve fit, bounded so an export never balloons
CALIBRATION_MAX_SAMPLES = 512


def calibration_export(directory) -> Dict[str, Any]:
    """Aggregate ``op_timing`` events into the calibration ingest format.

    Output: per hardware spec, per ``<kind>/<phase>`` series with count,
    total/min/max seconds and up to :data:`CALIBRATION_MAX_SAMPLES` raw
    ``(elements, flops, seconds)`` samples — exactly what a tensor-size →
    time curve fit (the ROADMAP's profile-guided calibration item) needs.
    """
    hardware: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for event in iter_events(directory, types=("op_timing",)):
        spec = str(event.get("hardware", "unknown"))
        kind = event.get("kind", event.get("op", "op"))
        phase = event.get("phase", "total")
        key = f"{kind}/{phase}"
        series = hardware.setdefault(spec, {}).setdefault(key, {
            "count": 0, "total_s": 0.0, "min_s": None, "max_s": None,
            "samples": [],
        })
        seconds = event.get("time_s")
        if not isinstance(seconds, (int, float)):
            continue
        seconds = float(seconds)
        series["count"] += 1
        series["total_s"] += seconds
        series["min_s"] = (seconds if series["min_s"] is None
                           else min(series["min_s"], seconds))
        series["max_s"] = (seconds if series["max_s"] is None
                           else max(series["max_s"], seconds))
        if len(series["samples"]) < CALIBRATION_MAX_SAMPLES:
            sample = {
                "elements": event.get("elements"),
                "flops": event.get("flops"),
                "seconds": seconds,
                "op": event.get("op"),
                "model": event.get("model"),
                "batch": event.get("batch"),
            }
            # board count and transfer count ride along when present: the
            # profile fitter (repro.calib) normalizes rates per board and
            # recovers the per-transfer latency from the transfer count
            if event.get("devices") is not None:
                sample["devices"] = event.get("devices")
            if event.get("transfers") is not None:
                sample["transfers"] = event.get("transfers")
            series["samples"].append(sample)
    for spec_series in hardware.values():
        for series in spec_series.values():
            count = series["count"]
            series["mean_s"] = series["total_s"] / count if count else None
            series["total_s"] = round(series["total_s"], 9)
    return {
        "schema": CALIBRATION_SCHEMA,
        "source": str(directory),
        "hardware": dict(sorted(hardware.items())),
    }


# ----------------------------------------------------------------------
# process-wide installation (the env-var / CLI gate, chaos.py pattern)
# ----------------------------------------------------------------------

_active: Optional[TelemetryWriter] = None
_env_checked = False
_active_lock = threading.Lock()


def install(target, **kwargs) -> TelemetryWriter:
    """Install a process-wide writer (directory path or writer instance)."""
    global _active, _env_checked
    writer = target if isinstance(target, TelemetryWriter) \
        else TelemetryWriter(target, **kwargs)
    with _active_lock:
        _active = writer
        _env_checked = True
    return writer


def uninstall() -> None:
    """Remove the process-wide writer (and forget the env-var check)."""
    global _active, _env_checked
    with _active_lock:
        if _active is not None:
            _active.close()
        _active = None
        _env_checked = False


def active() -> Optional[TelemetryWriter]:
    """The process-wide writer, auto-installed from ``REPRO_TELEMETRY_DIR``.

    The common (disabled) path is one attribute read — producers call this
    per request / per plan, so it must cost nothing when telemetry is off.
    """
    global _active, _env_checked
    if _active is not None or _env_checked:
        return _active
    with _active_lock:
        if not _env_checked:
            directory = os.environ.get(TELEMETRY_ENV)
            if directory:
                _active = TelemetryWriter(directory)
            _env_checked = True
        return _active
