"""Structured span tracing for the planner and the plan service.

A :class:`Span` is one timed region of execution — a hierarchy level plan, a
DP stage, a ratio solve, a service request — with nanosecond timestamps,
free-form attributes and a parent pointer maintained by a thread-local
stack, so concurrent planning jobs in the service's worker pool each build
their own correctly nested tree.

Design constraints, in priority order:

1. **Disabled means free.**  The process-wide :data:`tracer` starts
   disabled and every hot call site guards on the single attribute read
   ``tracer.enabled`` before building a span (the DP inner loop performs
   *no* allocation on the disabled path — asserted by
   ``tests/test_obs_tracing.py`` via :attr:`Tracer.spans_started`, not by
   timing).  Cold call sites may call :meth:`Tracer.span` unconditionally;
   it returns the shared :data:`NULL_SPAN` singleton while disabled.
2. **No dependencies.**  Only the standard library; the exporters in
   :mod:`repro.obs.export` turn collected spans into Chrome Trace Event
   JSON and profile tables.
3. **Bounded memory.**  A tracer keeps at most ``max_spans`` finished
   spans; further spans are timed but dropped (counted in
   :attr:`Tracer.spans_dropped`), so an accidentally long trace session
   degrades instead of exhausting memory.

Trace ids are 16-hex-char request correlators (:func:`new_trace_id`): the
service generates one per request, stores it in the tracer's thread-local
slot (:meth:`Tracer.set_trace_id`), and both spans and the JSON log
formatter pick it up from there.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id for request correlation."""
    return os.urandom(8).hex()


class Span:
    """One timed, attributed region; also its own context manager.

    ``__slots__`` and direct attribute bumps keep construction cheap: a
    fully-enabled planner trace creates one of these per hierarchy node,
    DP stage and ratio solve.
    """

    __slots__ = (
        "name",
        "category",
        "span_id",
        "parent_id",
        "trace_id",
        "thread_id",
        "start_ns",
        "end_ns",
        "attributes",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attributes: Optional[Dict[str, Any]]):
        self.name = name
        self.category = category
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.trace_id: Optional[str] = None
        self.thread_id = 0
        self.start_ns = 0
        self.end_ns = 0
        self.attributes: Dict[str, Any] = attributes if attributes else {}
        self._tracer = tracer

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (e.g. a result only known at span end)."""
        self.attributes[key] = value

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def complete(self) -> bool:
        """True once the span has both endpoints recorded."""
        return self.end_ns >= self.start_ns > 0

    def __enter__(self) -> "Span":
        local = self._tracer._local
        stack: List[Span] = getattr(local, "stack", None) or []
        if stack:
            self.parent_id = stack[-1].span_id
        self.trace_id = getattr(local, "trace_id", None)
        self.thread_id = threading.get_ident()
        stack.append(self)
        local.stack = stack
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self.end_ns = time.perf_counter_ns()
        stack = self._tracer._local.stack
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._collect(self)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible dump (tests and ad-hoc inspection)."""
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "thread_id": self.thread_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


#: shared disabled-path singleton; never allocated per call
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans process-wide; disabled (and nearly free) by default."""

    def __init__(self, enabled: bool = False, max_spans: int = 200_000):
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.enabled = enabled
        self.max_spans = max_spans
        #: spans actually started (never bumped on the disabled path; the
        #: no-allocation tests assert on deltas of this counter)
        self.spans_started = 0
        #: finished spans discarded because the buffer was full
        self.spans_dropped = 0
        #: most spans ever held at once — how close the buffer has come
        #: to the ``max_spans`` cap (silent truncation made visible)
        self.buffer_high_water = 0
        self._finished: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every collected span and zero the drop counter."""
        with self._lock:
            self._finished.clear()
            self.spans_dropped = 0
            self.buffer_high_water = 0

    # ------------------------------------------------------------------
    # trace-id propagation (thread-local; workers set it per job)
    # ------------------------------------------------------------------
    def set_trace_id(self, trace_id: Optional[str]) -> None:
        self._local.trace_id = trace_id

    def current_trace_id(self) -> Optional[str]:
        return getattr(self._local, "trace_id", None)

    # ------------------------------------------------------------------
    # span creation and collection
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "planner", **attributes):
        """Open a span; ``with tracer.span("dp.search", stages=3): ...``.

        Returns :data:`NULL_SPAN` while disabled.  Hot loops should guard
        on :attr:`enabled` themselves so not even the keyword dict for
        ``attributes`` is built.
        """
        if not self.enabled:
            return NULL_SPAN
        self.spans_started += 1
        return Span(self, name, category, attributes)

    def record(
        self,
        name: str,
        category: str = "fleet",
        *,
        start_ns: int,
        end_ns: int,
        trace_id: Optional[str] = None,
        parent_id: Optional[int] = None,
        **attributes: Any,
    ) -> None:
        """Collect an already-timed span without touching the thread-local
        stack.

        The context-manager API assumes one nesting stack per thread, which
        asyncio code breaks: tasks interleave on the loop thread, so a span
        held across an ``await`` would corrupt the stack for every other
        task.  The fleet frontend therefore measures with
        ``time.perf_counter_ns()`` and records completed spans here, with
        the trace id passed explicitly instead of read from thread-local
        state.
        """
        if not self.enabled:
            return
        span = Span(self, name, category, dict(attributes))
        span.trace_id = trace_id
        span.parent_id = parent_id
        span.thread_id = threading.get_ident()
        span.start_ns = start_ns
        span.end_ns = end_ns
        self.spans_started += 1
        self._collect(span)

    def _collect(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.spans_dropped += 1
                return
            self._finished.append(span)
            if len(self._finished) > self.buffer_high_water:
                self.buffer_high_water = len(self._finished)

    def health(self) -> Dict[str, Any]:
        """Buffer-health snapshot (the ``"tracer"`` stats section).

        Production question this answers: are traces being silently
        truncated by the ``max_spans`` cap?  ``spans_dropped > 0`` or a
        high-water mark near ``max_spans`` says yes.
        """
        with self._lock:
            buffer_len = len(self._finished)
            high_water = self.buffer_high_water
        return {
            "enabled": self.enabled,
            "spans_started": self.spans_started,
            "spans_dropped": self.spans_dropped,
            "buffer_len": buffer_len,
            "buffer_high_water": high_water,
            "max_spans": self.max_spans,
        }

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Copy of the collected spans (oldest first)."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> List[Span]:
        """Return the collected spans and clear the buffer."""
        with self._lock:
            spans, self._finished = self._finished, []
        return spans


#: the process-wide tracer every instrumented module shares
tracer = Tracer()


def span_index(spans: List[Span]) -> Dict[int, Span]:
    """``span_id -> span`` lookup over a span list."""
    return {span.span_id: span for span in spans}


def children_of(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """``parent_id -> [children]`` over a span list (None = roots)."""
    tree: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    return tree


def thread_rows(spans: List[Span]) -> Dict[int, int]:
    """Stable small-integer row (``tid``) per OS thread id, for exporters."""
    rows: Dict[int, int] = {}
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        if span.thread_id not in rows:
            rows[span.thread_id] = len(rows)
    return rows
