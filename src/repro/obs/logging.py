"""Structured JSON logging with trace-id correlation.

One JSON object per line, machine-parseable, carrying the active trace id
from :data:`repro.obs.tracing.tracer` so a request's log lines and its
spans join on the same key.  Built on the stdlib ``logging`` module: any
handler/level configuration users already have keeps working, and
:func:`configure_json_logging` is a convenience, not a requirement.

The plan service uses :func:`get_logger` for its slow-request log: a
warning line gated on a configurable latency threshold (see
``PlanService(slow_request_s=...)`` and the ``REPRO_SLOW_REQUEST_MS``
environment variable).
"""

from __future__ import annotations

import json
import logging
import os
import threading
from typing import Any, Dict, Optional, TextIO

from .tracing import tracer

#: environment variable overriding the slow-request threshold (milliseconds)
SLOW_REQUEST_ENV = "REPRO_SLOW_REQUEST_MS"

#: default slow-request threshold in seconds when neither the constructor
#: argument nor the environment variable is set
DEFAULT_SLOW_REQUEST_S = 1.0

#: LogRecord attributes that are plumbing, not payload; anything else an
#: ``extra={...}`` passes through lands in the JSON document
_RECORD_FIELDS = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {"message", "asctime",
                                             "taskName"}

# process-wide fields stamped onto every JSON log line (e.g. the shard
# name inside a shard process, so its log lines join the {shard="n"}
# metric series); explicit `extra={...}` keys on a record win
_log_context: Dict[str, Any] = {}
_log_context_lock = threading.Lock()


def set_log_context(**fields: Any) -> None:
    """Merge fields into the process-wide log context (None deletes).

    ``run_shard`` calls ``set_log_context(shard=name)`` so every JSON log
    line a shard process emits carries its shard name without each call
    site having to thread it through ``extra``.
    """
    with _log_context_lock:
        for key, value in fields.items():
            if value is None:
                _log_context.pop(key, None)
            else:
                _log_context[key] = value


def clear_log_context() -> None:
    with _log_context_lock:
        _log_context.clear()


def log_context() -> Dict[str, Any]:
    """Copy of the current process-wide log context."""
    with _log_context_lock:
        return dict(_log_context)


class JsonLogFormatter(logging.Formatter):
    """Format records as one JSON object per line.

    Standard fields: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``message``; plus ``trace_id`` when the tracer has one active on the
    emitting thread, and every ``extra`` key the call site attached.
    """

    def format(self, record: logging.LogRecord) -> str:
        document = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or tracer.current_trace_id()
        if trace_id:
            document["trace_id"] = trace_id
        for key, value in record.__dict__.items():
            if key in _RECORD_FIELDS or key in document:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            document[key] = value
        with _log_context_lock:
            for key, value in _log_context.items():
                document.setdefault(key, value)
        if record.exc_info:
            document["exception"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True)


def get_logger(name: str = "repro") -> logging.Logger:
    """The stdlib logger under the shared ``repro`` namespace."""
    return logging.getLogger(name)


def configure_json_logging(
    stream: Optional[TextIO] = None,
    level: int = logging.INFO,
    logger_name: str = "repro",
) -> logging.Handler:
    """Attach a JSON-formatting stream handler to the ``repro`` logger.

    Returns the handler so callers (tests, CLI teardown) can detach it
    with ``logger.removeHandler(handler)``.  Idempotent enough for a CLI:
    it does not duplicate an existing JSON handler on the same stream.
    """
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    for existing in logger.handlers:
        if isinstance(existing.formatter, JsonLogFormatter) and (
            stream is None or getattr(existing, "stream", None) is stream
        ):
            return existing
    handler = logging.StreamHandler(stream) if stream is not None \
        else logging.StreamHandler()
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    return handler


def slow_request_threshold_s(override: Optional[float] = None) -> float:
    """Resolve the slow-request threshold: argument > env var > default."""
    if override is not None:
        if override < 0:
            raise ValueError("slow-request threshold cannot be negative")
        return override
    raw = os.environ.get(SLOW_REQUEST_ENV)
    if raw:
        try:
            return max(float(raw) / 1e3, 0.0)
        except ValueError:
            pass
    return DEFAULT_SLOW_REQUEST_S
