"""Small filesystem utilities shared across the repo.

:func:`atomic_write_text` is the one way any repro code persists an
artifact — benchmark results, Chrome traces, stats snapshots, disk-cache
entries.  The write goes to a uniquely named temporary file *in the target
directory* (same filesystem, so the final ``os.replace`` is atomic), which
means an interrupted run can truncate only its own temp file, never the
artifact a CI gate or a concurrent reader depends on.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically; returns the resolved path.

    The temp file is created with :func:`tempfile.mkstemp` next to the
    target, so concurrent writers of the same path cannot collide on a
    shared ``.tmp`` name, and a crash leaves at worst an orphaned
    ``<name>.*.tmp`` file rather than a half-written artifact.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
