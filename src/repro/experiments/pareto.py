"""Cost-landscape analysis: where do plans fall in the full design space?

For small networks the entire 3^N assignment space is enumerable, which
lets us place every scheme's plan inside the *distribution* of all possible
plans — a stronger statement than "AccPar beats three baselines": it shows
how much of the space the baselines leave on the table and that the DP's
optimum really is the global one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cost_model import PairCostModel
from ..core.dp_search import search_stages
from ..core.stages import ShardedLayerStage, ShardedStage
from ..core.types import ALL_TYPES, PartitionType


@dataclass
class CostLandscape:
    """Every assignment's cost for one chain, plus reference points."""

    layer_names: List[str]
    costs: List[Tuple[Tuple[PartitionType, ...], float]]  # sorted ascending
    dp_cost: float

    @property
    def optimum(self) -> float:
        return self.costs[0][1]

    @property
    def worst(self) -> float:
        return self.costs[-1][1]

    @property
    def spread(self) -> float:
        """Worst-to-best cost ratio: how much planning can matter at all."""
        return self.worst / self.optimum

    def percentile_of(self, cost: float) -> float:
        """Fraction of the space at least as expensive as ``cost``.

        1.0 means ``cost`` is the global optimum; 0.0 means the worst plan.
        """
        worse = sum(1 for _, c in self.costs if c >= cost - 1e-15)
        return worse / len(self.costs)

    def cost_of(self, assignment: Sequence[PartitionType]) -> float:
        key = tuple(assignment)
        for combo, cost in self.costs:
            if combo == key:
                return cost
        raise KeyError(f"assignment {key!r} not in the landscape")


def enumerate_landscape(
    stages: Sequence[ShardedStage],
    model: PairCostModel,
    max_layers: int = 10,
) -> CostLandscape:
    """Exhaustively cost every type assignment of a *linear* chain."""
    chain = [s for s in stages if isinstance(s, ShardedLayerStage)]
    if len(chain) != len(stages):
        raise ValueError("landscape enumeration handles linear chains only")
    if len(chain) > max_layers:
        raise ValueError(
            f"{len(chain)} layers would enumerate 3^{len(chain)} plans; "
            f"raise max_layers explicitly if you mean it"
        )

    costs: List[Tuple[Tuple[PartitionType, ...], float]] = []
    for combo in itertools.product(ALL_TYPES, repeat=len(chain)):
        total = 0.0
        prev: Optional[PartitionType] = None
        for stage, ptype in zip(chain, combo):
            total += model.step(stage.workload, prev, ptype).cost
            prev = ptype
        costs.append((combo, total))
    costs.sort(key=lambda entry: entry[1])

    dp = search_stages(list(stages), model)
    return CostLandscape(
        layer_names=[s.name for s in chain],
        costs=costs,
        dp_cost=dp.cost,
    )


def baseline_assignments(
    stages: Sequence[ShardedStage],
) -> Dict[str, Tuple[PartitionType, ...]]:
    """The static baselines' assignments for a chain (DP and OWT)."""
    chain = [s for s in stages if isinstance(s, ShardedLayerStage)]
    dp = tuple(PartitionType.TYPE_I for _ in chain)
    owt = tuple(
        PartitionType.TYPE_I if s.workload.base.is_conv else PartitionType.TYPE_II
        for s in chain
    )
    return {"dp": dp, "owt": owt}
