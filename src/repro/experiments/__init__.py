"""Experiment harness and figure reproduction entry points."""

from .pareto import (
    CostLandscape,
    baseline_assignments,
    enumerate_landscape,
)
from .faults import (
    StragglerOutcome,
    degrade_tree,
    straggler_experiment,
    throttle_spec,
)
from .calibration import (
    CalibrationResult,
    Probe,
    calibrate,
    probe_from_run,
)
from .sensitivity import (
    OptimizerImpact,
    SweepSeries,
    batch_sweep,
    bandwidth_sweep,
    latency_sweep,
    optimizer_sweep,
    scale_network_bandwidth,
)
from .svg import grouped_bar_svg, line_chart_svg
from .analysis import (
    LayerCostRow,
    WhatIfRow,
    layer_type_sensitivity,
    render_what_if,
    dominant_layers,
    render_breakdown,
    render_level_summary,
    root_level_breakdown,
    type_histogram,
)
from .figures import (
    AlexnetTypesResult,
    HierarchySweepResult,
    figure5_heterogeneous,
    figure6_homogeneous,
    figure7_alexnet_types,
    figure8_hierarchy_sweep,
)
from .harness import (
    RunResult,
    SpeedupTable,
    geometric_mean,
    run_scheme,
    sweep,
)
from .reporting import (
    format_bar_chart,
    format_grouped_bars,
    format_speedup_table,
    format_table,
    scheme_label,
)

__all__ = [
    "CostLandscape",
    "baseline_assignments",
    "enumerate_landscape",
    "StragglerOutcome",
    "WhatIfRow",
    "degrade_tree",
    "layer_type_sensitivity",
    "render_what_if",
    "straggler_experiment",
    "throttle_spec",
    "CalibrationResult",
    "OptimizerImpact",
    "Probe",
    "SweepSeries",
    "batch_sweep",
    "bandwidth_sweep",
    "calibrate",
    "latency_sweep",
    "grouped_bar_svg",
    "line_chart_svg",
    "optimizer_sweep",
    "probe_from_run",
    "scale_network_bandwidth",
    "LayerCostRow",
    "dominant_layers",
    "render_breakdown",
    "render_level_summary",
    "root_level_breakdown",
    "type_histogram",
    "AlexnetTypesResult",
    "HierarchySweepResult",
    "RunResult",
    "SpeedupTable",
    "figure5_heterogeneous",
    "figure6_homogeneous",
    "figure7_alexnet_types",
    "figure8_hierarchy_sweep",
    "format_bar_chart",
    "format_grouped_bars",
    "format_speedup_table",
    "format_table",
    "geometric_mean",
    "run_scheme",
    "scheme_label",
    "sweep",
]
