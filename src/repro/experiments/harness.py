"""Experiment harness: scheme × model × array sweeps and speedup tables.

Reproduces the methodology of Section 6.1: every scheme plans the same
model on the same accelerator array, all plans are scored by the same
trace-driven simulator, and performance is reported as throughput speedup
normalized to the data-parallelism (DP) baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import SCHEME_ORDER, get_scheme
from ..core.planner import PlannedExecution, Planner
from ..graph.network import Network
from ..hardware.accelerator import AcceleratorGroup
from ..hardware.presets import PAPER_BATCH
from ..models.registry import build_model
from ..sim.engine import EngineConfig
from ..sim.executor import SimReport, evaluate


@dataclass
class RunResult:
    """One (model, scheme) simulation outcome."""

    model: str
    scheme: str
    report: SimReport
    planned: PlannedExecution

    @property
    def time(self) -> float:
        return self.report.total_time


@dataclass
class SpeedupTable:
    """Speedups normalized to the DP baseline, per model per scheme."""

    models: List[str]
    schemes: List[str]
    times: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def speedup(self, model: str, scheme: str) -> float:
        return self.times[model]["dp"] / self.times[model][scheme]

    def speedups_for(self, scheme: str) -> List[float]:
        return [self.speedup(m, scheme) for m in self.models]

    def geomean(self, scheme: str) -> float:
        return geometric_mean(self.speedups_for(scheme))


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_scheme(
    model: "Network | str",
    scheme_name: str,
    array: AcceleratorGroup,
    batch: int = PAPER_BATCH,
    levels: Optional[int] = None,
    dtype_bytes: int = 2,
    config: Optional[EngineConfig] = None,
) -> RunResult:
    """Plan one model with one scheme and simulate a training iteration."""
    network = build_model(model) if isinstance(model, str) else model
    planner = Planner(array, get_scheme(scheme_name), dtype_bytes, levels)
    planned = planner.plan(network, batch)
    report = evaluate(planned, config)
    return RunResult(model=network.name, scheme=scheme_name, report=report,
                     planned=planned)


def sweep(
    models: Sequence[str],
    array: AcceleratorGroup,
    schemes: Optional[Sequence[str]] = None,
    batch: int = PAPER_BATCH,
    levels: Optional[int] = None,
    dtype_bytes: int = 2,
) -> SpeedupTable:
    """Simulate every scheme on every model; DP must be among the schemes."""
    scheme_list = list(schemes) if schemes is not None else list(SCHEME_ORDER)
    if "dp" not in scheme_list:
        raise ValueError("the sweep needs the 'dp' baseline for normalization")
    table = SpeedupTable(models=list(models), schemes=scheme_list)
    for model in models:
        table.times[model] = {}
        for scheme in scheme_list:
            result = run_scheme(model, scheme, array, batch, levels, dtype_bytes)
            table.times[model][scheme] = result.time
    return table
