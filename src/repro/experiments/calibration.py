"""Deprecated location: the probe fit moved to :mod:`repro.calib`.

Kept as a plain re-export so existing imports (and the historical tests)
keep working; new code should import from ``repro.calib``.
"""

from ..calib.fit import CalibrationResult, Probe, calibrate, probe_from_run

__all__ = [
    "CalibrationResult",
    "Probe",
    "calibrate",
    "probe_from_run",
]
