"""Entry points reproducing each figure of the paper's evaluation (Section 6).

Every function returns the raw data and a rendered ASCII artifact; the
``benchmarks/`` suite wraps these with pytest-benchmark and prints the
artifacts so paper-vs-measured comparisons can be recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import SCHEME_ORDER
from ..core.types import PartitionType
from ..hardware.presets import PAPER_BATCH, heterogeneous_array, homogeneous_array
from ..models.registry import PAPER_MODELS
from .harness import RunResult, SpeedupTable, run_scheme, sweep
from .reporting import format_table


def figure5_heterogeneous(
    models: Optional[Sequence[str]] = None,
    batch: int = PAPER_BATCH,
    n_v2: int = 128,
    n_v3: int = 128,
    levels: Optional[int] = None,
) -> SpeedupTable:
    """Figure 5: DP/OWT/HyPar/AccPar on the 128×TPU-v2 + 128×TPU-v3 array."""
    array = heterogeneous_array(n_v2, n_v3)
    return sweep(models or PAPER_MODELS, array, SCHEME_ORDER, batch, levels)


def figure6_homogeneous(
    models: Optional[Sequence[str]] = None,
    batch: int = PAPER_BATCH,
    n: int = 128,
    levels: Optional[int] = None,
) -> SpeedupTable:
    """Figure 6: the same sweep on a homogeneous 128×TPU-v3 array."""
    array = homogeneous_array(n)
    return sweep(models or PAPER_MODELS, array, SCHEME_ORDER, batch, levels)


@dataclass
class AlexnetTypesResult:
    """Figure 7 data: per hierarchy level, AccPar's type per weighted layer."""

    layer_names: List[str]
    per_level: List[Dict[str, PartitionType]]

    def rendered(self) -> str:
        headers = ["level"] + self.layer_names
        rows = []
        for idx, level in enumerate(self.per_level, start=1):
            rows.append(
                [str(idx)] + [level[name].value for name in self.layer_names]
            )
        return format_table(headers, rows,
                            title="AccPar partition types per layer (Alexnet)")


def figure7_alexnet_types(
    batch: int = 128,
    n: int = 128,
    levels: int = 7,
) -> AlexnetTypesResult:
    """Figure 7: selected partition types for Alexnet's weighted layers.

    The paper uses 7 hierarchy levels and batch size 128.
    """
    result = run_scheme("alexnet", "accpar", homogeneous_array(n), batch, levels)
    per_level = result.planned.layer_types_by_level()
    ordered_names = [
        w.name for w in _ordered_workloads(result)
    ]
    filtered = [
        {name: types[name] for name in ordered_names} for types in per_level
    ]
    return AlexnetTypesResult(layer_names=ordered_names, per_level=filtered)


def _ordered_workloads(result: RunResult):
    from ..core.stages import iter_sharded_workloads

    return list(iter_sharded_workloads(result.planned.stages))


@dataclass
class HierarchySweepResult:
    """Figure 8 data: speedup vs hierarchy level, per scheme."""

    levels: List[int]
    speedups: Dict[str, List[float]]  # scheme -> one value per level

    def rendered(self) -> str:
        headers = ["h"] + [s for s in self.speedups]
        rows = []
        for idx, h in enumerate(self.levels):
            rows.append(
                [str(h)] + [f"{self.speedups[s][idx]:.2f}x" for s in self.speedups]
            )
        return format_table(headers, rows,
                            title="Speedup vs hierarchy level (Vgg19, heterogeneous)")


def figure8_hierarchy_sweep(
    model: str = "vgg19",
    levels: Sequence[int] = tuple(range(2, 10)),
    batch: int = PAPER_BATCH,
) -> HierarchySweepResult:
    """Figure 8: scalability with hierarchy levels h = 2..9 on Vgg19.

    A hierarchy of ``h`` levels partitions tensors into 2^h shards, which
    needs a 2^h-board array: half TPU-v2, half TPU-v3 (the heterogeneous
    configuration).  Speedups at each h are normalized to DP at the same h,
    matching the per-array normalization of Section 6.
    """
    speedups: Dict[str, List[float]] = {s: [] for s in SCHEME_ORDER}
    for h in levels:
        half = 2 ** (h - 1)
        array = heterogeneous_array(half, half)
        times = {
            s: run_scheme(model, s, array, batch, levels=h).time
            for s in SCHEME_ORDER
        }
        for s in SCHEME_ORDER:
            speedups[s].append(times["dp"] / times[s])
    return HierarchySweepResult(levels=list(levels), speedups=speedups)
