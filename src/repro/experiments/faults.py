"""Failure injection: stragglers and degraded links.

A production array degrades in place: a board throttles (thermal/ECC), a
link drops to a lower rate — but the physical topology, and therefore the
pairing tree, stays what it was.  These injectors rewrite board specs at
fixed leaf positions of an existing tree, and the experiment compares

* keeping the old plan on the degraded hardware (the stale plan), vs
* re-planning on the same tree with the scheme's machinery.

AccPar's Eq. 10 ratios shift work away from the straggler; equal-ratio
schemes re-plan to the same 1/2 splits and recover nothing — the paper's
heterogeneity story as a fault-tolerance story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..baselines import get_scheme
from ..core.hierarchy import plan_tree
from ..core.planner import PlannedExecution, Planner
from ..hardware.accelerator import AcceleratorGroup, AcceleratorSpec
from ..hardware.cluster import GroupNode
from ..models.registry import build_model
from ..sim.executor import evaluate


def throttle_spec(spec: AcceleratorSpec, compute_factor: float,
                  network_factor: float) -> AcceleratorSpec:
    """A degraded copy of one board's spec (memory untouched)."""
    if not 0 < compute_factor <= 1.0 or not 0 < network_factor <= 1.0:
        raise ValueError("degradation factors must be in (0, 1]")
    return AcceleratorSpec(
        name=f"{spec.name}-degraded",
        flops=spec.flops * compute_factor,
        memory_bytes=spec.memory_bytes,
        memory_bandwidth=spec.memory_bandwidth,
        network_bandwidth=spec.network_bandwidth * network_factor,
    )


def degrade_tree(
    tree: GroupNode,
    n_degraded: int,
    compute_factor: float = 0.5,
    network_factor: float = 1.0,
) -> GroupNode:
    """A structural copy of ``tree`` with its first ``n_degraded`` boards
    (leaf order) throttled in place.

    Structure preservation is the point: the plan trees of the healthy and
    degraded arrays stay interchangeable, modelling hardware that slowed
    down without being re-cabled.
    """
    total = tree.group.size
    if not 0 <= n_degraded <= total:
        raise ValueError(f"cannot degrade {n_degraded} of {total} boards")

    counter = {"next": 0}

    def degrade_members(
        members: Tuple[AcceleratorSpec, ...]
    ) -> Tuple[AcceleratorSpec, ...]:
        out: List[AcceleratorSpec] = []
        for member in members:
            idx = counter["next"]
            counter["next"] += 1
            if idx < n_degraded:
                out.append(throttle_spec(member, compute_factor, network_factor))
            else:
                out.append(member)
        return tuple(out)

    def rebuild(node: GroupNode) -> GroupNode:
        if node.is_leaf:
            return GroupNode(
                group=AcceleratorGroup(degrade_members(node.group.members)),
                level=node.level,
            )
        assert node.left is not None and node.right is not None
        left = rebuild(node.left)
        right = rebuild(node.right)
        return GroupNode(
            group=AcceleratorGroup(left.group.members + right.group.members),
            left=left,
            right=right,
            level=node.level,
        )

    return rebuild(tree)


@dataclass(frozen=True)
class StragglerOutcome:
    """Throughput under a straggler, per recovery strategy."""

    healthy_time: float        # original array, original plan
    stale_plan_time: float     # degraded array, the old (healthy) plan
    replanned_time: float      # degraded array, re-planned on the same tree
    scheme: str

    @property
    def degradation_with_stale_plan(self) -> float:
        return self.stale_plan_time / self.healthy_time

    @property
    def recovery_gain(self) -> float:
        """How much re-planning recovers vs running the stale plan."""
        return self.stale_plan_time / self.replanned_time


def straggler_experiment(
    model: str,
    array: AcceleratorGroup,
    scheme: str = "accpar",
    n_degraded: int = 1,
    compute_factor: float = 0.5,
    network_factor: float = 1.0,
    batch: int = 512,
    levels: Optional[int] = None,
) -> StragglerOutcome:
    """Throttle boards in place, then compare stale-plan vs re-planned."""
    network = build_model(model)
    planner = Planner(array, get_scheme(scheme), levels=levels)
    healthy = planner.plan(network, batch)
    healthy_time = evaluate(healthy).total_time

    degraded_tree = degrade_tree(healthy.tree, n_degraded, compute_factor,
                                 network_factor)

    stale = PlannedExecution(
        network_name=healthy.network_name,
        batch=healthy.batch,
        scheme=healthy.scheme,
        tree=degraded_tree,
        stages=healthy.stages,
        plan=healthy.plan,
        dtype_bytes=healthy.dtype_bytes,
    )
    stale_time = evaluate(stale).total_time

    replanned_plan = plan_tree(degraded_tree, healthy.stages,
                               get_scheme(scheme), healthy.dtype_bytes)
    replanned = PlannedExecution(
        network_name=healthy.network_name,
        batch=healthy.batch,
        scheme=healthy.scheme,
        tree=degraded_tree,
        stages=healthy.stages,
        plan=replanned_plan,
        dtype_bytes=healthy.dtype_bytes,
    )
    replanned_time = evaluate(replanned).total_time

    return StragglerOutcome(
        healthy_time=healthy_time,
        stale_plan_time=stale_time,
        replanned_time=replanned_time,
        scheme=scheme,
    )
