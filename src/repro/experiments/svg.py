"""Dependency-free SVG charts for the reproduced figures.

The evaluation environment has no plotting stack, so the figure benches
emit self-contained SVG files (grouped bars for Figures 5/6, lines for
Figure 8) alongside the ASCII artifacts.  The generator covers exactly what
those figures need — not a general charting library.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence
from xml.sax.saxutils import escape

from .harness import SpeedupTable

#: categorical palette (colorblind-safe Okabe-Ito subset)
PALETTE = ["#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00"]

_FONT = 'font-family="Helvetica, Arial, sans-serif"'


def _svg_header(width: int, height: int) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def _nice_ceiling(value: float) -> float:
    """Round up to 1/2/5 x 10^k for a tidy axis."""
    if value <= 0:
        return 1.0
    magnitude = 10 ** len(str(int(value))) / 10
    for factor in (1, 2, 5, 10):
        if value <= factor * magnitude:
            return factor * magnitude
    return 10 * magnitude


def grouped_bar_svg(
    table: SpeedupTable,
    title: str,
    width: int = 900,
    height: int = 420,
) -> str:
    """Figure 5/6-style grouped bars: models on the x-axis, one bar per
    scheme, y = speedup over DP."""
    margin_left, margin_right, margin_top, margin_bottom = 56, 20, 48, 64
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    values = {
        (m, s): table.speedup(m, s) for m in table.models for s in table.schemes
    }
    y_max = _nice_ceiling(max(values.values()))

    parts = _svg_header(width, height)
    parts.append(
        f'<text x="{width / 2}" y="24" text-anchor="middle" {_FONT} '
        f'font-size="16" font-weight="bold">{escape(title)}</text>'
    )

    # y axis + gridlines
    n_ticks = 5
    for i in range(n_ticks + 1):
        frac = i / n_ticks
        y = margin_top + plot_h * (1 - frac)
        value = y_max * frac
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" x2="{width - margin_right}" '
            f'y2="{y:.1f}" stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'{_FONT} font-size="11">{value:g}x</text>'
        )

    # bars
    group_w = plot_w / len(table.models)
    bar_w = group_w * 0.8 / len(table.schemes)
    for m_idx, model in enumerate(table.models):
        group_x = margin_left + m_idx * group_w + group_w * 0.1
        for s_idx, scheme in enumerate(table.schemes):
            value = values[(model, scheme)]
            bar_h = plot_h * min(value / y_max, 1.0)
            x = group_x + s_idx * bar_w
            y = margin_top + plot_h - bar_h
            color = PALETTE[s_idx % len(PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w * 0.92:.1f}" '
                f'height="{bar_h:.1f}" fill="{color}">'
                f'<title>{escape(model)} / {escape(scheme)}: {value:.2f}x</title>'
                f'</rect>'
            )
        parts.append(
            f'<text x="{group_x + group_w * 0.4:.1f}" '
            f'y="{margin_top + plot_h + 16}" text-anchor="middle" {_FONT} '
            f'font-size="12">{escape(model)}</text>'
        )

    # legend
    legend_x = margin_left
    legend_y = height - 18
    for s_idx, scheme in enumerate(table.schemes):
        color = PALETTE[s_idx % len(PALETTE)]
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 10}" width="12" height="12" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 16}" y="{legend_y}" {_FONT} '
            f'font-size="12">{escape(scheme)}</text>'
        )
        legend_x += 18 + 8 * len(scheme) + 24

    parts.append("</svg>")
    return "\n".join(parts)


def line_chart_svg(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str,
    x_label: str = "",
    y_suffix: str = "x",
    width: int = 720,
    height: int = 420,
) -> str:
    """Figure 8-style line chart: one polyline per scheme."""
    if not series:
        raise ValueError("no series to chart")
    margin_left, margin_right, margin_top, margin_bottom = 56, 20, 48, 64
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    y_max = _nice_ceiling(max(max(v) for v in series.values()))
    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0

    def sx(x: float) -> float:
        return margin_left + plot_w * (x - x_min) / x_span

    def sy(y: float) -> float:
        return margin_top + plot_h * (1 - min(y / y_max, 1.0))

    parts = _svg_header(width, height)
    parts.append(
        f'<text x="{width / 2}" y="24" text-anchor="middle" {_FONT} '
        f'font-size="16" font-weight="bold">{escape(title)}</text>'
    )

    n_ticks = 5
    for i in range(n_ticks + 1):
        frac = i / n_ticks
        y = margin_top + plot_h * (1 - frac)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" x2="{width - margin_right}" '
            f'y2="{y:.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'{_FONT} font-size="11">{y_max * frac:g}{y_suffix}</text>'
        )
    for x in x_values:
        parts.append(
            f'<text x="{sx(x):.1f}" y="{margin_top + plot_h + 16}" '
            f'text-anchor="middle" {_FONT} font-size="12">{x:g}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{width / 2}" y="{height - 28}" text-anchor="middle" '
            f'{_FONT} font-size="12">{escape(x_label)}</text>'
        )

    for s_idx, (name, values) in enumerate(series.items()):
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
        color = PALETTE[s_idx % len(PALETTE)]
        points = " ".join(
            f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(x_values, values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2.5"/>'
        )
        for x, y in zip(x_values, values):
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3.5" '
                f'fill="{color}"><title>{escape(name)} @ {x:g}: {y:.2f}'
                f'{y_suffix}</title></circle>'
            )

    legend_x = margin_left
    legend_y = height - 8
    for s_idx, name in enumerate(series):
        color = PALETTE[s_idx % len(PALETTE)]
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y - 4}" x2="{legend_x + 18}" '
            f'y2="{legend_y - 4}" stroke="{color}" stroke-width="3"/>'
        )
        parts.append(
            f'<text x="{legend_x + 22}" y="{legend_y}" {_FONT} '
            f'font-size="12">{escape(name)}</text>'
        )
        legend_x += 26 + 8 * len(name) + 18

    parts.append("</svg>")
    return "\n".join(parts)
