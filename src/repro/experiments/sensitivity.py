"""Sensitivity studies beyond the paper's headline figures.

Three sweeps that probe the *why* behind the Section 6 results:

* **batch sweep** — Type-I partitions batch, Type-II/III partition the
  model; growing the mini-batch grows the activations relative to the
  weights and shifts the optimum (the paper's Vgg-vs-ResNet discussion);
* **bandwidth sweep** — the accelerator-wall motivation: as links get
  faster, communication-avoiding planning matters less and every scheme
  converges toward DP;
* **optimizer sweep** — Section 2.1's claim that the training algorithm
  only adds local update work and state memory, never communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.planner import Planner
from ..baselines import get_scheme
from ..hardware.accelerator import AcceleratorGroup, AcceleratorSpec
from ..models.registry import build_model
from ..sim.engine import EngineConfig
from ..sim.executor import evaluate
from ..training.optimizers import OPTIMIZERS, OptimizerSpec


@dataclass
class SweepSeries:
    """One sweep: x values and per-scheme speedups over DP at the same x."""

    parameter: str
    x_values: List[float]
    speedups: Dict[str, List[float]]


def _speedup_at(model: str, array: AcceleratorGroup, batch: int,
                schemes: Sequence[str]) -> Dict[str, float]:
    times = {}
    network_times = {}
    for scheme in ["dp"] + [s for s in schemes if s != "dp"]:
        planned = Planner(array, get_scheme(scheme)).plan(
            build_model(model), batch
        )
        network_times[scheme] = evaluate(planned).total_time
    for scheme in schemes:
        times[scheme] = network_times["dp"] / network_times[scheme]
    return times


def batch_sweep(
    model: str,
    array: AcceleratorGroup,
    batches: Sequence[int] = (64, 128, 256, 512, 1024),
    schemes: Sequence[str] = ("dp", "owt", "hypar", "accpar"),
) -> SweepSeries:
    """Speedup over DP as the global mini-batch grows."""
    speedups: Dict[str, List[float]] = {s: [] for s in schemes}
    for batch in batches:
        at = _speedup_at(model, array, batch, schemes)
        for s in schemes:
            speedups[s].append(at[s])
    return SweepSeries("batch", [float(b) for b in batches], speedups)


def scale_network_bandwidth(array: AcceleratorGroup,
                            factor: float) -> AcceleratorGroup:
    """The same array with every link's bandwidth scaled by ``factor``."""
    if factor <= 0:
        raise ValueError("bandwidth factor must be positive")
    members = tuple(
        AcceleratorSpec(
            name=f"{m.name}@{factor:g}x",
            flops=m.flops,
            memory_bytes=m.memory_bytes,
            memory_bandwidth=m.memory_bandwidth,
            network_bandwidth=m.network_bandwidth * factor,
        )
        for m in array.members
    )
    return AcceleratorGroup(members)


def bandwidth_sweep(
    model: str,
    array: AcceleratorGroup,
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    batch: int = 512,
    schemes: Sequence[str] = ("dp", "hypar", "accpar"),
) -> SweepSeries:
    """Speedup over DP as every link's bandwidth scales by a factor."""
    speedups: Dict[str, List[float]] = {s: [] for s in schemes}
    for factor in factors:
        scaled = scale_network_bandwidth(array, factor)
        at = _speedup_at(model, scaled, batch, schemes)
        for s in schemes:
            speedups[s].append(at[s])
    return SweepSeries("net-bandwidth-factor", list(factors), speedups)


def latency_sweep(
    model: str,
    array: AcceleratorGroup,
    latencies_s: Sequence[float] = (0.0, 1e-6, 1e-5, 1e-4),
    batch: int = 512,
    schemes: Sequence[str] = ("dp", "hypar", "accpar"),
) -> SweepSeries:
    """Speedup over DP as a fixed per-transfer latency is added.

    The paper's Eq. 7 is pure bandwidth; a latency term (the α of an α-β
    model) taxes schemes that make *more* transfers.  All schemes make the
    same O(levels × layers) transfer count here, so the orderings should be
    latency-robust — which this sweep verifies.
    """
    speedups: Dict[str, List[float]] = {s: [] for s in schemes}
    planned = {
        s: Planner(array, get_scheme(s)).plan(build_model(model), batch)
        for s in set(schemes) | {"dp"}
    }
    for latency in latencies_s:
        config = EngineConfig(link_latency_s=latency)
        times = {s: evaluate(p, config).total_time for s, p in planned.items()}
        for s in schemes:
            speedups[s].append(times["dp"] / times[s])
    return SweepSeries("link-latency-s", list(latencies_s), speedups)


@dataclass
class OptimizerImpact:
    """Iteration time and worst-leaf memory per optimizer."""

    optimizer: str
    total_time: float
    comm_time: float
    memory_bytes: float


def optimizer_sweep(
    model: str,
    array: AcceleratorGroup,
    batch: int = 512,
    scheme: str = "accpar",
    optimizers: Sequence[str] = ("sgd", "momentum", "adam"),
) -> List[OptimizerImpact]:
    """Simulate the same plan under different update rules.

    The plan is computed once (the optimizer does not influence the
    partitioning decision — its work is local), then re-simulated per rule.
    """
    planned = Planner(array, get_scheme(scheme)).plan(build_model(model), batch)
    out = []
    for name in optimizers:
        spec: OptimizerSpec = OPTIMIZERS[name]
        report = evaluate(planned, EngineConfig(optimizer=spec))
        mem = report.memory_worst
        out.append(
            OptimizerImpact(
                optimizer=name,
                total_time=report.total_time,
                comm_time=report.comm_time,
                memory_bytes=mem.total_bytes if mem else 0.0,
            )
        )
    return out
