"""Plan diagnostics: where does the time go?

Tools a user needs to *trust* a plan: per-layer cost breakdowns at the root
split (compute vs intra vs inter, with the chosen type and ratio), and the
simulated communication volume per hierarchy level.  All ASCII-rendered for
terminals and logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.cost_model import PairCostModel
from ..core.planner import PlannedExecution
from ..core.stages import iter_sharded_workloads
from ..core.types import PartitionType
from ..plan.ir import LayerPartition
from ..sim.executor import SimReport
from .reporting import format_table


@dataclass(frozen=True)
class LayerCostRow:
    """Root-level cost components of one layer (slower-party seconds)."""

    name: str
    ptype: PartitionType
    ratio: float
    compute: float
    intra: float
    inter: float

    @property
    def total(self) -> float:
        return self.compute + self.intra + self.inter


def root_level_breakdown(planned: PlannedExecution) -> List[LayerCostRow]:
    """Per-layer compute / intra / inter costs at the root split.

    Uses the same cost model the planner used (equal treatment), evaluated
    at the plan's chosen types and ratios; times are the slower party's.
    """
    if planned.plan.level_plan is None:
        raise ValueError("plan has no levels to analyze")
    tree = planned.tree
    assert tree.left is not None and tree.right is not None
    model = PairCostModel(tree.left.group, tree.right.group,
                          planned.dtype_bytes)
    assignments = planned.root_level_plan.assignments

    rows: List[LayerCostRow] = []
    prev: Optional[PartitionType] = None
    for sw in iter_sharded_workloads(planned.stages):
        lp: LayerPartition = assignments[sw.name]
        cp_i, cp_j = model.compute_costs(sw, lp.ptype, lp.ratio)
        intra_i, intra_j = model.intra_costs(sw, lp.ptype)
        inter_i, inter_j = model.inter_costs(sw.a_input_fm(), prev, lp.ptype,
                                             lp.ratio)
        rows.append(
            LayerCostRow(
                name=sw.name,
                ptype=lp.ptype,
                ratio=lp.ratio,
                compute=max(cp_i, cp_j),
                intra=max(intra_i, intra_j),
                inter=max(inter_i, inter_j),
            )
        )
        prev = lp.ptype
    return rows


def render_breakdown(rows: List[LayerCostRow], title: str = "") -> str:
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.name,
                row.ptype.value,
                f"{row.ratio:.3f}",
                f"{row.compute * 1e6:.1f}",
                f"{row.intra * 1e6:.1f}",
                f"{row.inter * 1e6:.1f}",
                f"{row.total * 1e6:.1f}",
            ]
        )
    total = sum(r.total for r in rows)
    table_rows.append(
        ["TOTAL", "", "", "", "", "", f"{total * 1e6:.1f}"]
    )
    return format_table(
        ["layer", "type", "alpha", "compute us", "intra us", "inter us", "total us"],
        table_rows,
        title=title or "Root-level cost breakdown (slower party)",
    )


def dominant_layers(rows: List[LayerCostRow], top: int = 5) -> List[LayerCostRow]:
    """The layers contributing the most root-level cost."""
    return sorted(rows, key=lambda r: r.total, reverse=True)[:top]


def render_level_summary(report: SimReport, title: str = "") -> str:
    """Per-level communication summary of a simulated run."""
    rows = []
    for lv in report.levels:
        rows.append(
            [
                str(lv.level),
                f"{lv.comm_time * 1e3:.3f}",
                f"{lv.net_bytes_left / 1e6:.2f}",
                f"{lv.net_bytes_right / 1e6:.2f}",
            ]
        )
    rows.append(["leaf", f"{report.leaf_time * 1e3:.3f}", "-", "-"])
    rows.append(["total", f"{report.total_time * 1e3:.3f}", "-", "-"])
    return format_table(
        ["level", "time ms", "MB left", "MB right"],
        rows,
        title=title or "Simulated per-level communication",
    )


@dataclass(frozen=True)
class WhatIfRow:
    """Root-level cost of flipping one layer to each alternative type."""

    name: str
    chosen: PartitionType
    costs: Dict[PartitionType, float]  # total chain cost per forced type

    @property
    def regret_of_worst_choice(self) -> float:
        return max(self.costs.values()) / self.costs[self.chosen]


def layer_type_sensitivity(planned: PlannedExecution) -> List[WhatIfRow]:
    """What-if analysis: re-run the root-level search with each layer's type
    pinned to each alternative, everything else free.

    Answers "how much does this layer's decision matter?" — a flat row
    means the layer is insensitive; a steep one explains the plan.
    """
    from ..core.dp_search import search_stages
    from ..core.types import ALL_TYPES

    if planned.plan.level_plan is None:
        raise ValueError("plan has no levels to analyze")
    tree = planned.tree
    assert tree.left is not None and tree.right is not None
    model = PairCostModel(tree.left.group, tree.right.group,
                          planned.dtype_bytes)
    chosen = {
        name: lp.ptype
        for name, lp in planned.root_level_plan.layer_assignments().items()
    }

    rows: List[WhatIfRow] = []
    for target in chosen:
        costs: Dict[PartitionType, float] = {}
        for forced in ALL_TYPES:
            result = search_stages(
                planned.stages,
                model,
                space_fn=lambda w, t=forced, n=target: (
                    (t,) if w.name == n else tuple(ALL_TYPES)
                ),
            )
            costs[forced] = result.cost
        rows.append(WhatIfRow(name=target, chosen=chosen[target], costs=costs))
    return rows


def render_what_if(rows: List[WhatIfRow], title: str = "") -> str:
    from ..core.types import ALL_TYPES

    table_rows = []
    for row in rows:
        best = min(row.costs.values())
        cells = [row.name, row.chosen.value]
        for t in ALL_TYPES:
            marker = "*" if t is row.chosen else ""
            cells.append(f"{row.costs[t] / best:.3f}{marker}")
        table_rows.append(cells)
    return format_table(
        ["layer", "chosen"] + [f"pin {t.value}" for t in ALL_TYPES],
        table_rows,
        title=title or "What-if: relative chain cost when pinning each layer",
    )


def type_histogram(planned: PlannedExecution) -> Dict[PartitionType, int]:
    """Partition-type counts across every level of the plan."""
    counts = {t: 0 for t in PartitionType}
    for level in planned.level_plans():
        for t, n in level.type_counts().items():
            counts[t] += n
    return counts
