"""The analytic-vs-calibrated planning gap, measured end to end.

Datasheet peak rates (Table 7) are what the planner assumes by default,
but deployed accelerators deliver *effective* rates: systolic arrays run
fully-connected layers far below peak, link bandwidth depends on transfer
size, and every collective pays a fixed launch latency.  This harness
closes the calibration loop against a synthetic "real" array and asks how
much planning with measured rates actually changes:

1. **ground truth** — a :class:`~repro.hardware.profile.CalibratedProfile`
   plays the role of the physical array: conv/fc rates well below peak, a
   size-dependent bandwidth-efficiency curve, a per-transfer latency;
2. **measure** — every zoo model is planned *analytically* (what an
   uncalibrated operator would deploy) and simulated under the ground
   truth with telemetry recording per-op timings;
3. **fit** — ``repro telemetry export --calibration`` aggregates the
   timings and :func:`repro.calib.profile_from_export` regresses a
   profile from them, never seeing the ground truth directly;
4. **replan + compare** — each model is replanned under the fitted
   profile; the report records how many plan decisions changed
   (:func:`repro.plan.plan_diff`) and the iteration time of both plans
   executed on the ground-truth array — the end-to-end win of planning
   with calibrated rates.

``benchmarks/test_bench_calibration_gap.py`` persists the rendered table
as ``results/calibration_gap.txt``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..baselines import get_scheme
from ..calib import profile_from_export
from ..core.planner import PlannedExecution, Planner
from ..hardware.accelerator import AcceleratorGroup
from ..hardware.presets import TPU_V2, TPU_V3, heterogeneous_array
from ..hardware.profile import CalibratedProfile, SpecProfile
from ..models.registry import build_model
from ..obs import telemetry as telemetry_store
from ..plan import plan_diff
from ..sim.executor import evaluate
from .reporting import format_table

#: the zoo slice the gap study replans (small enough for the bench budget,
#: mixed enough to cover conv-heavy, fc-heavy and residual topologies)
DEFAULT_MODELS = ("alexnet", "vgg11", "vgg16", "resnet18")

#: what the synthetic "real" hardware delivers, as fractions of peak:
#: systolic arrays sustain conv layers far better than fc layers
EFFECTIVE_FRACTIONS = {
    TPU_V2.name: {"default": 0.50, "conv": 0.55, "fc": 0.35},
    TPU_V3.name: {"default": 0.55, "conv": 0.60, "fc": 0.40},
}

#: size-dependent link efficiency: small transfers waste most of the pipe
BANDWIDTH_CURVE = ((64e3, 0.45), (1e6, 0.70), (16e6, 0.90))

#: fixed per-transfer launch cost of the synthetic array
TRANSFER_LATENCY_S = 12e-6


def ground_truth_profile() -> CalibratedProfile:
    """The synthetic real array: effective rates the fit must recover."""
    specs = []
    for spec in (TPU_V2, TPU_V3):
        fractions = EFFECTIVE_FRACTIONS[spec.name]
        specs.append(SpecProfile(
            spec=spec.name,
            compute_rates=tuple(
                (kind, spec.flops * fraction)
                for kind, fraction in sorted(fractions.items())
            ),
            bandwidth_efficiency=BANDWIDTH_CURVE,
            transfer_latency_s=TRANSFER_LATENCY_S,
        ))
    return CalibratedProfile(name="ground-truth", specs=tuple(specs))


@dataclass
class GapRow:
    """One model's outcome: analytic plan vs calibrated plan, both timed
    on the ground-truth array."""

    model: str
    decisions_changed: int
    analytic_time_s: float
    calibrated_time_s: float

    @property
    def gap_pct(self) -> float:
        """How much slower the analytic plan runs on the real array."""
        if self.calibrated_time_s <= 0:
            return 0.0
        return (self.analytic_time_s / self.calibrated_time_s - 1.0) * 100.0


@dataclass
class CalibrationGapReport:
    """Fitted profile plus the per-model replanning outcomes."""

    profile: CalibratedProfile
    rows: List[GapRow]

    @property
    def total_decisions_changed(self) -> int:
        return sum(row.decisions_changed for row in self.rows)

    def rendered(self) -> str:
        table_rows = [
            [row.model, str(row.decisions_changed),
             f"{row.analytic_time_s * 1e3:.3f}",
             f"{row.calibrated_time_s * 1e3:.3f}",
             f"{row.gap_pct:+.2f}%"]
            for row in self.rows
        ]
        lines = [format_table(
            ["model", "decisions changed", "analytic ms/iter",
             "calibrated ms/iter", "analytic penalty"],
            table_rows,
            title="Planning gap: peak-rate plans vs calibrated-profile plans, "
                  "both executed on the ground-truth array",
        )]
        lines.append("")
        lines.append(f"fitted profile: {self.profile}")
        for sp in self.profile.specs:
            rates = ", ".join(f"{kind}={rate / 1e12:.1f}T"
                              for kind, rate in sp.compute_rates)
            lines.append(
                f"  {sp.spec}: {rates}; "
                f"{len(sp.bandwidth_efficiency)} bw point(s); "
                f"latency {sp.transfer_latency_s * 1e6:.1f}us"
            )
        return "\n".join(lines)


def _plan(model: str, array: AcceleratorGroup, batch: int,
          profile: Optional[CalibratedProfile]) -> PlannedExecution:
    scheme = get_scheme("accpar", profile=profile)
    return Planner(array, scheme).plan(build_model(model), batch)


def measure_export(
    models: Sequence[str],
    array: AcceleratorGroup,
    batch: int,
    truth: CalibratedProfile,
    directory,
) -> Dict:
    """Simulate analytic plans on the ground truth, recording telemetry."""
    telemetry_store.install(str(directory))
    try:
        for model in models:
            planned = _plan(model, array, batch, profile=None)
            evaluate(planned, profile=truth)
    finally:
        telemetry_store.uninstall()  # closes the writer: segments are durable
    return telemetry_store.calibration_export(directory)


def calibration_gap(
    models: Sequence[str] = DEFAULT_MODELS,
    array: Optional[AcceleratorGroup] = None,
    batch: int = 256,
) -> CalibrationGapReport:
    """Run the full loop: measure, fit, replan, compare on ground truth."""
    if array is None:
        array = heterogeneous_array(4, 4)
    truth = ground_truth_profile()

    with tempfile.TemporaryDirectory(prefix="repro-calibration-gap-") as tmp:
        export = measure_export(models, array, batch, truth,
                                Path(tmp) / "telemetry")
    fitted = profile_from_export(export, name="fitted-from-sim")

    rows: List[GapRow] = []
    for model in models:
        analytic_plan = _plan(model, array, batch, profile=None)
        calibrated_plan = _plan(model, array, batch, profile=fitted)
        differences = plan_diff(analytic_plan.plan, calibrated_plan.plan)
        rows.append(GapRow(
            model=model,
            decisions_changed=len(differences),
            analytic_time_s=evaluate(analytic_plan, profile=truth).total_time,
            calibrated_time_s=evaluate(calibrated_plan,
                                       profile=truth).total_time,
        ))
    return CalibrationGapReport(profile=fitted, rows=rows)
