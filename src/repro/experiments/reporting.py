"""ASCII rendering of the paper's tables and bar figures.

The benchmarks print these so the reproduced numbers can be read directly
from the pytest output and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from .harness import SpeedupTable

_SCHEME_LABELS = {"dp": "DP", "owt": "OWT", "hypar": "HyPar", "accpar": "AccPar"}


def scheme_label(scheme: str) -> str:
    return _SCHEME_LABELS.get(scheme, scheme)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Plain fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def format_speedup_table(table: SpeedupTable, title: str = "") -> str:
    """Model × scheme speedup grid with a geometric-mean footer row."""
    headers = ["model"] + [scheme_label(s) for s in table.schemes]
    rows = []
    for model in table.models:
        rows.append(
            [model] + [f"{table.speedup(model, s):.2f}x" for s in table.schemes]
        )
    rows.append(
        ["geomean"] + [f"{table.geomean(s):.2f}x" for s in table.schemes]
    )
    return format_table(headers, rows, title)


def format_bar_chart(
    series: Mapping[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "x",
) -> str:
    """Horizontal ASCII bars, scaled to the maximum value."""
    if not series:
        raise ValueError("no data to chart")
    peak = max(series.values())
    label_width = max(len(k) for k in series)
    lines: List[str] = [title] if title else []
    for name, value in series.items():
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(f"{name.rjust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def format_grouped_bars(
    table: SpeedupTable,
    title: str = "",
    width: int = 40,
) -> str:
    """Figure 5/6-style grouped bars: per model, one bar per scheme."""
    peak = max(
        table.speedup(m, s) for m in table.models for s in table.schemes
    )
    label_width = max(len(scheme_label(s)) for s in table.schemes)
    lines: List[str] = [title] if title else []
    for model in table.models:
        lines.append(f"{model}:")
        for scheme in table.schemes:
            value = table.speedup(model, scheme)
            bar = "#" * max(1, round(width * value / peak))
            lines.append(
                f"  {scheme_label(scheme).rjust(label_width)} | {bar} {value:.2f}x"
            )
    return "\n".join(lines)
