"""Admission control: shed what cannot meet its deadline, degrade under load.

The frontend calls :meth:`AdmissionController.decide` once per batch item,
*before* the item touches the dispatch queue.  The contract, in order:

1. **immediate shed** — a deadline below even the cache-hit service
   estimate can never be met; answer ``{"ok": false, "error": "shed"}``
   in microseconds instead of failing slowly after planning started.
   This is the fast-rejection path the acceptance criterion times.
2. **queue-full shed** — beyond ``max_queue_depth`` waiting items the
   frontend is past saturation; admitting more just grows latency for
   everyone, so the request is shed with ``reason="queue full"``.
3. **pressure degrade** — between ``degrade_depth`` and the full queue the
   item is admitted but marked ``degrade``: the frontend forwards it with
   a zero deadline, so the owning shard serves whatever is cached right
   now or the fallback backend (``degraded=True``), and the exact plan
   still lands in the cache in the background.
4. **admit** — otherwise the item queues for exact planning.

Cost estimates are exponentially-weighted moving averages of observed
shard service times, split by cache hit vs. cold plan; the frontend knows
which to expect because it tracks the set of fingerprints believed warm
(fed by responses and warm-replication, :meth:`note_warm`).  A second
deadline check happens at *dequeue* time in the frontend ("late shed"):
the queue is earliest-deadline-first, but an item can still expire while
queued and is then shed rather than dispatched.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

#: decision actions
ADMIT = "admit"
SHED = "shed"
DEGRADE = "degrade"


@dataclass(frozen=True)
class Decision:
    """One admission verdict with the estimate that produced it."""

    action: str            # ADMIT | SHED | DEGRADE
    reason: str
    est_cost_s: float

    @property
    def admitted(self) -> bool:
        return self.action in (ADMIT, DEGRADE)


class AdmissionController:
    """Deadline-aware admission policy over EWMA service-time estimates."""

    def __init__(
        self,
        *,
        max_queue_depth: int = 256,
        degrade_depth: int = 64,
        safety_factor: float = 1.2,
        initial_cold_s: float = 0.25,
        initial_hit_s: float = 0.002,
        alpha: float = 0.2,
        max_hints: int = 100_000,
    ):
        if max_queue_depth <= 0 or degrade_depth <= 0:
            raise ValueError("queue depths must be positive")
        if degrade_depth > max_queue_depth:
            raise ValueError("degrade_depth cannot exceed max_queue_depth")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.max_queue_depth = max_queue_depth
        self.degrade_depth = degrade_depth
        self.safety_factor = safety_factor
        self.alpha = alpha
        self.max_hints = max_hints
        self._cold_s = initial_cold_s
        self._hit_s = initial_hit_s
        self._warm_hints: set = set()
        self._decisions: Dict[str, int] = {
            ADMIT: 0, SHED: 0, DEGRADE: 0}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------
    def note_warm(self, fingerprint: str) -> None:
        """Record that a fingerprint is (believed) cached somewhere."""
        with self._lock:
            if len(self._warm_hints) >= self.max_hints:
                self._warm_hints.pop()  # arbitrary eviction; hints are hints
            self._warm_hints.add(fingerprint)

    def observe(self, fingerprint: str, latency_s: float,
                cache_hit: bool) -> None:
        """Fold one observed shard service time into the estimates."""
        with self._lock:
            if cache_hit:
                self._hit_s += self.alpha * (latency_s - self._hit_s)
            else:
                self._cold_s += self.alpha * (latency_s - self._cold_s)
            if len(self._warm_hints) < self.max_hints:
                self._warm_hints.add(fingerprint)

    def estimate(self, fingerprint: Optional[str]) -> float:
        """Expected service time: hit estimate if hinted warm, else cold."""
        with self._lock:
            if fingerprint is not None and fingerprint in self._warm_hints:
                return self._hit_s
            return self._cold_s

    @property
    def floor_s(self) -> float:
        """The cheapest possible service estimate (a cache hit)."""
        with self._lock:
            return self._hit_s

    # ------------------------------------------------------------------
    # policy
    # ------------------------------------------------------------------
    def quick_shed(self, deadline_s: Optional[float]) -> Optional[Decision]:
        """The pre-fingerprint fast path: shed what no cache hit could meet.

        Called before the frontend spends anything on the item (no model
        build, no fingerprint hash, no routing) so an unmeetable deadline
        is answered in microseconds.  Returns ``None`` when the item needs
        the full :meth:`decide`.
        """
        if deadline_s is None:
            return None
        floor = self.floor_s
        if deadline_s / self.safety_factor < floor:
            return self._record(Decision(
                SHED, "deadline below cache-hit service time", floor))
        return None

    def decide(
        self,
        fingerprint: Optional[str],
        deadline_s: Optional[float],
        queue_depth: int,
    ) -> Decision:
        """Admission verdict for one item; see the module docstring."""
        est = self.estimate(fingerprint)
        if deadline_s is not None:
            budget = deadline_s / self.safety_factor
            if budget < self.floor_s:
                return self._record(Decision(
                    SHED, "deadline below cache-hit service time", est))
            if budget < est:
                return self._record(Decision(
                    SHED, "deadline unmeetable at current estimate", est))
        if queue_depth >= self.max_queue_depth:
            return self._record(Decision(SHED, "queue full", est))
        if queue_depth >= self.degrade_depth:
            return self._record(Decision(
                DEGRADE, "queue pressure past degrade threshold", est))
        return self._record(Decision(ADMIT, "admitted", est))

    def _record(self, decision: Decision) -> Decision:
        with self._lock:
            self._decisions[decision.action] += 1
        return decision

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-compatible view for ``fleet_stats``."""
        with self._lock:
            return {
                "est_cold_ms": round(self._cold_s * 1e3, 3),
                "est_hit_ms": round(self._hit_s * 1e3, 3),
                "warm_hints": len(self._warm_hints),
                "max_queue_depth": self.max_queue_depth,
                "degrade_depth": self.degrade_depth,
                "decisions": dict(self._decisions),
            }
