"""Deadline-aware retry policy: exponential backoff with deterministic jitter.

One policy object is shared by every fleet component that talks over the
wire — the frontend's shard connection pools, the dispatcher's failover
loop and the blocking :class:`~repro.fleet.client.FleetClient` — so "how
does the fleet retry" has exactly one answer:

* **bounded attempts** — ``max_attempts`` total tries (the first attempt
  plus ``max_attempts - 1`` retries);
* **exponential backoff with jitter** — retry ``i`` sleeps
  ``base_delay_s * multiplier**(i-1)`` capped at ``max_delay_s``, plus a
  jitter fraction that decorrelates competing retriers;
* **deterministic when seeded** — with ``seed`` set the jitter for retry
  ``i`` is a pure function of ``(seed, i)``, which is what lets the chaos
  harness (:mod:`repro.fleet.chaos`) replay a failure episode bit-for-bit;
* **never past the deadline** — :meth:`delays` stops yielding as soon as
  the next sleep would overrun the caller's remaining budget, so a retry
  can shorten a request's tail but never blow its deadline.

Only *transient transport* errors are retryable (:func:`is_transient`):
connection resets, refused dials, frame desynchronization, timeouts.  An
application-level error reply (``{"ok": false, ...}``) is a final answer
and is never retried here.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

from .wire import FrameError

T = TypeVar("T")

#: exception types a retry may heal: the transport failed, not the request
TRANSIENT_EXCEPTIONS = (
    ConnectionError,
    TimeoutError,
    OSError,
    FrameError,
    asyncio.IncompleteReadError,
)

#: retry/failover reason tags, used as metric suffixes
#: (``retries_<reason>``); :func:`classify` maps an exception onto one
REASON_CONNECT = "connect"
REASON_TIMEOUT = "timeout"
REASON_TRANSPORT = "transport"


class RetryPolicyError(ValueError):
    """A retry policy spec string does not parse."""


def is_transient(exc: BaseException) -> bool:
    """True when a fresh connection might succeed where ``exc`` failed."""
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


def classify(exc: BaseException) -> str:
    """A metric-suffix reason tag for a transient transport error."""
    if isinstance(exc, (TimeoutError, asyncio.TimeoutError)):
        return REASON_TIMEOUT
    if isinstance(exc, (ConnectionRefusedError, ConnectionAbortedError)):
        return REASON_CONNECT
    return REASON_TRANSPORT


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a cap, deterministic jitter and a budget."""

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1  # fraction of the delay added as jitter in [0, j)
    seed: Optional[int] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    #: spec-string key -> field name (short operator-facing aliases)
    _SPEC_KEYS = {
        "attempts": "max_attempts",
        "base": "base_delay_s",
        "max": "max_delay_s",
        "multiplier": "multiplier",
        "jitter": "jitter",
        "seed": "seed",
    }

    @classmethod
    def parse(cls, text: str) -> "RetryPolicy":
        """Parse ``"attempts=3,base=0.02,max=0.1,seed=0"`` (same spec
        shape as :meth:`ChaosSpec.parse <repro.fleet.chaos.ChaosSpec.parse>`;
        omitted keys keep the dataclass defaults)."""
        values: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            field = cls._SPEC_KEYS.get(key)
            if not sep or field is None:
                raise RetryPolicyError(
                    f"bad retry spec entry {part!r}; known keys: "
                    f"{', '.join(cls._SPEC_KEYS)}")
            try:
                values[field] = (int(raw) if field in
                                 ("max_attempts", "seed") else float(raw))
            except ValueError as exc:
                raise RetryPolicyError(
                    f"bad retry spec value for {key}: {raw!r}") from exc
        try:
            return cls(**values)
        except ValueError as exc:
            raise RetryPolicyError(str(exc)) from exc

    # ------------------------------------------------------------------
    def _jitter_fraction(self, retry_index: int) -> float:
        if self.seed is None:
            return random.random()
        # a pure function of (seed, retry_index): replayable episodes
        # (str seeds hash via sha512 — stable across processes and runs)
        return random.Random(f"{self.seed}:{retry_index}").random()

    def delay(self, retry_index: int) -> float:
        """The backoff before retry ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        raw = min(self.base_delay_s * self.multiplier ** (retry_index - 1),
                  self.max_delay_s)
        return raw * (1.0 + self.jitter * self._jitter_fraction(retry_index))

    def delays(self, budget_s: Optional[float] = None) -> Iterator[float]:
        """Backoff sleeps for retries 1..max_attempts-1, deadline-bounded.

        ``budget_s`` is the remaining time the caller may spend; the
        iterator stops early once the accumulated sleep would exceed it
        (the attempt itself still costs time on top — callers with hard
        deadlines should also bound each attempt).
        """
        spent = 0.0
        for retry_index in range(1, self.max_attempts):
            d = self.delay(retry_index)
            if budget_s is not None and spent + d > budget_s:
                return
            spent += d
            yield d


#: a single-attempt policy: the "retry" knob in its off position
NO_RETRY = RetryPolicy(max_attempts=1)

#: the fleet-wide default; seeded so two frontends with the same config
#: behave identically (the chaos harness depends on this)
DEFAULT_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.05,
                            max_delay_s=2.0, seed=0)


def run_with_retries(
    policy: RetryPolicy,
    attempt: Callable[[int], T],
    *,
    deadline_s: Optional[float] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Blocking retry driver: call ``attempt(i)`` until it returns.

    Retries only :func:`transient <is_transient>` errors, sleeping the
    policy's backoff between attempts and never past ``deadline_s``
    (seconds from now).  ``on_retry(retry_index, exc)`` fires before each
    backoff sleep — the client uses it to bump its retry counters.
    """
    deadline_abs = (time.monotonic() + deadline_s
                    if deadline_s is not None else None)
    last_exc: Optional[BaseException] = None
    for index in range(policy.max_attempts):
        if index:
            d = policy.delay(index)
            if deadline_abs is not None and \
                    time.monotonic() + d > deadline_abs:
                break
            if on_retry is not None:
                on_retry(index, last_exc)  # type: ignore[arg-type]
            sleep(d)
        try:
            return attempt(index)
        except TRANSIENT_EXCEPTIONS as exc:
            last_exc = exc
    assert last_exc is not None
    raise last_exc
