"""Consistent-hash ring: which shard owns which plan fingerprint.

The fleet shards the content-addressed plan cache by request fingerprint.
A classic consistent-hash ring with virtual nodes gives the three
properties the fleet needs:

* **balance** — with enough virtual nodes per shard the keyspace splits
  near-uniformly (``tests/test_fleet_ring.py`` enforces a χ² bound);
* **minimal movement** — adding or removing a shard only moves the keys
  that land on (or leave) that shard, ~1/N of the keyspace, so a shard
  join/leave invalidates a slice of the cache instead of all of it;
* **determinism** — ring points are SHA-256 of ``"{shard}#{vnode}"``, so
  every process (frontend, shards, offline tools) that builds a ring from
  the same shard names routes every key identically.  No process-local
  ``hash()`` anywhere: ``PYTHONHASHSEED`` cannot desynchronize the fleet.

Membership now changes at runtime — the health monitor removes a shard
that stops answering and re-adds it on recovery — so every operation is
guarded by one reentrant lock: a heartbeat transition and a routing
lookup from the dispatch path can interleave safely.  Because ring points
are pure hashes of the shard name, a shard that leaves and rejoins lands
on exactly the positions it held before, and its (disk-) warm cache keeps
matching its keyspace.

:meth:`successors` is the failover order: the distinct shards in
clockwise ring order starting at a key's owner.  When the owner dies
mid-dispatch the frontend retries down that list, which keeps failover
routing as deterministic as primary routing.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, Iterable, List, Tuple

#: virtual nodes per shard; 128 keeps the χ² balance bound comfortably
#: while the ring build stays microseconds for realistic fleet sizes
DEFAULT_VNODES = 128


def _point(data: str) -> int:
    """A 64-bit ring position for an arbitrary string, stable everywhere."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping fingerprints to shard names."""

    def __init__(self, shards: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._lock = threading.RLock()
        self._shards: List[str] = []
        #: sorted parallel arrays of (ring position, owning shard)
        self._points: List[int] = []
        self._owners: List[str] = []
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, shard: str) -> None:
        """Join a shard: insert its virtual nodes into the ring."""
        if not shard:
            raise ValueError("shard name must be non-empty")
        with self._lock:
            if shard in self._shards:
                raise ValueError(f"shard {shard!r} already on the ring")
            self._shards.append(shard)
            for vnode in range(self.vnodes):
                point = _point(f"{shard}#{vnode}")
                index = bisect.bisect(self._points, point)
                self._points.insert(index, point)
                self._owners.insert(index, shard)

    def remove(self, shard: str) -> None:
        """Leave a shard: its keys redistribute to the ring's survivors."""
        with self._lock:
            if shard not in self._shards:
                raise ValueError(f"shard {shard!r} not on the ring")
            self._shards.remove(shard)
            keep = [i for i, owner in enumerate(self._owners)
                    if owner != shard]
            self._points = [self._points[i] for i in keep]
            self._owners = [self._owners[i] for i in keep]

    @property
    def shards(self) -> Tuple[str, ...]:
        """Shard names in join order."""
        with self._lock:
            return tuple(self._shards)

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        with self._lock:
            return shard in self._shards

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise from it."""
        with self._lock:
            if not self._points:
                raise LookupError("ring has no shards")
            index = bisect.bisect(self._points, _point(key))
            if index == len(self._points):  # wrap past the last point
                index = 0
            return self._owners[index]

    def successors(self, key: str) -> List[str]:
        """All shards in clockwise order from ``key``: the failover order.

        ``successors(key)[0]`` is :meth:`owner`; each later entry is the
        next *distinct* shard around the ring — the shard that would own
        the key if everything before it in the list left.
        """
        with self._lock:
            if not self._points:
                return []
            start = bisect.bisect(self._points, _point(key))
            order: List[str] = []
            seen = set()
            for offset in range(len(self._points)):
                shard = self._owners[(start + offset) % len(self._points)]
                if shard not in seen:
                    seen.add(shard)
                    order.append(shard)
                    if len(order) == len(self._shards):
                        break
            return order

    def distribute(self, keys: Iterable[str]) -> Dict[str, int]:
        """Key count per shard — balance checks and capacity planning."""
        with self._lock:
            counts = {shard: 0 for shard in self._shards}
            for key in keys:
                counts[self.owner(key)] += 1
            return counts

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict:
        """JSON-compatible summary (the ``fleet_stats`` ``ring`` block)."""
        with self._lock:
            return {
                "shards": list(self._shards),
                "vnodes": self.vnodes,
                "points": len(self._points),
            }
