"""Deterministic fault injection for the fleet: the chaos harness.

Production failures are rare, concurrent and unreproducible; this module
makes them cheap, scripted and **bit-reproducible**.  A
:class:`ChaosSpec` describes a failure mix — wire-frame faults applied
probabilistically plus two scripted shard faults — and a
:class:`ChaosController` executes it from one seeded RNG, so the same
spec replays the same episode on every run:

* ``drop``    — an outbound frame is silently not written (the peer sees
  a stalled stream and times out);
* ``delay_ms`` — an outbound frame is written after a fixed delay with
  probability ``delay`` (straggler links);
* ``corrupt`` — a byte in the frame *body* is flipped (the length prefix
  is left intact so the receiver reads a full frame and fails cleanly in
  :func:`~repro.fleet.wire.decode_body` instead of desynchronizing);
* ``chaos_kill`` op — the shard dies like a crash: ``os._exit`` in
  process mode (no drain, no reply, no atexit), abrupt server stop in
  thread mode;
* ``chaos_freeze`` op — the shard answers nothing for N seconds (every
  subsequent request blocks), which is what a GC pause, an NFS stall or a
  wedged worker pool look like from the frontend.

Faults are **scoped**: a controller is attached to one
:class:`~repro.fleet.shard.ShardServer` (or installed process-wide via
:func:`install` / the ``REPRO_CHAOS`` env var / ``serve --chaos``), so a
test can perturb one shard's responses while the frontend, the client and
the other shards stay healthy.  The chaos ops are refused unless a
controller is active — a production fleet without ``--chaos`` cannot be
killed over the wire.

Spec strings are comma-separated ``key=value`` pairs::

    seed=42                       # ops enabled, no wire faults
    seed=7,corrupt=0.25           # corrupt 25% of outbound frames
    seed=7,drop=0.1,delay=0.2,delay_ms=50
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: environment variable carrying a chaos spec string for process-wide
#: installation (the CLI's ``serve --chaos`` sets the same thing up)
CHAOS_ENV = "REPRO_CHAOS"


class ChaosSpecError(ValueError):
    """A chaos spec string does not parse."""


@dataclass(frozen=True)
class ChaosSpec:
    """A declarative failure mix; all probabilities in [0, 1]."""

    seed: int = 0
    drop: float = 0.0      # P(outbound frame silently dropped)
    delay: float = 0.0     # P(outbound frame delayed by delay_ms)
    delay_ms: float = 0.0  # the straggler delay applied on a delay hit
    corrupt: float = 0.0   # P(one body byte flipped in an outbound frame)

    _FIELDS = ("seed", "drop", "delay", "delay_ms", "corrupt")

    def __post_init__(self):
        for name in ("drop", "delay", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ChaosSpecError(f"{name} must be in [0, 1], got {value}")
        if self.delay_ms < 0:
            raise ChaosSpecError("delay_ms cannot be negative")

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse ``"seed=42,drop=0.1,delay=0.2,delay_ms=50,corrupt=0.05"``."""
        values: Dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in cls._FIELDS:
                raise ChaosSpecError(
                    f"bad chaos spec entry {part!r}; known keys: "
                    f"{', '.join(cls._FIELDS)}")
            try:
                values[key] = int(raw) if key == "seed" else float(raw)
            except ValueError as exc:
                raise ChaosSpecError(
                    f"bad chaos spec value for {key}: {raw!r}") from exc
        return cls(**values)  # type: ignore[arg-type]

    def describe(self) -> str:
        return ",".join(f"{name}={getattr(self, name)}"
                        for name in self._FIELDS)


class ChaosController:
    """Executes one :class:`ChaosSpec` from a private seeded RNG.

    Thread-safe: shard handler threads share one controller, and the RNG
    draw order (one draw per fault class per frame, in a fixed order) is
    what makes an episode deterministic for a given request sequence.
    """

    def __init__(self, spec: ChaosSpec):
        # the stdlib Mersenne Twister, privately seeded: deterministic
        # without touching the global random module state
        import random

        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._lock = threading.Lock()
        self.frames_seen = 0
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.frames_corrupted = 0

    # ------------------------------------------------------------------
    def perturb_tagged(
        self, data: bytes
    ) -> Tuple[Optional[bytes], float, Tuple[str, ...]]:
        """Apply wire faults to one encoded frame, naming what was done.

        Returns ``(frame_bytes_or_None, delay_s, tags)``: ``None`` means
        the frame is dropped; the caller sleeps ``delay_s`` (sync or
        async) before writing whatever survives; ``tags`` lists the
        injected faults (``"drop"`` / ``"delay"`` / ``"corrupt"``, empty
        when the frame passed untouched) so telemetry can mark the
        request as chaos-injected for SLO burn attribution.

        The RNG draw order (one draw per fault class per frame, fixed) is
        identical to the untagged :meth:`perturb`, so episodes stay
        bit-reproducible regardless of which entry point the codec uses.
        """
        spec = self.spec
        tags: Tuple[str, ...] = ()
        with self._lock:
            self.frames_seen += 1
            drop_roll = self._rng.random() if spec.drop else 1.0
            delay_roll = self._rng.random() if spec.delay else 1.0
            corrupt_roll = self._rng.random() if spec.corrupt else 1.0
            flip_at = (self._rng.randrange(max(1, len(data) - 4))
                       if spec.corrupt else 0)
            if drop_roll < spec.drop:
                self.frames_dropped += 1
                return None, 0.0, ("drop",)
            delay_s = 0.0
            if delay_roll < spec.delay:
                self.frames_delayed += 1
                delay_s = spec.delay_ms / 1e3
                tags += ("delay",)
            if corrupt_roll < spec.corrupt and len(data) > 4:
                self.frames_corrupted += 1
                index = 4 + flip_at  # body only: keep the length honest
                data = data[:index] + bytes([data[index] ^ 0xFF]) \
                    + data[index + 1:]
                tags += ("corrupt",)
            return data, delay_s, tags

    def perturb(self, data: bytes) -> Tuple[Optional[bytes], float]:
        """Apply wire faults to one encoded frame (untagged form).

        Returns ``(frame_bytes_or_None, delay_s)``; see
        :meth:`perturb_tagged` for the fault semantics.
        """
        data, delay_s, _ = self.perturb_tagged(data)
        return data, delay_s

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "spec": self.spec.describe(),
                "frames_seen": self.frames_seen,
                "frames_dropped": self.frames_dropped,
                "frames_delayed": self.frames_delayed,
                "frames_corrupted": self.frames_corrupted,
            }


# ----------------------------------------------------------------------
# process-wide installation (the env-var / CLI gate)
# ----------------------------------------------------------------------

_active: Optional[ChaosController] = None
_env_checked = False
_active_lock = threading.Lock()


def install(spec) -> ChaosController:
    """Install a process-wide controller (spec string, spec, or controller)."""
    global _active, _env_checked
    if isinstance(spec, str):
        spec = ChaosSpec.parse(spec)
    controller = spec if isinstance(spec, ChaosController) \
        else ChaosController(spec)
    with _active_lock:
        _active = controller
        _env_checked = True
    return controller


def uninstall() -> None:
    """Remove the process-wide controller (and forget the env-var check)."""
    global _active, _env_checked
    with _active_lock:
        _active = None
        _env_checked = False


def active() -> Optional[ChaosController]:
    """The process-wide controller, auto-installed from ``REPRO_CHAOS``.

    The common (healthy) path is one attribute read — the wire codecs call
    this per frame, so it must cost nothing when chaos is off.
    """
    global _active, _env_checked
    if _active is not None or _env_checked:
        return _active
    with _active_lock:
        if not _env_checked:
            text = os.environ.get(CHAOS_ENV)
            if text:
                _active = ChaosController(ChaosSpec.parse(text))
            _env_checked = True
        return _active
