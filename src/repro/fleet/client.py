"""Blocking wire-v2 client for the fleet frontend (and for single shards).

Used by the CLI (``repro fleet-stats``, ``repro warm --port``), by the CI
fleet-smoke job and by tests; anything that already speaks the v1
JSON-lines protocol can keep doing that instead — the frontend sniffs the
first byte of each connection and serves either protocol.

Transient transport failures (connection reset, timeout, a torn frame)
are retried through the shared :mod:`repro.fleet.retry` policy: the
client reconnects, replays the hello, and re-sends the request.  Only
idempotent traffic goes through a fleet — ``plan`` is content-addressed
and ``warm``/``cache_put`` are upserts — so replaying a request whose
reply was lost is safe.  ``shutdown`` is the exception and is sent with
:data:`~repro.fleet.retry.NO_RETRY`.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from .retry import DEFAULT_RETRY, NO_RETRY, RetryPolicy, run_with_retries
from .wire import (
    MAX_RESPONSE_FRAME_BYTES,
    hello_doc,
    recv_frame,
    send_frame,
)


class FleetClient:
    """One blocking v2 connection with convenience wrappers per op."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 60.0,
                 retry: Optional[RetryPolicy] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_RETRY
        #: transport attempts beyond the first, across the client's life
        self.retries = 0
        self._sock: Optional[socket.socket] = None
        self.hello: Dict = {}
        self._connect()
        if not self.hello.get("ok"):
            error = self.hello.get("error")
            self.close()
            raise ConnectionError(f"handshake refused: {error}")

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        """(Re)open the socket and redo the hello handshake."""
        self.close()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout)
        self._sock.settimeout(self.timeout)
        self.hello = self._roundtrip(hello_doc(role="client"))

    def _roundtrip(self, doc: Dict) -> Dict:
        send_frame(self._sock, doc)
        reply = recv_frame(self._sock, max_bytes=MAX_RESPONSE_FRAME_BYTES)
        if reply is None:
            raise ConnectionError("server closed the connection")
        return reply

    def request(self, doc: Dict, *,
                retry: Optional[RetryPolicy] = None) -> Dict:
        """Send one frame, block for one reply; reconnect-and-retry on
        transient transport errors (never past the connect timeout's worth
        of deadline per attempt)."""
        policy = retry if retry is not None else self.retry

        def attempt(index: int) -> Dict:
            if self._sock is None:
                self._connect()
                if not self.hello.get("ok"):
                    raise ConnectionError(
                        f"handshake refused: {self.hello.get('error')}")
            try:
                return self._roundtrip(doc)
            except BaseException:
                self.close()  # the stream may be desynchronized
                raise

        def on_retry(index: int, exc: BaseException) -> None:
            self.retries += 1

        return run_with_retries(policy, attempt, deadline_s=self.timeout,
                                on_retry=on_retry)

    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def plan(self, spec: Dict, *, deadline_ms: Optional[float] = None,
             **extra) -> Dict:
        doc = dict(spec, op="plan", **extra)
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return self.request(doc)

    def plan_batch(self, items: List[Dict], *,
                   deadline_ms: Optional[float] = None, **extra) -> Dict:
        doc: Dict = {"op": "plan_batch", "items": list(items), **extra}
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return self.request(doc)

    def warm(self, items: List[Dict]) -> Dict:
        return self.request({"op": "warm", "items": list(items)})

    def stats(self) -> Dict:
        return self.request({"op": "fleet_stats"})

    def trace(self) -> Dict:
        return self.request({"op": "trace"})

    def shutdown(self) -> Dict:
        # not idempotent: a replayed shutdown would hit the *next* server
        # listening on the port (e.g. a supervisor-restarted shard)
        return self.request({"op": "shutdown"}, retry=NO_RETRY)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
