"""Blocking wire-v2 client for the fleet frontend (and for single shards).

Used by the CLI (``repro fleet-stats``, ``repro warm --port``), by the CI
fleet-smoke job and by tests; anything that already speaks the v1
JSON-lines protocol can keep doing that instead — the frontend sniffs the
first byte of each connection and serves either protocol.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from .wire import (
    MAX_RESPONSE_FRAME_BYTES,
    hello_doc,
    recv_frame,
    send_frame,
)


class FleetClient:
    """One blocking v2 connection with convenience wrappers per op."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self.hello = self.request(hello_doc(role="client"))
        if not self.hello.get("ok"):
            self.close()
            raise ConnectionError(
                f"handshake refused: {self.hello.get('error')}")

    # ------------------------------------------------------------------
    def request(self, doc: Dict) -> Dict:
        """Send one frame, block for one reply."""
        send_frame(self._sock, doc)
        reply = recv_frame(self._sock, max_bytes=MAX_RESPONSE_FRAME_BYTES)
        if reply is None:
            raise ConnectionError("server closed the connection")
        return reply

    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def plan(self, spec: Dict, *, deadline_ms: Optional[float] = None,
             **extra) -> Dict:
        doc = dict(spec, op="plan", **extra)
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return self.request(doc)

    def plan_batch(self, items: List[Dict], *,
                   deadline_ms: Optional[float] = None, **extra) -> Dict:
        doc: Dict = {"op": "plan_batch", "items": list(items), **extra}
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return self.request(doc)

    def warm(self, items: List[Dict]) -> Dict:
        return self.request({"op": "warm", "items": list(items)})

    def stats(self) -> Dict:
        return self.request({"op": "fleet_stats"})

    def trace(self) -> Dict:
        return self.request({"op": "trace"})

    def shutdown(self) -> Dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
