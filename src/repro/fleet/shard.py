"""Shard servers: one :class:`PlanService` per slice of the fingerprint space.

A shard is the unit of horizontal scale: it owns a contiguous set of ring
positions (see :mod:`repro.fleet.ring`), runs a full single-process plan
service (cache tiers, single-flight, worker pool, deadline fallback), and
speaks wire protocol v2 over TCP.  Shards never talk to each other — the
frontend routes, replicates and aggregates — which keeps every shard
failure mode local.

Two run modes, same server class:

* **thread** — the shard lives in the calling process behind a
  ``ThreadingTCPServer``; used by tests and by small single-machine fleets
  where process isolation is not worth the memory duplication;
* **process** — :func:`run_shard` is spawned as a separate OS process (the
  production topology from the ISSUE): its cache, worker pool, metrics and
  tracer are fully isolated, and the actual bound port travels back over a
  pipe so ephemeral ports work.

The supervisor starts N shards with per-shard disk-cache directories
(``<cache_dir>/shard-<name>``) and stops them by protocol (a ``shutdown``
frame drains the shard's in-flight jobs before the ack), falling back to
termination only when a process stops responding.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.serialize import plan_from_dict, plan_to_dict
from ..obs import telemetry as telemetry_store
from ..obs.logging import get_logger, set_log_context
from ..obs.tracing import tracer
from ..service.cache import PlanCache
from ..service.server import request_from_doc, response_to_doc
from ..service.service import PlanService
from .chaos import ChaosController, ChaosSpec
from .retry import RetryPolicy
from .ring import HashRing
from .wire import (
    FrameError,
    FrameTooLarge,
    MAX_REQUEST_FRAME_BYTES,
    negotiate,
    recv_frame,
    send_frame,
)

log = get_logger("repro.fleet.shard")

#: ops a shard answers; the frontend speaks exactly this set
SHARD_OPS = ("hello", "ping", "plan", "cache_put", "stats", "trace",
             "shutdown")

#: fault-injection ops, refused unless the shard runs with a chaos
#: controller (``serve --chaos`` / ``REPRO_CHAOS``): a production shard
#: cannot be killed or frozen over the wire
CHAOS_OPS = ("chaos_kill", "chaos_freeze")


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a loop of v2 frames until EOF or shutdown."""

    def setup(self) -> None:  # pragma: no cover - exercised via sockets
        self.server.shard._track(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:  # pragma: no cover - exercised via sockets
        self.server.shard._untrack(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        shard: "ShardServer" = self.server.shard  # type: ignore[attr-defined]
        sock = self.request
        while True:
            if shard.killed:  # a dead shard accepts nothing, answers less
                return
            try:
                doc = recv_frame(sock, max_bytes=MAX_REQUEST_FRAME_BYTES)
            except FrameTooLarge as exc:
                try:
                    send_frame(sock, {
                        "ok": False, "error": "request too large",
                        "limit_bytes": exc.limit, "got_bytes": exc.declared,
                    }, chaos=shard.chaos)
                except OSError:
                    pass
                return  # stream is desynchronized past a refused frame
            except (FrameError, OSError):
                return
            # re-check after the blocking read: killed is set before any
            # connection is severed, so a request that arrives once the
            # kill is observable must be dropped, not served — without
            # this a not-yet-severed link can answer one last request
            if doc is None or shard.killed:
                return
            reply, stop = shard.handle_doc(doc)
            if reply is None:  # a chaos crash answers with silence
                return
            try:
                send_frame(sock, reply, chaos=shard.chaos,
                           telemetry=shard.service.telemetry)
            except OSError:
                return
            if stop:
                shard.request_stop()
                return


class _ShardTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    block_on_close = False


class ShardServer:
    """A plan service behind a threaded TCP server speaking wire v2."""

    def __init__(
        self,
        name: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        capacity: int = 128,
        workers: Optional[int] = None,
        fallback_backend: str = "greedy",
        trace: bool = False,
        chaos=None,
        hard_exit: bool = False,
        telemetry_dir=None,
        slo=None,
        profile_path=None,
    ):
        self.name = str(name)
        # in thread mode several shards share one process, so each shard
        # gets its own writer (per-shard directory) instead of the
        # process-wide install; in process mode run_shard installs the
        # writer process-wide before building the server
        telemetry = None
        if telemetry_dir is not None:
            telemetry = telemetry_store.TelemetryWriter(telemetry_dir)
        # profile travels as a *path* (a primitive: pickles through spawn,
        # same pattern as the chaos/slo spec strings); every shard loads
        # the same calibrated rates and prices its plans with them
        default_profile = None
        if profile_path:
            from ..hardware.profile import load_profile

            default_profile = load_profile(profile_path)
        self.service = PlanService(
            cache=PlanCache(capacity=capacity, disk_dir=cache_dir),
            workers=workers,
            fallback_backend=fallback_backend,
            slo=slo,
            telemetry=telemetry,
            telemetry_labels={"shard": str(name)},
            default_profile=default_profile,
        )
        if trace:
            tracer.enable()
        if isinstance(chaos, str):
            chaos = ChaosSpec.parse(chaos)
        if isinstance(chaos, ChaosSpec):
            chaos = ChaosController(chaos)
        #: this shard's fault injector (None = healthy); scoped to the
        #: server so one chaotic shard never perturbs its peers
        self.chaos: Optional[ChaosController] = chaos
        #: under ``hard_exit`` a ``chaos_kill`` is a real crash
        #: (``os._exit``): no drain, no reply, no atexit — process mode
        self._hard_exit = hard_exit
        self._frozen_until = 0.0
        #: set by a thread-mode chaos kill: the listening socket may take
        #: a poll interval to close, so connections that sneak in are
        #: dropped on sight instead of served by the "dead" shard
        self.killed = False
        #: live client sockets; a thread-mode chaos kill severs them all,
        #: because a crashed process drops its connections too
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._server = _ShardTCPServer((host, port), _ShardRequestHandler)
        self._server.shard = self  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def handle_doc(self, doc: Dict) -> Tuple[Optional[Dict], bool]:
        """Answer one frame; returns ``(reply, stop_serving)``.

        A ``None`` reply means "answer with silence and drop the
        connection" — only the chaos kill path produces it, because a
        crashing shard does not say goodbye.
        """
        frozen_for = self._frozen_until - time.monotonic()
        if frozen_for > 0:  # chaos freeze: the shard stops answering
            time.sleep(frozen_for)
        op = doc.get("op", "plan")
        request_id = doc.get("id")
        stop = False
        try:
            if op in CHAOS_OPS:
                return self._handle_chaos_op(op, doc, request_id)
            if op == "hello":
                reply = negotiate(doc, role="shard", server=self.name)
            elif op == "ping":
                reply = {"ok": True, "shard": self.name}
            elif op == "plan":
                reply = self._handle_plan(doc)
            elif op == "cache_put":
                reply = self._handle_cache_put(doc)
            elif op == "stats":
                stats = self.service.snapshot()
                if self.chaos is not None:
                    stats["chaos"] = self.chaos.snapshot()
                reply = {"ok": True, "shard": self.name, "stats": stats}
            elif op == "trace":
                spans = [dict(span.as_dict(), process=f"shard-{self.name}")
                         for span in tracer.drain()]
                reply = {"ok": True, "shard": self.name, "spans": spans}
            elif op == "shutdown":
                pending = self.service.pending_jobs()
                self.service.drain()
                reply = {"ok": True, "op": "shutdown", "shard": self.name,
                         "drained_jobs": pending}
                stop = True
            else:
                reply = {"ok": False, "shard": self.name,
                         "error": f"unknown op {op!r}",
                         "known_ops": list(SHARD_OPS)}
        except Exception as exc:  # one bad request must not kill the shard
            reply = {"ok": False, "shard": self.name, "error": str(exc)}
        if request_id is not None:
            reply.setdefault("id", request_id)
        return reply, stop

    def _handle_plan(self, doc: Dict) -> Dict:
        deadline_ms = doc.get("deadline_ms")
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        request = request_from_doc(doc)
        response = self.service.plan(
            request, deadline_s=deadline_s, trace_id=doc.get("trace_id"))
        reply = response_to_doc(response)
        reply["shard"] = self.name
        if doc.get("include_plan"):
            reply["plan"] = plan_to_dict(response.planned)
        return reply

    def _handle_cache_put(self, doc: Dict) -> Dict:
        """Warm-replication receiver: install a peer-planned cache entry."""
        fingerprint = doc.get("fingerprint")
        plan_doc = doc.get("plan")
        if not fingerprint or not isinstance(plan_doc, dict):
            raise ValueError("cache_put needs 'fingerprint' and 'plan'")
        planned = plan_from_dict(plan_doc)
        self.service.cache.put(fingerprint, planned)
        return {"ok": True, "shard": self.name, "stored": True,
                "fingerprint": fingerprint}

    def _handle_chaos_op(self, op: str, doc: Dict,
                         request_id) -> Tuple[Optional[Dict], bool]:
        """Scripted shard faults; refused without an active controller."""
        if self.chaos is None:
            reply = {"ok": False, "shard": self.name,
                     "error": "chaos not enabled on this shard"}
            if request_id is not None:
                reply["id"] = request_id
            return reply, False
        if op == "chaos_kill":
            log.warning("chaos kill", extra={
                "event": "chaos_kill", "shard": self.name,
                "hard_exit": self._hard_exit})
            if self._hard_exit:  # a real crash: no drain, no goodbye
                os._exit(17)
            # thread mode: stop accepting, sever every live connection
            # (a dead process drops them all), and answer with silence
            self.killed = True
            self.request_stop()
            self._sever_connections()
            return None, True
        seconds = float(doc.get("seconds", 1.0))
        self._frozen_until = time.monotonic() + seconds
        log.warning("chaos freeze", extra={
            "event": "chaos_freeze", "shard": self.name,
            "seconds": seconds})
        reply = {"ok": True, "shard": self.name, "frozen_s": seconds}
        if request_id is not None:
            reply["id"] = request_id
        return reply, False

    # ------------------------------------------------------------------
    # connection tracking (for the thread-mode chaos kill)
    # ------------------------------------------------------------------
    def _track(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def _untrack(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def _sever_connections(self) -> None:
        with self._connections_lock:
            victims = list(self._connections)
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving connections until :meth:`stop` (or a shutdown op)."""
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()
            self.service.close()

    def start_background(self) -> None:
        """Serve from a daemon thread (the supervisor's thread mode)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name=f"shard-{self.name}", daemon=True)
        self._serve_thread.start()

    def request_stop(self) -> None:
        """Stop serving soon; safe to call from a handler thread."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def stop(self, timeout: float = 10.0) -> None:
        self.request_stop()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)


def run_shard(config: Dict, port_conn) -> None:
    """Process entrypoint: build a shard, report its port, serve forever.

    ``config`` is a plain dict of primitives so the function works under
    every multiprocessing start method (spawn pickles it).
    """
    # every JSON log line this process emits carries its shard name, so
    # logs join the {shard="n"} metric series without per-call-site extras
    set_log_context(shard=str(config["name"]))
    if config.get("telemetry_dir"):
        # process-wide: the service, planner and sim producers in this
        # process all share one writer appending to the shard's directory
        telemetry_store.install(config["telemetry_dir"])
    server = ShardServer(
        config["name"],
        host=config.get("host", "127.0.0.1"),
        port=config.get("port", 0),
        cache_dir=config.get("cache_dir"),
        capacity=config.get("capacity", 128),
        workers=config.get("workers"),
        fallback_backend=config.get("fallback_backend", "greedy"),
        trace=config.get("trace", False),
        chaos=config.get("chaos"),  # a spec string: pickles under spawn
        hard_exit=True,  # chaos_kill in a real process is a real crash
        slo=config.get("slo"),  # a spec string: pickles under spawn
        profile_path=config.get("profile_path"),
    )
    port_conn.send(server.port)
    port_conn.close()
    server.serve_forever()


@dataclass
class ShardHandle:
    """Where a running shard listens, plus how to stop it."""

    name: str
    host: str
    port: int
    mode: str  # "thread" | "process"
    server: Optional[ShardServer] = field(default=None, repr=False)
    process: Optional[multiprocessing.process.BaseProcess] = field(
        default=None, repr=False)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the shard, escalating: shutdown frame → terminate → kill.

        Each step gets a bounded wait before the next, harsher one, so a
        wedged process can delay teardown by at most ``2 * timeout`` but
        never hang it.  Escalations are logged: a fleet that needed
        SIGKILL to die was hiding a bug.
        """
        if self.mode == "thread" and self.server is not None:
            self.server.stop(timeout)
            return
        if self.process is None:
            return
        try:
            self._send_shutdown(timeout)
        except (OSError, FrameError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            log.warning("shard ignored shutdown; terminating", extra={
                "event": "shard_terminate", "shard": self.name,
                "pid": self.process.pid, "timeout_s": timeout})
            self.process.terminate()
            self.process.join(timeout)
        if self.process.is_alive():
            log.error("shard ignored SIGTERM; killing", extra={
                "event": "shard_kill", "shard": self.name,
                "pid": self.process.pid, "timeout_s": timeout})
            self.process.kill()
            self.process.join(timeout)

    def _send_shutdown(self, timeout: float) -> None:
        with socket.create_connection((self.host, self.port),
                                      timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_frame(sock, {"op": "shutdown"})
            recv_frame(sock)


class ShardSupervisor:
    """Start, name and stop a fleet's shard set.

    Shard names are ``"0" .. "N-1"`` — the same names every ring built via
    :meth:`ring` uses, so any process that knows the shard count routes
    identically.  Each shard gets its own disk-cache directory under
    ``cache_dir`` (``shard-0/``, ``shard-1/``, ...): the content-addressed
    cache is *sharded*, not shared, which is what makes cache capacity
    scale with the fleet.

    With ``restart=True`` (process mode only) a monitor thread watches for
    crashed shard processes and respawns each on its **original port** —
    the frontend's pools reconnect to the same address and the health
    monitor re-adds the shard to the ring once heartbeats succeed again.
    Restarts back off exponentially per shard (``restart_backoff``) and
    give up after ``max_restarts`` consecutive crashes, so a shard that
    dies on boot cannot hot-loop the machine; a shard that stays up
    long enough to be useful (:data:`RESTART_RESET_S`) earns its
    crash-counter back.
    """

    #: a shard alive this long since its last (re)start is considered
    #: stable: its consecutive-crash counter resets
    RESTART_RESET_S = 30.0

    def __init__(
        self,
        count: int,
        *,
        cache_dir=None,
        mode: str = "thread",
        host: str = "127.0.0.1",
        capacity: int = 128,
        workers: Optional[int] = None,
        fallback_backend: str = "greedy",
        trace: bool = False,
        chaos: Optional[str] = None,
        telemetry_dir=None,
        slo: Optional[str] = None,
        profile_path=None,
        restart: bool = False,
        max_restarts: int = 5,
        restart_backoff: Optional[RetryPolicy] = None,
        monitor_interval_s: float = 0.2,
        on_restart: Optional[Callable[[str, int], None]] = None,
    ):
        if count <= 0:
            raise ValueError("a fleet needs at least one shard")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown shard mode {mode!r}")
        if restart and mode != "process":
            raise ValueError("restart supervision needs process-mode shards")
        self.count = count
        self.mode = mode
        self.host = host
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.capacity = capacity
        self.workers = workers
        self.fallback_backend = fallback_backend
        self.trace = trace
        #: chaos spec *string* (not a controller): it must pickle through
        #: spawn; each shard process builds its own seeded controller
        self.chaos = chaos
        #: telemetry root: each shard writes to <telemetry_dir>/shard-<n>
        #: (its own segment sequence — crash damage stays per shard)
        self.telemetry_dir = Path(telemetry_dir) if telemetry_dir else None
        #: SLO spec *string*, same pickling rationale as ``chaos``
        self.slo = slo
        #: calibrated-profile JSON *path*, same pickling rationale; every
        #: shard loads it as its service's default profile
        self.profile_path = str(profile_path) if profile_path else None
        self.restart = restart
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff or RetryPolicy(
            max_attempts=max(max_restarts, 1), base_delay_s=0.1,
            max_delay_s=5.0, seed=0)
        self.monitor_interval_s = monitor_interval_s
        self.on_restart = on_restart
        self.handles: List[ShardHandle] = []
        self.restarts: Dict[str, int] = {}
        self._consecutive: Dict[str, int] = {}
        self._started_at: Dict[str, float] = {}
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._handles_lock = threading.Lock()

    def _shard_cache_dir(self, name: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return str(self.cache_dir / f"shard-{name}")

    def _shard_telemetry_dir(self, name: str) -> Optional[str]:
        if self.telemetry_dir is None:
            return None
        return str(self.telemetry_dir / f"shard-{name}")

    def start(self) -> List[ShardHandle]:
        if self.handles:
            raise RuntimeError("supervisor already started")
        try:
            for index in range(self.count):
                name = str(index)
                self.handles.append(self._start_one(name))
                self._started_at[name] = time.monotonic()
        except BaseException:
            self.stop()
            raise
        if self.restart:
            self._monitor_stop.clear()
            self._monitor_thread = threading.Thread(
                target=self._monitor, name="shard-supervisor", daemon=True)
            self._monitor_thread.start()
        return self.handles

    def _start_one(self, name: str, port: int = 0) -> ShardHandle:
        if self.mode == "thread":
            server = ShardServer(
                name, host=self.host, cache_dir=self._shard_cache_dir(name),
                capacity=self.capacity, workers=self.workers,
                fallback_backend=self.fallback_backend, trace=self.trace,
                chaos=self.chaos,
                telemetry_dir=self._shard_telemetry_dir(name),
                slo=self.slo,
                profile_path=self.profile_path)
            server.start_background()
            return ShardHandle(name, server.host, server.port, "thread",
                               server=server)
        # process mode: spawn avoids inheriting this process's thread/lock
        # state (fork while worker pools run is a deadlock lottery)
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        config = {
            "name": name,
            "host": self.host,
            "port": port,
            "cache_dir": self._shard_cache_dir(name),
            "capacity": self.capacity,
            "workers": self.workers,
            "fallback_backend": self.fallback_backend,
            "trace": self.trace,
            "chaos": self.chaos,
            "telemetry_dir": self._shard_telemetry_dir(name),
            "slo": self.slo,
            "profile_path": self.profile_path,
        }
        process = ctx.Process(target=run_shard, args=(config, child_conn),
                              name=f"repro-shard-{name}", daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(60.0):
            process.terminate()
            raise RuntimeError(f"shard {name} never reported its port")
        port = parent_conn.recv()
        parent_conn.close()
        return ShardHandle(name, self.host, port, "process", process=process)

    # ------------------------------------------------------------------
    # crash supervision (process mode)
    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        """Watch for dead shard processes; restart each with backoff."""
        while not self._monitor_stop.wait(self.monitor_interval_s):
            with self._handles_lock:
                handles = list(self.handles)
            for index, handle in enumerate(handles):
                if handle.process is None or handle.process.is_alive():
                    continue
                self._restart_one(index, handle)

    def _restart_one(self, index: int, handle: ShardHandle) -> None:
        name = handle.name
        uptime = time.monotonic() - self._started_at.get(name, 0.0)
        if uptime >= self.RESTART_RESET_S:
            self._consecutive[name] = 0
        # stamp the crash observation so a failed restart attempt on the
        # next pass cannot re-read the old uptime and re-reset the counter
        self._started_at[name] = time.monotonic()
        crashes = self._consecutive.get(name, 0) + 1
        self._consecutive[name] = crashes
        exitcode = handle.process.exitcode
        if crashes > self.max_restarts:
            log.error("shard crash-looping; giving up", extra={
                "event": "shard_restart_abandoned", "shard": name,
                "exitcode": exitcode, "consecutive_crashes": crashes - 1})
            handle.process.join(0)
            with self._handles_lock:
                if index < len(self.handles) and \
                        self.handles[index] is handle:
                    self.handles[index] = ShardHandle(
                        name, handle.host, handle.port, "process")
            return
        delay = self.restart_backoff.delay(crashes)
        log.warning("shard died; restarting", extra={
            "event": "shard_restart", "shard": name, "exitcode": exitcode,
            "consecutive_crashes": crashes, "backoff_s": round(delay, 3)})
        if self._monitor_stop.wait(delay):
            return  # supervisor shutting down mid-backoff
        handle.process.join(0)  # reap before respawning on the same port
        try:
            replacement = self._start_one(name, port=handle.port)
        except (RuntimeError, OSError) as exc:
            log.error("shard restart failed", extra={
                "event": "shard_restart_failed", "shard": name,
                "error": str(exc)})
            return  # next monitor pass retries with a higher backoff
        self._started_at[name] = time.monotonic()
        self.restarts[name] = self.restarts.get(name, 0) + 1
        with self._handles_lock:
            if index < len(self.handles) and self.handles[index] is handle:
                self.handles[index] = replacement
            else:  # stop() raced us: kill the shard we just spawned
                replacement.stop(timeout=2.0)
                return
        if self.on_restart is not None:
            self.on_restart(name, self.restarts[name])

    def stop(self, timeout: float = 10.0) -> None:
        # the monitor must die first or it would resurrect every shard
        # this loop stops
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout)
            self._monitor_thread = None
        with self._handles_lock:
            handles, self.handles = self.handles, []
        for handle in handles:
            handle.stop(timeout)

    def ring(self, vnodes: Optional[int] = None) -> HashRing:
        """The routing ring over this supervisor's shard names."""
        names = [handle.name for handle in self.handles] or [
            str(index) for index in range(self.count)]
        return HashRing(names, **({"vnodes": vnodes} if vnodes else {}))

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
