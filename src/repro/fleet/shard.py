"""Shard servers: one :class:`PlanService` per slice of the fingerprint space.

A shard is the unit of horizontal scale: it owns a contiguous set of ring
positions (see :mod:`repro.fleet.ring`), runs a full single-process plan
service (cache tiers, single-flight, worker pool, deadline fallback), and
speaks wire protocol v2 over TCP.  Shards never talk to each other — the
frontend routes, replicates and aggregates — which keeps every shard
failure mode local.

Two run modes, same server class:

* **thread** — the shard lives in the calling process behind a
  ``ThreadingTCPServer``; used by tests and by small single-machine fleets
  where process isolation is not worth the memory duplication;
* **process** — :func:`run_shard` is spawned as a separate OS process (the
  production topology from the ISSUE): its cache, worker pool, metrics and
  tracer are fully isolated, and the actual bound port travels back over a
  pipe so ephemeral ports work.

The supervisor starts N shards with per-shard disk-cache directories
(``<cache_dir>/shard-<name>``) and stops them by protocol (a ``shutdown``
frame drains the shard's in-flight jobs before the ack), falling back to
termination only when a process stops responding.
"""

from __future__ import annotations

import multiprocessing
import socket
import socketserver
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.serialize import plan_from_dict, plan_to_dict
from ..obs.tracing import tracer
from ..service.cache import PlanCache
from ..service.server import request_from_doc, response_to_doc
from ..service.service import PlanService
from .ring import HashRing
from .wire import (
    FrameError,
    FrameTooLarge,
    MAX_REQUEST_FRAME_BYTES,
    negotiate,
    recv_frame,
    send_frame,
)

#: ops a shard answers; the frontend speaks exactly this set
SHARD_OPS = ("hello", "ping", "plan", "cache_put", "stats", "trace",
             "shutdown")


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a loop of v2 frames until EOF or shutdown."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        shard: "ShardServer" = self.server.shard  # type: ignore[attr-defined]
        sock = self.request
        while True:
            try:
                doc = recv_frame(sock, max_bytes=MAX_REQUEST_FRAME_BYTES)
            except FrameTooLarge as exc:
                try:
                    send_frame(sock, {
                        "ok": False, "error": "request too large",
                        "limit_bytes": exc.limit, "got_bytes": exc.declared,
                    })
                except OSError:
                    pass
                return  # stream is desynchronized past a refused frame
            except (FrameError, OSError):
                return
            if doc is None:
                return
            reply, stop = shard.handle_doc(doc)
            try:
                send_frame(sock, reply)
            except OSError:
                return
            if stop:
                shard.request_stop()
                return


class _ShardTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    block_on_close = False


class ShardServer:
    """A plan service behind a threaded TCP server speaking wire v2."""

    def __init__(
        self,
        name: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        capacity: int = 128,
        workers: Optional[int] = None,
        fallback_backend: str = "greedy",
        trace: bool = False,
    ):
        self.name = str(name)
        self.service = PlanService(
            cache=PlanCache(capacity=capacity, disk_dir=cache_dir),
            workers=workers,
            fallback_backend=fallback_backend,
        )
        if trace:
            tracer.enable()
        self._server = _ShardTCPServer((host, port), _ShardRequestHandler)
        self._server.shard = self  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def handle_doc(self, doc: Dict) -> Tuple[Dict, bool]:
        """Answer one frame; returns ``(reply, stop_serving)``."""
        op = doc.get("op", "plan")
        request_id = doc.get("id")
        stop = False
        try:
            if op == "hello":
                reply = negotiate(doc, role="shard", server=self.name)
            elif op == "ping":
                reply = {"ok": True, "shard": self.name}
            elif op == "plan":
                reply = self._handle_plan(doc)
            elif op == "cache_put":
                reply = self._handle_cache_put(doc)
            elif op == "stats":
                reply = {"ok": True, "shard": self.name,
                         "stats": self.service.snapshot()}
            elif op == "trace":
                spans = [dict(span.as_dict(), process=f"shard-{self.name}")
                         for span in tracer.drain()]
                reply = {"ok": True, "shard": self.name, "spans": spans}
            elif op == "shutdown":
                pending = self.service.pending_jobs()
                self.service.drain()
                reply = {"ok": True, "op": "shutdown", "shard": self.name,
                         "drained_jobs": pending}
                stop = True
            else:
                reply = {"ok": False, "shard": self.name,
                         "error": f"unknown op {op!r}",
                         "known_ops": list(SHARD_OPS)}
        except Exception as exc:  # one bad request must not kill the shard
            reply = {"ok": False, "shard": self.name, "error": str(exc)}
        if request_id is not None:
            reply.setdefault("id", request_id)
        return reply, stop

    def _handle_plan(self, doc: Dict) -> Dict:
        deadline_ms = doc.get("deadline_ms")
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        request = request_from_doc(doc)
        response = self.service.plan(
            request, deadline_s=deadline_s, trace_id=doc.get("trace_id"))
        reply = response_to_doc(response)
        reply["shard"] = self.name
        if doc.get("include_plan"):
            reply["plan"] = plan_to_dict(response.planned)
        return reply

    def _handle_cache_put(self, doc: Dict) -> Dict:
        """Warm-replication receiver: install a peer-planned cache entry."""
        fingerprint = doc.get("fingerprint")
        plan_doc = doc.get("plan")
        if not fingerprint or not isinstance(plan_doc, dict):
            raise ValueError("cache_put needs 'fingerprint' and 'plan'")
        planned = plan_from_dict(plan_doc)
        self.service.cache.put(fingerprint, planned)
        return {"ok": True, "shard": self.name, "stored": True,
                "fingerprint": fingerprint}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving connections until :meth:`stop` (or a shutdown op)."""
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()
            self.service.close()

    def start_background(self) -> None:
        """Serve from a daemon thread (the supervisor's thread mode)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name=f"shard-{self.name}", daemon=True)
        self._serve_thread.start()

    def request_stop(self) -> None:
        """Stop serving soon; safe to call from a handler thread."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def stop(self, timeout: float = 10.0) -> None:
        self.request_stop()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)


def run_shard(config: Dict, port_conn) -> None:
    """Process entrypoint: build a shard, report its port, serve forever.

    ``config`` is a plain dict of primitives so the function works under
    every multiprocessing start method (spawn pickles it).
    """
    server = ShardServer(
        config["name"],
        host=config.get("host", "127.0.0.1"),
        port=config.get("port", 0),
        cache_dir=config.get("cache_dir"),
        capacity=config.get("capacity", 128),
        workers=config.get("workers"),
        fallback_backend=config.get("fallback_backend", "greedy"),
        trace=config.get("trace", False),
    )
    port_conn.send(server.port)
    port_conn.close()
    server.serve_forever()


@dataclass
class ShardHandle:
    """Where a running shard listens, plus how to stop it."""

    name: str
    host: str
    port: int
    mode: str  # "thread" | "process"
    server: Optional[ShardServer] = field(default=None, repr=False)
    process: Optional[multiprocessing.process.BaseProcess] = field(
        default=None, repr=False)

    def stop(self, timeout: float = 10.0) -> None:
        if self.mode == "thread" and self.server is not None:
            self.server.stop(timeout)
            return
        if self.process is None:
            return
        try:
            self._send_shutdown(timeout)
        except OSError:
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # protocol failed; last resort
            self.process.terminate()
            self.process.join(timeout)

    def _send_shutdown(self, timeout: float) -> None:
        with socket.create_connection((self.host, self.port),
                                      timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_frame(sock, {"op": "shutdown"})
            recv_frame(sock)


class ShardSupervisor:
    """Start, name and stop a fleet's shard set.

    Shard names are ``"0" .. "N-1"`` — the same names every ring built via
    :meth:`ring` uses, so any process that knows the shard count routes
    identically.  Each shard gets its own disk-cache directory under
    ``cache_dir`` (``shard-0/``, ``shard-1/``, ...): the content-addressed
    cache is *sharded*, not shared, which is what makes cache capacity
    scale with the fleet.
    """

    def __init__(
        self,
        count: int,
        *,
        cache_dir=None,
        mode: str = "thread",
        host: str = "127.0.0.1",
        capacity: int = 128,
        workers: Optional[int] = None,
        fallback_backend: str = "greedy",
        trace: bool = False,
    ):
        if count <= 0:
            raise ValueError("a fleet needs at least one shard")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown shard mode {mode!r}")
        self.count = count
        self.mode = mode
        self.host = host
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.capacity = capacity
        self.workers = workers
        self.fallback_backend = fallback_backend
        self.trace = trace
        self.handles: List[ShardHandle] = []

    def _shard_cache_dir(self, name: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return str(self.cache_dir / f"shard-{name}")

    def start(self) -> List[ShardHandle]:
        if self.handles:
            raise RuntimeError("supervisor already started")
        try:
            for index in range(self.count):
                self.handles.append(self._start_one(str(index)))
        except BaseException:
            self.stop()
            raise
        return self.handles

    def _start_one(self, name: str) -> ShardHandle:
        if self.mode == "thread":
            server = ShardServer(
                name, host=self.host, cache_dir=self._shard_cache_dir(name),
                capacity=self.capacity, workers=self.workers,
                fallback_backend=self.fallback_backend, trace=self.trace)
            server.start_background()
            return ShardHandle(name, server.host, server.port, "thread",
                               server=server)
        # process mode: spawn avoids inheriting this process's thread/lock
        # state (fork while worker pools run is a deadlock lottery)
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        config = {
            "name": name,
            "host": self.host,
            "cache_dir": self._shard_cache_dir(name),
            "capacity": self.capacity,
            "workers": self.workers,
            "fallback_backend": self.fallback_backend,
            "trace": self.trace,
        }
        process = ctx.Process(target=run_shard, args=(config, child_conn),
                              name=f"repro-shard-{name}", daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(60.0):
            process.terminate()
            raise RuntimeError(f"shard {name} never reported its port")
        port = parent_conn.recv()
        parent_conn.close()
        return ShardHandle(name, self.host, port, "process", process=process)

    def stop(self, timeout: float = 10.0) -> None:
        for handle in self.handles:
            handle.stop(timeout)
        self.handles = []

    def ring(self, vnodes: Optional[int] = None) -> HashRing:
        """The routing ring over this supervisor's shard names."""
        names = [handle.name for handle in self.handles] or [
            str(index) for index in range(self.count)]
        return HashRing(names, **({"vnodes": vnodes} if vnodes else {}))

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
