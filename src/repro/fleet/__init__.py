"""Fleet serving: sharded, batched, deadline-aware plan service.

The single-process :mod:`repro.service` answers one JSON-lines request at a
time from one process's cache.  This package is the horizontal layer on top
of it — the ROADMAP's "millions of users" item:

* :mod:`~repro.fleet.wire` — versioned wire protocol **v2**
  (length-prefixed JSON frames over TCP, hello/negotiation, a
  first-byte-sniffing compat shim for the v1 JSON-lines protocol);
* :mod:`~repro.fleet.ring` — consistent-hash sharding of the
  content-addressed plan cache (virtual nodes, minimal movement on shard
  join/leave, deterministic across processes);
* :mod:`~repro.fleet.shard` — one :class:`~repro.service.service.PlanService`
  per shard behind a threaded TCP server, runnable in-process (tests) or as
  a separate OS process (production topology), plus the supervisor that
  starts/stops a set of them;
* :mod:`~repro.fleet.admission` — deadline-aware admission control: requests
  whose deadline cannot be met are shed immediately
  (``{"ok": false, "error": "shed"}``) instead of failing slowly, and the
  frontend degrades to the fallback backend under queue pressure;
* :mod:`~repro.fleet.frontend` — the asyncio frontend: batched plan API
  (many specs per request, fanned out concurrently), earliest-deadline-first
  dispatch queue, warm-cache replication to all peers, cross-shard stats and
  trace aggregation;
* :mod:`~repro.fleet.client` — the blocking client the CLI
  (``repro fleet-stats``, ``repro warm --port``) and tests drive;
* :mod:`~repro.fleet.retry` — the fleet-wide retry policy (exponential
  backoff, deterministic jitter, deadline-bounded) shared by the
  frontend's pools, the dispatcher's failover loop and the client;
* :mod:`~repro.fleet.health` — K-consecutive-failure health marking with
  ring membership consequences (an unhealthy shard leaves the ring, a
  recovered one rejoins at its old positions);
* :mod:`~repro.fleet.chaos` — the deterministic fault-injection harness
  (``serve --chaos`` / ``REPRO_CHAOS``): seeded frame drop/delay/corrupt
  plus scripted shard kill/freeze ops.

See docs/serving.md ("Fleet mode" and "Fault tolerance") for the topology
diagram, the wire protocol v2 spec, the shed/degrade semantics and the
failover/chaos story.
"""

from .admission import AdmissionController, Decision
from .chaos import ChaosController, ChaosSpec, ChaosSpecError
from .client import FleetClient
from .frontend import FleetFrontend
from .health import HealthMonitor, ShardHealth
from .retry import (DEFAULT_RETRY, NO_RETRY, RetryPolicy,
                    RetryPolicyError, run_with_retries)
from .ring import HashRing
from .shard import ShardHandle, ShardServer, ShardSupervisor
from .wire import (
    PROTOCOL_VERSION,
    FrameError,
    FrameTooLarge,
    hello_doc,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)

__all__ = [
    "AdmissionController",
    "ChaosController",
    "ChaosSpec",
    "ChaosSpecError",
    "DEFAULT_RETRY",
    "Decision",
    "FleetClient",
    "FleetFrontend",
    "FrameError",
    "FrameTooLarge",
    "HashRing",
    "HealthMonitor",
    "NO_RETRY",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "RetryPolicyError",
    "ShardHandle",
    "ShardHealth",
    "ShardServer",
    "ShardSupervisor",
    "hello_doc",
    "read_frame",
    "recv_frame",
    "run_with_retries",
    "send_frame",
    "write_frame",
]
