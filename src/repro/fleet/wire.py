"""Wire protocol v2: length-prefixed JSON frames, with negotiation.

A **frame** is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (one object per frame).  Compared with the v1
JSON-lines protocol this adds three things the fleet needs:

* an explicit, checkable size bound *before* the body is read — an
  oversized request is rejected with a structured error instead of an
  unbounded ``readline``;
* binary-safe framing: a frame can carry embedded newlines (serialized
  plans, merged trace documents) without escaping games;
* **negotiation**: the first frame a client sends is a hello
  (:func:`hello_doc`); the server answers with its own protocol version
  and role, so a future v3 can be introduced without flag-day upgrades.

**v1 compat shim** — v1 clients send raw JSON text, so their first byte is
``{`` (0x7B).  No v2 frame starts with that byte: 0x7B as the leading
length-prefix byte would declare a >2 GB frame, far beyond any cap this
module accepts.  Servers therefore sniff the first byte
(:func:`looks_like_v1`) and fall back to newline-delimited JSON on such
connections — the existing stdin/stdout loop keeps working over TCP,
unchanged.

Both blocking-socket (``send_frame``/``recv_frame``) and asyncio
(``write_frame``/``read_frame``) helpers live here so the shard servers,
the frontend and the clients all speak from one implementation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from typing import Any, Dict, Optional

#: the protocol this module implements; carried in every hello
PROTOCOL_VERSION = 2

#: inbound request frames larger than this are rejected with
#: ``{"ok": false, "error": "request too large"}`` — mirrors the v1 line
#: cap in :data:`repro.service.server.MAX_REQUEST_BYTES`
MAX_REQUEST_FRAME_BYTES = 1 << 20

#: response frames can carry merged traces and serialized plans; clients
#: accept up to this much before declaring the peer broken
MAX_RESPONSE_FRAME_BYTES = 64 << 20

_LENGTH = struct.Struct(">I")


class FrameError(ValueError):
    """The byte stream does not parse as a protocol-v2 frame."""


class FrameTooLarge(FrameError):
    """A frame declared a length beyond the caller's cap."""

    def __init__(self, declared: int, limit: int):
        super().__init__(f"frame of {declared} bytes exceeds limit {limit}")
        self.declared = declared
        self.limit = limit


def hello_doc(role: str = "client") -> Dict[str, Any]:
    """The negotiation frame a connecting peer sends first."""
    return {"op": "hello", "proto": PROTOCOL_VERSION, "role": role}


def hello_reply(role: str, server: str) -> Dict[str, Any]:
    """A server's answer to a hello: its protocol version and identity."""
    return {"ok": True, "proto": PROTOCOL_VERSION, "role": role,
            "server": server}


def negotiate(client_hello: Dict[str, Any], role: str,
              server: str) -> Dict[str, Any]:
    """Validate a client hello; an unsupported version gets a clear error.

    A client speaking an *older* protocol would never reach this function
    (v1 is sniffed off the first byte), so anything other than exactly
    :data:`PROTOCOL_VERSION` is from the future and refused by version
    number — the client can then downgrade.
    """
    proto = client_hello.get("proto")
    if proto != PROTOCOL_VERSION:
        return {"ok": False, "error": "unsupported protocol",
                "requested": proto, "proto": PROTOCOL_VERSION}
    return hello_reply(role, server)


def encode_frame(doc: Dict[str, Any]) -> bytes:
    """One JSON object as a length-prefixed frame."""
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; the payload must be a JSON object."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"bad frame payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise FrameError("frame payload must be a JSON object")
    return doc


def looks_like_v1(first_byte: bytes) -> bool:
    """True when a connection's first byte marks the v1 JSON-lines protocol."""
    return first_byte in (b"{", b" ", b"\t", b"\n", b"\r")


# ----------------------------------------------------------------------
# blocking sockets (shard servers, the sync client)
# ----------------------------------------------------------------------

def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _perturbed(
    data: bytes, chaos
) -> "tuple[Optional[bytes], float, tuple[str, ...]]":
    """Run one outbound frame through the active chaos controller, if any.

    ``chaos`` scopes the faults: an explicit controller (one shard's),
    ``None`` for the process-wide one (``REPRO_CHAOS`` / ``serve
    --chaos``), or ``False`` to bypass chaos entirely.  The returned
    ``tags`` name the injected faults so callers can attribute the
    latency they are about to cause.
    """
    if chaos is False:
        return data, 0.0, ()
    if chaos is None:
        from .chaos import active

        chaos = active()
    if chaos is None:
        return data, 0.0, ()
    return chaos.perturb_tagged(data)


def _record_chaos(doc: Dict[str, Any], tags: "tuple[str, ...]",
                  telemetry=None) -> None:
    """Durably note an injected fault so SLO burn can be attributed.

    The event carries the outbound doc's trace id (requests and replies
    both echo it), which is how :func:`repro.obs.telemetry.summarize`
    separates chaos-injected latency from organic latency.  ``telemetry``
    is an explicit writer (a thread-mode shard's own store); ``None``
    falls back to the process-wide install.
    """
    if not tags:
        return
    t = telemetry
    if t is None:
        from ..obs import telemetry as telemetry_store

        t = telemetry_store.active()
    if t is None or not t.enabled:
        return
    t.record({
        "type": "chaos",
        "faults": list(tags),
        "trace_id": doc.get("trace_id"),
        "op": doc.get("op"),
    })


def send_frame(sock: socket.socket, doc: Dict[str, Any],
               chaos=None, telemetry=None) -> None:
    data, delay_s, tags = _perturbed(encode_frame(doc), chaos)
    _record_chaos(doc, tags, telemetry)
    if delay_s:
        time.sleep(delay_s)
    if data is None:  # chaos dropped the frame; the peer sees a stall
        return
    sock.sendall(data)


def recv_frame(
    sock: socket.socket,
    max_bytes: int = MAX_RESPONSE_FRAME_BYTES,
    prefix: bytes = b"",
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``prefix`` holds bytes already sniffed off the stream.

    Returns ``None`` on a clean EOF before any frame bytes.  Raises
    :class:`FrameTooLarge` *before* reading the body when the declared
    length exceeds ``max_bytes``.
    """
    header = prefix
    while len(header) < _LENGTH.size:
        chunk = sock.recv(_LENGTH.size - len(header))
        if not chunk:
            if not header:
                return None
            raise FrameError("connection closed mid-frame")
        header += chunk
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise FrameTooLarge(length, max_bytes)
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise FrameError("connection closed mid-frame")
    return decode_body(body)


# ----------------------------------------------------------------------
# asyncio streams (the frontend and its shard links)
# ----------------------------------------------------------------------

async def write_frame(writer: asyncio.StreamWriter, doc: Dict[str, Any],
                      chaos=None, telemetry=None) -> None:
    data, delay_s, tags = _perturbed(encode_frame(doc), chaos)
    _record_chaos(doc, tags, telemetry)
    if delay_s:
        await asyncio.sleep(delay_s)
    if data is None:  # chaos dropped the frame; the peer sees a stall
        return
    writer.write(data)
    await writer.drain()


async def read_frame(
    reader: asyncio.StreamReader,
    max_bytes: int = MAX_RESPONSE_FRAME_BYTES,
    prefix: bytes = b"",
) -> Optional[Dict[str, Any]]:
    """Async twin of :func:`recv_frame`; None on clean EOF."""
    need = _LENGTH.size - len(prefix)
    try:
        header = prefix + (await reader.readexactly(need) if need > 0 else b"")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not prefix:
            return None
        raise FrameError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header[:_LENGTH.size])
    if length > max_bytes:
        raise FrameTooLarge(length, max_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return decode_body(body)
