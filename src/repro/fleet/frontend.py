"""The fleet frontend: one asyncio process that routes for all shards.

Request path for one batch item::

    parse ─▶ quick shed? ─▶ fingerprint ─▶ admission ─▶ EDF queue ─▶
        dispatcher ─▶ owning shard (consistent hash) ─▶ response

* **Batched plan API** — ``{"op": "plan_batch", "items": [...]}`` fans the
  items out concurrently; each item is routed, queued and answered
  independently, and the batch response carries per-item status in order.
* **Deadline-aware queueing** — admitted items wait in an
  earliest-deadline-first priority queue drained by a fixed set of
  dispatcher tasks (one per shard link, so the queue only holds what the
  shards cannot absorb).  Items are checked against their deadline twice:
  at admission (:mod:`repro.fleet.admission` — the fast shed) and again at
  dequeue (late shed), so a queue stampede cannot make the fleet burn
  planner time on requests that already expired.
* **Degradation under pressure** — past the admission controller's
  degrade threshold an item is forwarded with a zero deadline: the owning
  shard answers from cache if it can, otherwise with its fallback backend
  (``degraded=True``), and the exact plan still lands in the shard's cache
  in the background.
* **Warm replication** — ``{"op": "warm", ...}`` plans each item on its
  owning shard *with the serialized plan in the response*, then pushes
  ``cache_put`` frames to every peer shard, so one ``repro warm --port``
  run leaves the whole fleet hot (a shard join re-routes ~1/N of the
  keyspace; replicated entries mean those keys stay warm).
* **Cross-shard observability** — the frontend stamps every item with a
  trace id that the owning shard adopts (``PlanService.plan(...,
  trace_id=...)``), aggregates per-shard stats under shard-labelled
  Prometheus series, and merges shard span dumps with its own into one
  Chrome trace (``{"op": "trace"}``).
* **Fault tolerance** — a heartbeat loop pings every shard on a dedicated
  connection and feeds :class:`~repro.fleet.health.HealthMonitor`: after
  K consecutive failures a shard leaves the consistent-hash ring (its
  keys reroute to survivors) and rejoins on the first success.  Shard
  links retry transient transport errors with the shared
  :class:`~repro.fleet.retry.RetryPolicy` (exponential backoff + jitter,
  never past the item's deadline), and the dispatcher fails an item over
  along the ring's successor order when its owner stays unreachable —
  plans are deterministic, so a failover replan is bit-identical to the
  owner's answer.  See docs/serving.md ("Fault tolerance").

The frontend runs its event loop in a dedicated thread so the blocking
CLI (and tests) can drive it; v1 JSON-lines clients are supported both on
stdin (:meth:`FleetFrontend.serve_stdin`) and over TCP (first-byte sniff,
see :mod:`repro.fleet.wire`).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from ..obs.logging import get_logger
from ..obs import telemetry as telemetry_store
from ..obs.registry import MetricsRegistry
from ..obs.slo import SLOTracker
from ..obs.tracing import new_trace_id, tracer
from ..service.server import (
    KNOWN_OPS,
    MAX_REQUEST_BYTES,
    is_shutdown_ack,
    request_from_doc,
)
from .admission import ADMIT, DEGRADE, AdmissionController, Decision
from .health import HealthMonitor
from .retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    TRANSIENT_EXCEPTIONS,
    RetryPolicy,
    classify,
)
from .ring import HashRing
from .wire import (
    FrameError,
    FrameTooLarge,
    MAX_REQUEST_FRAME_BYTES,
    MAX_RESPONSE_FRAME_BYTES,
    looks_like_v1,
    negotiate,
    read_frame,
    write_frame,
)

log = get_logger("repro.fleet.frontend")

#: ops the frontend answers (v2 frames; v1 lines accept the overlap with
#: the single-process protocol: plan / stats / shutdown, plus plan_batch)
FRONTEND_OPS = ("hello", "ping", "plan", "plan_batch", "warm", "stats",
                "fleet_stats", "trace", "shutdown")

#: every fixed-name counter the frontend increments; enumerated for docs
#: and tests (the per-reason ``retries_<reason>`` / ``failover_<reason>``
#: counters appear dynamically, suffixed by :func:`repro.fleet.retry.classify`)
FLEET_COUNTER_NAMES = (
    "items",
    "batches",
    "admitted",
    "degraded_pressure",
    "shed_deadline",
    "shed_queue_full",
    "shed_late",
    "routed",
    "route_errors",
    "warm_items",
    "replicated_puts",
    "v1_lines",
    "retries_total",
    "failover_total",
    "dispatch_timeouts",
    "heartbeats",
    "heartbeat_failures",
    "shard_marked_down",
    "shard_marked_up",
)

#: extra headroom past an item's deadline before a dispatched request is
#: abandoned: the owning shard enforces the deadline itself (fallback
#: plans), so the frontend only cuts genuinely wedged shards loose
DISPATCH_GRACE_S = 0.25

#: one batch may carry at most this many specs
MAX_BATCH_ITEMS = 1024


class ShardUnavailable(RuntimeError):
    """The owning shard could not be reached (even after a reconnect)."""


class _ShardLink:
    """One persistent v2 connection to a shard."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    async def request(self, doc: Dict) -> Dict:
        await write_frame(self.writer, doc)
        reply = await read_frame(self.reader, MAX_RESPONSE_FRAME_BYTES)
        if reply is None:
            raise FrameError("shard closed the connection")
        return reply

    def close(self) -> None:
        try:
            self.writer.close()
        except RuntimeError:  # loop already closing
            pass


class _ShardPool:
    """A small checkout pool of links to one shard, retrying per policy.

    Transport failures (reset, refused dial, frame desync, stalled read)
    tear the link down and retry on a *fresh* connection with the shared
    backoff policy — never past the caller's ``deadline_abs``.  Anything
    still failing after the policy's budget surfaces as
    :class:`ShardUnavailable`, which is the dispatcher's cue to fail the
    item over to the next shard on the ring.
    """

    def __init__(self, name: str, host: str, port: int, size: int = 2,
                 retry: RetryPolicy = DEFAULT_RETRY,
                 metrics: Optional[MetricsRegistry] = None):
        self.name = name
        self.host = host
        self.port = port
        self.size = size
        self.retry = retry
        self.metrics = metrics
        self._slots: "asyncio.Queue[Optional[_ShardLink]]" = asyncio.Queue()
        for _ in range(size):
            self._slots.put_nowait(None)  # links are dialed lazily

    async def _connect(self) -> _ShardLink:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        link = _ShardLink(reader, writer)
        hello = await link.request(
            {"op": "hello", "proto": 2, "role": "frontend"})
        if not hello.get("ok"):
            link.close()
            raise ShardUnavailable(
                f"shard {self.name}: handshake refused: {hello.get('error')}")
        return link

    def _count_retry(self, exc: Optional[BaseException]) -> None:
        if self.metrics is None:
            return
        self.metrics.counter("retries_total").inc()
        if exc is not None:
            self.metrics.counter(f"retries_{classify(exc)}").inc()

    async def request(self, doc: Dict, *,
                      deadline_abs: Optional[float] = None,
                      retry: bool = True) -> Dict:
        policy = self.retry if retry else NO_RETRY
        loop = asyncio.get_running_loop()
        slot = await self._slots.get()
        link: Optional[_ShardLink] = slot
        last_exc: Optional[BaseException] = None
        try:
            for attempt in range(policy.max_attempts):
                if attempt:
                    delay = policy.delay(attempt)
                    if deadline_abs is not None and \
                            loop.time() + delay > deadline_abs:
                        break  # a retry would overrun the deadline
                    self._count_retry(last_exc)
                    await asyncio.sleep(delay)
                try:
                    if link is None:
                        link = await self._connect()
                    return await link.request(doc)
                except TRANSIENT_EXCEPTIONS as exc:
                    if link is not None:
                        link.close()
                        link = None
                    last_exc = exc
            raise ShardUnavailable(
                f"shard {self.name}: {last_exc}") from last_exc
        except asyncio.CancelledError:
            # cancelled mid-conversation: the link may be desynchronized,
            # so never return it to the pool
            if link is not None:
                link.close()
                link = None
            raise
        finally:
            self._slots.put_nowait(link)

    async def close(self) -> None:
        for _ in range(self.size):
            try:
                link = self._slots.get_nowait()
            except asyncio.QueueEmpty:
                break
            if link is not None:
                link.close()


class _WorkItem:
    """One admitted plan item waiting for a dispatcher."""

    __slots__ = ("doc", "shard", "deadline_abs", "future", "fingerprint")

    def __init__(self, doc: Dict, shard: str, deadline_abs: Optional[float],
                 future: "asyncio.Future[Dict]", fingerprint: str):
        self.doc = doc
        self.shard = shard
        self.deadline_abs = deadline_abs
        self.future = future
        self.fingerprint = fingerprint


class FleetFrontend:
    """Asyncio fan-out frontend over a set of running shards."""

    def __init__(
        self,
        shards: Sequence,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        admission: Optional[AdmissionController] = None,
        links_per_shard: int = 2,
        network_builder=None,
        ring: Optional[HashRing] = None,
        name: str = "frontend",
        retry: Optional[RetryPolicy] = None,
        heartbeat_interval_s: float = 1.0,
        heartbeat_timeout_s: float = 1.0,
        failure_threshold: int = 3,
        slo=None,
        telemetry=None,
    ):
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        self.name = name
        self._shard_addrs = [(str(s.name), s.host, s.port) for s in shards]
        self.ring = ring or HashRing([addr[0] for addr in self._shard_addrs])
        self.metrics = metrics or MetricsRegistry()
        self.admission = admission or AdmissionController()
        #: frontend-level SLO accounting (spec string, config, tracker, None)
        self.slo = slo if isinstance(slo, SLOTracker) else SLOTracker(slo)
        #: durable telemetry: explicit writer or the process-wide install
        self.telemetry = telemetry if telemetry is not None \
            else telemetry_store.active()
        self.links_per_shard = links_per_shard
        self.retry = retry or DEFAULT_RETRY
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.health = HealthMonitor(
            [addr[0] for addr in self._shard_addrs],
            ring=self.ring,
            metrics=self.metrics,
            failure_threshold=failure_threshold,
            on_down=lambda shard, reason: log.warning(
                "shard marked down", extra={
                    "event": "shard_down", "shard": shard, "reason": reason}),
            on_up=lambda shard: log.info(
                "shard recovered, rejoined the ring",
                extra={"event": "shard_up", "shard": shard}),
        )
        self._network_builder = network_builder
        self._host = host
        self._requested_port = port
        self.host: Optional[str] = None
        self.port: Optional[int] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopping = False
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetFrontend":
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="fleet-frontend", daemon=True)
        self._thread.start()
        self._started.wait(60.0)
        if self._startup_error is not None:
            raise RuntimeError("frontend failed to start") \
                from self._startup_error
        if self.port is None:
            raise RuntimeError("frontend did not come up within 60 s")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "FleetFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()
            self._startup_error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._queue: "asyncio.PriorityQueue[Tuple[float, int, _WorkItem]]" = (
            asyncio.PriorityQueue())
        self._pools = {
            name: _ShardPool(name, host, port, self.links_per_shard,
                             retry=self.retry, metrics=self.metrics)
            for name, host, port in self._shard_addrs
        }
        server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port,
            limit=MAX_REQUEST_FRAME_BYTES + 1024)
        self.host, self.port = server.sockets[0].getsockname()[:2]
        dispatchers = [
            asyncio.ensure_future(self._dispatcher())
            for _ in range(max(2, self.links_per_shard * len(self._pools)))
        ]
        if self.heartbeat_interval_s > 0:
            dispatchers.append(asyncio.ensure_future(self._heartbeat_loop()))
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in dispatchers:
                task.cancel()
            await asyncio.gather(*dispatchers, return_exceptions=True)
            for pool in self._pools.values():
                await pool.close()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.read(1)
            if not first:
                return
            if looks_like_v1(first):
                await self._serve_v1_connection(first, reader, writer)
            else:
                await self._serve_v2_connection(first, reader, writer)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            return  # loop teardown cancels idle connection handlers
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _serve_v2_connection(self, prefix: bytes,
                                   reader: asyncio.StreamReader,
                                   writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                doc = await read_frame(reader, MAX_REQUEST_FRAME_BYTES,
                                       prefix=prefix)
            except FrameTooLarge as exc:
                await write_frame(writer, {
                    "ok": False, "error": "request too large",
                    "limit_bytes": exc.limit, "got_bytes": exc.declared})
                return  # stream desynchronized past a refused frame
            except FrameError:
                return
            prefix = b""
            if doc is None:
                return
            reply, stop = await self._handle_op(doc)
            await write_frame(writer, reply)
            if stop:
                self._stop_event.set()
                return

    async def _serve_v1_connection(self, first: bytes,
                                   reader: asyncio.StreamReader,
                                   writer: asyncio.StreamWriter) -> None:
        """The v1 JSON-lines compat shim, over TCP."""
        pending = first
        while True:
            try:
                rest = await reader.readline()
            except ValueError:  # line beyond the stream limit
                writer.write((json.dumps({
                    "ok": False, "error": "request too large",
                    "limit_bytes": MAX_REQUEST_BYTES}) + "\n").encode())
                await writer.drain()
                return
            line = (pending + rest).decode("utf-8", errors="replace")
            pending = b""
            if not line.strip():
                if not rest:
                    return  # EOF
                continue
            result = await self._handle_v1_line(line)
            writer.write((json.dumps(result) + "\n").encode())
            await writer.drain()
            if is_shutdown_ack(result):
                self._stop_event.set()
                return
            if not rest:
                return  # EOF after an unterminated final line

    async def _handle_v1_line(self, line: str) -> Dict:
        """One v1 JSON-lines request routed through the fleet."""
        self.metrics.counter("v1_lines").inc()
        if len(line) > MAX_REQUEST_BYTES:
            return {"ok": False, "error": "request too large",
                    "limit_bytes": MAX_REQUEST_BYTES, "got_bytes": len(line)}
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(doc, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        reply, _ = await self._handle_op(doc)
        return reply

    def serve_stdin(self, lines: Iterable[str], out: TextIO) -> int:
        """Drive the fleet from the v1 stdin/stdout loop (CLI compat).

        Runs on the caller's thread; each line is handed to the event loop
        and the response written back as one JSON line, exactly like the
        single-process ``repro serve``.
        """
        if self._loop is None:
            raise RuntimeError("frontend not started")
        served = 0
        for line in lines:
            future = asyncio.run_coroutine_threadsafe(
                self._handle_v1_line(line), self._loop)
            result = future.result()
            out.write(json.dumps(result) + "\n")
            out.flush()
            served += 1
            if is_shutdown_ack(result):
                break
        return served

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _handle_op(self, doc: Dict) -> Tuple[Dict, bool]:
        op = doc.get("op", "plan")
        request_id = doc.get("id")
        stop = False
        try:
            if op == "hello":
                reply = negotiate(doc, role="frontend", server=self.name)
            elif op == "ping":
                reply = {"ok": True, "server": self.name,
                         "shards": [n for n, _, _ in self._shard_addrs]}
            elif op == "plan":
                reply = await self._serve_item(doc)
            elif op == "plan_batch":
                reply = await self._serve_batch(doc)
            elif op == "warm":
                reply = await self._serve_warm(doc)
            elif op in ("stats", "fleet_stats"):
                reply = await self._fleet_stats()
            elif op == "trace":
                reply = await self._fleet_trace()
            elif op == "shutdown":
                reply = await self._shutdown_shards()
                stop = True
            else:
                reply = {"ok": False, "error": f"unknown op {op!r}",
                         "known_ops": sorted(set(FRONTEND_OPS) |
                                             set(KNOWN_OPS))}
        except Exception as exc:  # a bad request must not kill the frontend
            reply = {"ok": False, "error": str(exc)}
        if request_id is not None:
            reply.setdefault("id", request_id)
        return reply, stop

    # -- plan items ----------------------------------------------------
    def _parse_item(self, doc: Dict) -> str:
        """Validate a plan document and return its fingerprint (blocking)."""
        request = request_from_doc(doc)
        return request.fingerprint(self._network_builder)

    def _shed_doc(self, decision: Decision, start_ns: int,
                  fingerprint: Optional[str] = None) -> Dict:
        latency_ms = (time.perf_counter_ns() - start_ns) / 1e6
        doc = {
            "ok": False,
            "error": "shed",
            "reason": decision.reason,
            "est_cost_ms": round(decision.est_cost_s * 1e3, 3),
            "latency_ms": round(latency_ms, 3),
        }
        if fingerprint:
            doc["fingerprint"] = fingerprint
        return doc

    def _account_item(
        self,
        doc: Dict,
        reply: Dict,
        start_ns: int,
        *,
        fingerprint: Optional[str] = None,
        trace_id: Optional[str] = None,
        action: Optional[str] = None,
    ) -> Dict:
        """SLO + durable-telemetry accounting for one served item.

        Every ``_serve_item`` exit (shed, error, dispatched) funnels
        through here so the request record and the SLO classification
        agree about what happened.
        """
        latency_s = (time.perf_counter_ns() - start_ns) / 1e9
        deadline_ms = doc.get("deadline_ms")
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        ok = bool(reply.get("ok"))
        deadline_met = (ok and latency_s <= deadline_s) \
            if deadline_s is not None else None
        self.slo.observe(latency_s, ok=ok, deadline_met=deadline_met)
        t = self.telemetry
        if t is not None and t.enabled:
            if not ok:
                outcome = "shed" if reply.get("error") == "shed" else "error"
            elif reply.get("degraded"):
                outcome = "degraded"
            else:
                outcome = "ok"
            event = {
                "type": "request",
                "component": "frontend",
                "fingerprint": fingerprint or reply.get("fingerprint"),
                "model": doc.get("model"),
                "scheme": doc.get("scheme"),
                "backend": doc.get("backend"),
                "shard": reply.get("shard"),
                "source": reply.get("source"),
                "outcome": outcome,
                "latency_ms": round(latency_s * 1e3, 3),
                "trace_id": trace_id or reply.get("trace_id"),
                "action": action,
            }
            if deadline_s is not None:
                event["deadline_ms"] = round(deadline_s * 1e3, 3)
                event["deadline_met"] = deadline_met
            if not ok:
                event["reason"] = reply.get("reason") or reply.get("error")
            if reply.get("failover_from"):
                event["failover_from"] = reply["failover_from"]
            t.record(event)
        return reply

    async def _serve_item(self, doc: Dict) -> Dict:
        """One plan item: admission → routing → dispatch → response."""
        start_ns = time.perf_counter_ns()
        self.metrics.counter("items").inc()
        deadline_ms = doc.get("deadline_ms")
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None

        # fast path: a deadline below any possible service time is shed
        # before the frontend spends a single model build on it
        quick = self.admission.quick_shed(deadline_s)
        if quick is not None:
            self.metrics.counter("shed_deadline").inc()
            return self._account_item(
                doc, self._shed_doc(quick, start_ns), start_ns,
                action="quick_shed")

        loop = asyncio.get_running_loop()
        try:
            fingerprint = await loop.run_in_executor(
                None, self._parse_item, doc)
        except Exception as exc:
            return self._account_item(
                doc, {"ok": False, "error": str(exc)}, start_ns,
                action="invalid")

        decision = self.admission.decide(
            fingerprint, deadline_s, self._queue.qsize())
        if not decision.admitted:
            self.metrics.counter(
                "shed_queue_full" if "queue" in decision.reason
                else "shed_deadline").inc()
            return self._account_item(
                doc, self._shed_doc(decision, start_ns, fingerprint),
                start_ns, fingerprint=fingerprint, action=decision.action)
        self.metrics.counter("admitted").inc()

        trace_id = doc.get("trace_id") or new_trace_id()
        forwarded = {k: v for k, v in doc.items() if k not in ("op", "id")}
        forwarded["op"] = "plan"
        forwarded["trace_id"] = trace_id
        if decision.action == DEGRADE:
            self.metrics.counter("degraded_pressure").inc()
            forwarded["deadline_ms"] = 0  # cache-now-or-fallback on the shard

        owner = self.ring.owner(fingerprint)
        deadline_abs = (loop.time() + deadline_s
                        if deadline_s is not None else None)
        future: "asyncio.Future[Dict]" = loop.create_future()
        item = _WorkItem(forwarded, owner, deadline_abs, future, fingerprint)
        priority = deadline_abs if deadline_abs is not None else float("inf")
        self._queue.put_nowait((priority, next(self._seq), item))

        reply = await future
        reply.setdefault("shard", owner)
        latency_s = (time.perf_counter_ns() - start_ns) / 1e9
        self.metrics.histogram("item_latency_s").observe(latency_s)
        tracer.record(
            "fleet.item", "fleet",
            start_ns=start_ns, end_ns=time.perf_counter_ns(),
            trace_id=trace_id, shard=owner,
            model=doc.get("model"), action=decision.action,
        )
        return self._account_item(
            doc, reply, start_ns, fingerprint=fingerprint,
            trace_id=trace_id, action=decision.action)

    async def _dispatcher(self) -> None:
        """Drain the EDF queue into the owning shards (with failover)."""
        loop = asyncio.get_running_loop()
        while True:
            _, _, item = await self._queue.get()
            if item.future.cancelled():
                continue
            if (item.deadline_abs is not None
                    and loop.time() > item.deadline_abs):
                self.metrics.counter("shed_late").inc()
                item.future.set_result({
                    "ok": False, "error": "shed",
                    "reason": "deadline expired while queued",
                    "fingerprint": item.fingerprint,
                })
                continue
            reply = await self._dispatch_with_failover(item, loop)
            if not item.future.cancelled():
                item.future.set_result(reply)

    def _failover_order(self, item: _WorkItem) -> List[str]:
        """Shards to try for one item: ring order, healthy ones first.

        The routed owner leads; the ring's clockwise successors follow, so
        failover lands on the shard that *would* own the fingerprint if
        the owner left — the same shard a post-failure ring would route
        to, which keeps failover traffic cache-friendly.  Known-down
        shards sink to the back rather than vanish: when every shard is
        down the item still gets one loud attempt instead of a silent
        drop.
        """
        order = [item.shard] + [s for s in self.ring.successors(
            item.fingerprint) if s != item.shard]
        for name in self._pools:
            if name not in order:  # off-ring (marked down) shards, last
                order.append(name)
        healthy = [s for s in order if self.health.is_up(s)]
        down = [s for s in order if s not in healthy]
        return (healthy + down) if healthy else order

    async def _dispatch_with_failover(self, item: _WorkItem, loop) -> Dict:
        """Try the owner, then fail over along the ring until the deadline."""
        order = self._failover_order(item)
        if order and order[0] != item.shard:
            # the routed owner is known-down: reroute before dialing it
            self.metrics.counter("failover_total").inc()
            self.metrics.counter("failover_shard_down").inc()
        last_error: object = "no shards configured"
        for hop, shard in enumerate(order):
            timeout = None
            if item.deadline_abs is not None:
                remaining = item.deadline_abs - loop.time()
                if hop and remaining <= 0:
                    break  # no budget left for another hop
                timeout = max(remaining, 0.0) + DISPATCH_GRACE_S
            if hop:
                self.metrics.counter("failover_total").inc()
                self.metrics.counter("failover_transport").inc()
            t0 = time.perf_counter()
            try:
                request = self._pools[shard].request(
                    item.doc, deadline_abs=item.deadline_abs)
                reply = await (asyncio.wait_for(request, timeout)
                               if timeout is not None else request)
            except asyncio.TimeoutError:
                # the shard accepted the request but never answered within
                # the deadline (frozen/stalled): the deadline is spent, so
                # shed rather than burn another shard on an expired item
                self.metrics.counter("dispatch_timeouts").inc()
                self.health.record_failure(shard, "timeout")
                return {
                    "ok": False, "error": "shed",
                    "reason": f"deadline expired during dispatch "
                              f"(shard {shard} unresponsive)",
                    "shard": shard, "fingerprint": item.fingerprint,
                }
            except Exception as exc:
                self.metrics.counter("route_errors").inc()
                self.health.record_failure(shard, "request")
                last_error = exc
                continue
            self.metrics.counter("routed").inc()
            self.health.record_success(shard)
            if reply.get("ok"):
                self.admission.observe(
                    item.fingerprint, time.perf_counter() - t0,
                    cache_hit=bool(reply.get("cache_hit")))
            reply.setdefault("shard", shard)
            if hop:
                reply.setdefault("failover_from", item.shard)
            return reply
        return {
            "ok": False,
            "error": f"no healthy shard available: {last_error}",
            "tried": order,
            "fingerprint": item.fingerprint,
        }

    # -- heartbeats ----------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        """Ping every shard each interval; feed the health monitor."""
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            await asyncio.gather(
                *[self._heartbeat_one(name, host, port)
                  for name, host, port in self._shard_addrs],
                return_exceptions=True)

    async def _heartbeat_one(self, name: str, host: str, port: int) -> None:
        """One ping on a dedicated connection (never a pooled link, so a
        pool saturated with long cold plans cannot fake a dead shard)."""
        self.metrics.counter("heartbeats").inc()

        async def ping() -> bool:
            reader, writer = await asyncio.open_connection(host, port)
            try:
                await write_frame(writer, {"op": "ping"})
                reply = await read_frame(reader, MAX_RESPONSE_FRAME_BYTES)
                return bool(reply and reply.get("ok"))
            finally:
                try:
                    writer.close()
                except RuntimeError:
                    pass

        try:
            ok = await asyncio.wait_for(ping(), self.heartbeat_timeout_s)
        except Exception:
            ok = False
        if ok:
            self.health.record_success(name)
        else:
            self.metrics.counter("heartbeat_failures").inc()
            self.health.record_failure(name, "heartbeat")

    async def _serve_batch(self, doc: Dict) -> Dict:
        start_ns = time.perf_counter_ns()
        self.metrics.counter("batches").inc()
        items = doc.get("items")
        if not isinstance(items, list) or not items:
            return {"ok": False, "error": "plan_batch needs a non-empty "
                                          "'items' list"}
        if len(items) > MAX_BATCH_ITEMS:
            return {"ok": False, "error": "batch too large",
                    "limit_items": MAX_BATCH_ITEMS, "got_items": len(items)}
        batch_deadline = doc.get("deadline_ms")
        prepared = []
        for item in items:
            if not isinstance(item, dict):
                prepared.append({"__invalid__": True})
                continue
            merged = dict(item)
            if batch_deadline is not None:
                merged.setdefault("deadline_ms", batch_deadline)
            prepared.append(merged)
        results = await asyncio.gather(*[
            self._serve_item(item) if "__invalid__" not in item
            else _immediate({"ok": False,
                             "error": "batch items must be JSON objects"})
            for item in prepared
        ])
        latency_s = (time.perf_counter_ns() - start_ns) / 1e9
        self.metrics.histogram("batch_latency_s").observe(latency_s)
        succeeded = sum(1 for r in results if r.get("ok"))
        return {
            "ok": True,
            "items": list(results),
            "count": len(results),
            "succeeded": succeeded,
            "latency_ms": round(latency_s * 1e3, 3),
        }

    # -- warm replication ----------------------------------------------
    async def _serve_warm(self, doc: Dict) -> Dict:
        items = doc.get("items")
        if not isinstance(items, list) or not items:
            return {"ok": False, "error": "warm needs a non-empty 'items' "
                                          "list"}
        results = await asyncio.gather(
            *[self._warm_item(item) for item in items])
        return {"ok": all(r.get("ok") for r in results),
                "items": list(results), "count": len(results)}

    async def _warm_item(self, doc: Dict) -> Dict:
        """Plan on the owner, then replicate the entry to every peer."""
        if not isinstance(doc, dict):
            return {"ok": False, "error": "warm items must be JSON objects"}
        self.metrics.counter("warm_items").inc()
        loop = asyncio.get_running_loop()
        try:
            fingerprint = await loop.run_in_executor(
                None, self._parse_item, doc)
        except Exception as exc:
            return {"ok": False, "error": str(exc)}
        owner = self.ring.owner(fingerprint)
        forwarded = {k: v for k, v in doc.items() if k not in ("op", "id")}
        forwarded.update(op="plan", include_plan=True,
                         trace_id=new_trace_id())
        try:
            reply = await self._pools[owner].request(forwarded)
        except Exception as exc:
            return {"ok": False, "shard": owner, "fingerprint": fingerprint,
                    "error": str(exc)}
        if not reply.get("ok"):
            reply.setdefault("shard", owner)
            return reply
        self.admission.note_warm(fingerprint)
        plan_doc = reply.get("plan")
        replicated = 0
        if plan_doc is not None:
            peers = [name for name in self._pools if name != owner]
            acks = await asyncio.gather(*[
                self._pools[peer].request({
                    "op": "cache_put", "fingerprint": fingerprint,
                    "plan": plan_doc})
                for peer in peers
            ], return_exceptions=True)
            replicated = sum(1 for ack in acks
                             if isinstance(ack, dict) and ack.get("ok"))
            self.metrics.counter("replicated_puts").inc(replicated)
        return {"ok": True, "fingerprint": fingerprint, "shard": owner,
                "source": reply.get("source"),
                "cache_hit": reply.get("cache_hit"),
                "replicated": replicated}

    # -- aggregation ---------------------------------------------------
    async def _shard_stats(self) -> Dict[str, Optional[Dict]]:
        async def one(name: str):
            try:
                reply = await self._pools[name].request({"op": "stats"})
                return name, reply.get("stats")
            except Exception:
                return name, None

        pairs = await asyncio.gather(*[one(name) for name in self._pools])
        return dict(pairs)

    def snapshot(self) -> Dict:
        """The frontend's own stats (metrics, admission, queue, ring, health)."""
        snap = {
            "metrics": self.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "queue_depth": self._queue.qsize() if self._loop else 0,
            "ring": self.ring.describe(),
            "health": self.health.snapshot(),
            "slo": self.slo.snapshot(),
            "tracer": tracer.health(),
        }
        if self.telemetry is not None:
            snap["telemetry"] = self.telemetry.snapshot()
        return snap

    async def _fleet_stats(self) -> Dict:
        return {
            "ok": True,
            "frontend": self.snapshot(),
            "shards": await self._shard_stats(),
        }

    async def _fleet_trace(self) -> Dict:
        """Merge frontend spans with every shard's into one span-dict list."""
        local = [dict(span.as_dict(), process="frontend")
                 for span in tracer.drain()]

        async def one(name: str) -> List[Dict]:
            try:
                reply = await self._pools[name].request({"op": "trace"})
                return list(reply.get("spans") or [])
            except Exception:
                return []

        remote = await asyncio.gather(*[one(name) for name in self._pools])
        spans = local + [span for chunk in remote for span in chunk]
        return {"ok": True, "spans": spans, "count": len(spans)}

    async def _shutdown_shards(self) -> Dict:
        """Drain-and-stop every shard by protocol, then ack."""
        drained: Dict[str, object] = {}
        for name in self._pools:
            try:
                ack = await self._pools[name].request({"op": "shutdown"})
                drained[name] = ack.get("drained_jobs")
            except Exception as exc:
                drained[name] = f"error: {exc}"
        return {"ok": True, "op": "shutdown", "shards": drained}

    # ------------------------------------------------------------------
    # convenience for the CLI
    # ------------------------------------------------------------------
    def wait(self) -> None:
        """Block until the frontend stops (shutdown op or :meth:`stop`)."""
        if self._thread is not None:
            self._thread.join()


async def _immediate(doc: Dict) -> Dict:
    return doc
