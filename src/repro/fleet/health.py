"""Shard health tracking: K-consecutive-failure marking and ring membership.

The frontend feeds this monitor from two places — the periodic heartbeat
loop and every failed dispatch — and the monitor owns the *membership*
consequences:

* after ``failure_threshold`` **consecutive** failures a shard is marked
  **down**: it leaves the consistent-hash ring (so new fingerprints route
  to survivors, moving only ~1/N of the keyspace), its ``shard_up`` gauge
  drops to 0, and ``shard_marked_down`` counts the transition;
* one success marks it **up** again: it rejoins the ring at exactly the
  virtual-node positions it held before (ring points are pure hashes of
  the shard name), the gauge returns to 1, and warm disk caches mean the
  rejoining shard serves its old keyspace hot.

A single failure never changes membership — transient blips are the retry
policy's job (:mod:`repro.fleet.retry`); the monitor reacts to *patterns*.
All methods are thread-safe; ring mutations happen under the monitor lock
so a heartbeat and a dispatch failure cannot double-remove a shard.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..obs.registry import MetricsRegistry
from .ring import HashRing


class ShardHealth:
    """Mutable per-shard record; owned and locked by the monitor."""

    __slots__ = ("name", "up", "consecutive_failures", "last_change_s",
                 "last_reason", "marked_down_total", "marked_up_total")

    def __init__(self, name: str):
        self.name = name
        self.up = True
        self.consecutive_failures = 0
        self.last_change_s = time.monotonic()
        self.last_reason = "initial"
        self.marked_down_total = 0
        self.marked_up_total = 0

    def as_dict(self) -> Dict:
        return {
            "up": self.up,
            "consecutive_failures": self.consecutive_failures,
            "last_reason": self.last_reason,
            "since_change_s": round(time.monotonic() - self.last_change_s, 3),
            "marked_down_total": self.marked_down_total,
            "marked_up_total": self.marked_up_total,
        }


class HealthMonitor:
    """Tracks shard health and keeps the routing ring in sync with it."""

    def __init__(
        self,
        shard_names,
        *,
        ring: HashRing,
        metrics: Optional[MetricsRegistry] = None,
        failure_threshold: int = 3,
        on_down: Optional[Callable[[str, str], None]] = None,
        on_up: Optional[Callable[[str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.ring = ring
        self.metrics = metrics or MetricsRegistry()
        self.failure_threshold = failure_threshold
        self._on_down = on_down
        self._on_up = on_up
        self._lock = threading.Lock()
        self._shards: Dict[str, ShardHealth] = {
            str(name): ShardHealth(str(name)) for name in shard_names}
        for name in self._shards:
            self.metrics.gauge("shard_up", shard=name).set(1)

    # ------------------------------------------------------------------
    # feed
    # ------------------------------------------------------------------
    def record_success(self, name: str) -> None:
        """One good heartbeat or served request; may mark the shard up."""
        recovered = False
        with self._lock:
            shard = self._shards[name]
            shard.consecutive_failures = 0
            if not shard.up:
                shard.up = True
                shard.marked_up_total += 1
                shard.last_change_s = time.monotonic()
                shard.last_reason = "recovered"
                if name not in self.ring:
                    self.ring.add(name)
                self.metrics.gauge("shard_up", shard=name).set(1)
                self.metrics.counter("shard_marked_up").inc()
                recovered = True
        if recovered and self._on_up is not None:
            self._on_up(name)

    def record_failure(self, name: str, reason: str = "error") -> None:
        """One failed heartbeat or dispatch; may mark the shard down."""
        went_down = False
        with self._lock:
            shard = self._shards[name]
            shard.consecutive_failures += 1
            if shard.up and \
                    shard.consecutive_failures >= self.failure_threshold:
                shard.up = False
                shard.marked_down_total += 1
                shard.last_change_s = time.monotonic()
                shard.last_reason = reason
                if name in self.ring and len(self.ring) > 1:
                    # never empty the ring: with every shard failing the
                    # last one stays routable so requests fail loudly at
                    # dispatch instead of silently losing all owners
                    self.ring.remove(name)
                self.metrics.gauge("shard_up", shard=name).set(0)
                self.metrics.counter("shard_marked_down").inc()
                went_down = True
        if went_down and self._on_down is not None:
            self._on_down(name, reason)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_up(self, name: str) -> bool:
        with self._lock:
            shard = self._shards.get(name)
            return bool(shard and shard.up)

    def up_shards(self) -> List[str]:
        with self._lock:
            return [n for n, s in self._shards.items() if s.up]

    def down_shards(self) -> List[str]:
        with self._lock:
            return [n for n, s in self._shards.items() if not s.up]

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "failure_threshold": self.failure_threshold,
                "shards": {n: s.as_dict()
                           for n, s in sorted(self._shards.items())},
            }
