"""Trace generation for the in-house performance simulator (Section 6.1).

The paper's simulator "derives the tensor accessing traces (loading and
storing) and partial sum computation (MULT and ADD) traces" and then costs
them.  Materializing per-element events for ImageNet-scale models is
infeasible in Python, so we emit *aggregated* event records — one record per
(layer, phase, tensor role) carrying the event count and the per-event
granule — with totals identical to an element-by-element trace:

* FC layers trace at element granularity (granule 1);
* CONV layers trace at kernel granularity (granule K_h·K_w), and transfer
  amounts are rounded up to whole granules, as the paper specifies
  ("the trace granularity for FC layer is element-wise (i.e., 1) and for
  CONV is kernel-wise (e.g., 3x3)").

This substitution is documented in DESIGN.md; it preserves every quantity
the timing engine consumes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..core.types import PartitionType, Phase, ShardedWorkload


class EventKind(enum.Enum):
    LOAD = "load"        # HBM read, amount in tensor elements
    STORE = "store"      # HBM write, amount in tensor elements
    MULT = "mult"        # multiply FLOPs
    ADD = "add"          # addition FLOPs
    NET_READ = "net"     # remote read over the inter-accelerator network


@dataclass(frozen=True)
class TraceEvent:
    """One aggregated trace record."""

    kind: EventKind
    layer: str
    phase: Phase
    amount: float      # elements (LOAD/STORE/NET_READ) or FLOPs (MULT/ADD)
    granule: int = 1   # trace granularity; transfers round up to multiples

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("event amount must be non-negative")
        if self.granule <= 0:
            raise ValueError("granule must be positive")

    def quantized_amount(self) -> float:
        """Amount rounded up to whole granules (trace quantization)."""
        if self.granule == 1:
            return self.amount
        return math.ceil(self.amount / self.granule) * self.granule


def granule_of(sw: ShardedWorkload) -> int:
    """Element-wise for FC, kernel-wise for CONV (Section 6.1)."""
    return sw.base.kernel_spatial if sw.base.is_conv else 1


def _mult_add_split(total_flops: float) -> Tuple[float, float]:
    """A 2K-1 FLOP reduction is K multiplies and K-1 adds: ~half and half."""
    mults = (total_flops + 1.0) / 2.0
    adds = total_flops - mults
    return mults, max(adds, 0.0)


def layer_phase_events(sw: ShardedWorkload, phase: Phase) -> List[TraceEvent]:
    """LOAD / MULT / ADD / STORE events of one training phase of one layer.

    Tensor roles per phase (Section 2.1):

    * forward:  read F_l and W_l, write F_{l+1};
    * backward: read E_{l+1}, W_l and F_l (for the f' mask), write E_l;
    * gradient: read F_l and E_{l+1}, write ΔW_l.
    """
    g = granule_of(sw)
    name = sw.name
    flops = sw.flops_phase(phase)
    mults, adds = _mult_add_split(flops)

    if phase is Phase.FORWARD:
        loads = sw.a_input_fm() + sw.a_weight()
        stores = sw.a_output_fm()
    elif phase is Phase.BACKWARD:
        loads = sw.a_output_fm() + sw.a_weight() + sw.a_input_fm()
        stores = sw.a_input_fm()
    else:
        loads = sw.a_input_fm() + sw.a_output_fm()
        stores = sw.a_weight()

    return [
        TraceEvent(EventKind.LOAD, name, phase, loads, g),
        TraceEvent(EventKind.MULT, name, phase, mults, g),
        TraceEvent(EventKind.ADD, name, phase, adds, g),
        TraceEvent(EventKind.STORE, name, phase, stores, g),
    ]


def layer_events(sw: ShardedWorkload) -> List[TraceEvent]:
    """All three phases of one layer."""
    events: List[TraceEvent] = []
    for phase in Phase:
        events.extend(layer_phase_events(sw, phase))
    return events


def optimizer_update_events(sw: ShardedWorkload, optimizer) -> List[TraceEvent]:
    """Local weight-update events of one layer (Section 2.1's update rules).

    The update touches the weight shard, its gradient and the optimizer
    state (velocity / moments), all of the weight's sharded shape, and
    performs a fixed number of element-wise FLOPs per weight.  No network
    events: updates never cross devices.
    """
    g = granule_of(sw)
    w = sw.a_weight()
    return [
        TraceEvent(EventKind.LOAD, sw.name, Phase.GRADIENT,
                   optimizer.update_load_tensors() * w, g),
        TraceEvent(EventKind.ADD, sw.name, Phase.GRADIENT,
                   optimizer.flops_per_weight * w, g),
        TraceEvent(EventKind.STORE, sw.name, Phase.GRADIENT,
                   optimizer.update_store_tensors() * w, g),
    ]


def psum_exchange_events(sw: ShardedWorkload, ptype: PartitionType) -> List[TraceEvent]:
    """Intra-layer partial-sum exchange (Table 4) as seen by one party.

    The party remotely reads the peer's partial-sum tensor, adds it into its
    local copy, and stores the combined result.
    """
    g = granule_of(sw)
    phase = _psum_phase(ptype)
    amount = sw.a_psum(ptype)
    return [
        TraceEvent(EventKind.NET_READ, sw.name, phase, amount, g),
        TraceEvent(EventKind.ADD, sw.name, phase, amount, g),
        TraceEvent(EventKind.STORE, sw.name, phase, amount, g),
    ]


def _psum_phase(ptype: PartitionType) -> Phase:
    from ..core.types import PSUM_PHASE

    return PSUM_PHASE[ptype]


def total_amount(events: Iterable[TraceEvent], kind: EventKind,
                 quantized: bool = True) -> float:
    """Sum of (optionally granule-quantized) amounts of one event kind."""
    return sum(
        (e.quantized_amount() if quantized else e.amount)
        for e in events
        if e.kind is kind
    )
