"""Timing engine: converts aggregated trace events into seconds.

For each accelerator group the engine applies three rates: compute density
(FLOP/s, for MULT/ADD events), HBM bandwidth (bytes/s, for LOAD/STORE) and
network bandwidth (bytes/s, for NET_READ).  Compute and memory streams are
overlapped (double buffering: the phase takes the slower of the two), while
network transfers serialize with them — the conservative model matching the
paper's separate "computation and data accessing" accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..hardware.accelerator import AcceleratorGroup
from ..hardware.profile import ANALYTIC, HardwareProfile
from ..training.optimizers import SGD, OptimizerSpec
from .energy import DEFAULT_ENERGY, EnergySpec
from .trace import EventKind, TraceEvent


@dataclass(frozen=True)
class EngineConfig:
    """Simulator knobs.

    ``dtype_bytes`` — element width (bfloat16 by default, Section 6.1);
    ``overlap_compute_memory`` — double-buffered execution (phase time is
    ``max(compute, memory)``); set ``False`` for a fully serialized model;
    ``optimizer`` — the update rule simulated at the leaves (Section 2.1:
    the choice only adds local element-wise work and state memory).
    """

    dtype_bytes: int = 2
    overlap_compute_memory: bool = True
    optimizer: OptimizerSpec = field(default=SGD)
    #: fixed per-transfer network latency (the alpha of an alpha-beta model);
    #: 0 reproduces the paper's pure-bandwidth communication cost (Eq. 7)
    link_latency_s: float = 0.0
    #: per-operation energy prices used for the array-wide energy report
    energy: EnergySpec = field(default=DEFAULT_ENERGY)

    def __post_init__(self) -> None:
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if self.link_latency_s < 0:
            raise ValueError("link_latency_s must be non-negative")


@dataclass(frozen=True)
class TimeBreakdown:
    """Seconds spent per resource for one batch of events."""

    compute: float
    memory: float
    network: float

    @property
    def busy(self) -> float:
        return self.compute + self.memory + self.network


class TimingEngine:
    """Cost aggregated trace events on a given accelerator group.

    Rates come from the ``profile``: the default :data:`ANALYTIC` answers
    the group's peak numbers (historical behavior, bit-identical — its
    latency constant is exactly ``0.0``); a calibrated profile derates
    compute, memory and size-dependent network bandwidth and adds its
    fitted per-transfer latency on top of ``link_latency_s``.
    """

    def __init__(self, config: EngineConfig = EngineConfig(),
                 profile: Optional[HardwareProfile] = None):
        self.config = config
        self.profile = ANALYTIC if profile is None else profile

    def breakdown(self, events: Iterable[TraceEvent],
                  group: AcceleratorGroup) -> TimeBreakdown:
        flops = 0.0
        mem_elements = 0.0
        net_elements = 0.0
        net_transfers = 0
        for event in events:
            amount = event.quantized_amount()
            if event.kind in (EventKind.MULT, EventKind.ADD):
                flops += amount
            elif event.kind in (EventKind.LOAD, EventKind.STORE):
                mem_elements += amount
            elif event.kind is EventKind.NET_READ:
                net_elements += amount
                net_transfers += 1
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown event kind {event.kind!r}")
        profile = self.profile
        net_bytes = net_elements * self.config.dtype_bytes
        return TimeBreakdown(
            compute=flops / profile.compute_rate(group),
            memory=(mem_elements * self.config.dtype_bytes
                    / profile.memory_bandwidth(group)),
            network=(
                net_bytes / profile.network_bandwidth(group, net_bytes)
                + net_transfers * (self.config.link_latency_s
                                   + profile.transfer_latency_s(group))
            ),
        )

    def elapsed(self, events: Sequence[TraceEvent], group: AcceleratorGroup) -> float:
        """Wall time for the events under the configured overlap model."""
        b = self.breakdown(events, group)
        if self.config.overlap_compute_memory:
            return max(b.compute, b.memory) + b.network
        return b.busy
