"""Trace-driven performance simulator for hierarchical partition plans."""

from .energy import (
    DEFAULT_ENERGY,
    EnergyBreakdown,
    EnergySpec,
    events_energy,
)
from .engine import EngineConfig, TimeBreakdown, TimingEngine
from .timeline import critical_path_timeline, save_chrome_trace
from .executor import LevelRecord, SimReport, evaluate
from .memory import MemoryReport, leaf_memory_report
from .trace import (
    EventKind,
    TraceEvent,
    granule_of,
    layer_events,
    layer_phase_events,
    psum_exchange_events,
    total_amount,
)

__all__ = [
    "DEFAULT_ENERGY",
    "EnergyBreakdown",
    "EnergySpec",
    "critical_path_timeline",
    "events_energy",
    "save_chrome_trace",
    "EngineConfig",
    "EventKind",
    "LevelRecord",
    "MemoryReport",
    "SimReport",
    "TimeBreakdown",
    "TimingEngine",
    "TraceEvent",
    "evaluate",
    "granule_of",
    "layer_events",
    "layer_phase_events",
    "leaf_memory_report",
    "psum_exchange_events",
    "total_amount",
]
