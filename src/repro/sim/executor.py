"""Plan evaluation: simulate one training iteration of a hierarchical plan.

The executor walks the pairing tree together with the plan tree:

* at a **leaf**, the group executes its fully-sharded slice of every layer's
  three phases; the trace events are costed against the leaf's compute
  density and HBM bandwidth (overlapped);
* at an **internal node**, the two child groups exchange the level's
  intra-layer partial sums (Table 4) and inter-layer boundary tensors
  (Table 5); the level's time is the slower party's network time plus its
  partial-sum additions, and the node's total is that plus the slower
  child subtree — children execute concurrently.

This evaluator is deliberately independent of the planner's Eq. 9 objective:
schemes are *scored* here on identical terms, which is what makes the
speedup comparisons of Section 6 meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cost_model import inter_layer_elements
from ..core.planner import PlannedExecution
from ..core.stages import (
    ShardedLayerStage,
    ShardedParallelStage,
    ShardedStage,
    first_workload,
    iter_sharded_workloads,
    last_workload,
    shard_stages,
)
from ..core.hierarchy import stages_key
from ..core.types import PSUM_PHASE, PartitionType, Phase
from ..plan.ir import HierarchicalPlan, LevelPlan
from ..hardware.cluster import GroupNode
from .energy import EnergyBreakdown, ZERO_ENERGY, events_energy
from .engine import EngineConfig, TimingEngine
from .memory import MemoryReport, leaf_memory_report
from .trace import (
    EventKind,
    TraceEvent,
    granule_of,
    layer_events,
    layer_phase_events,
    optimizer_update_events,
    total_amount,
)
from ..obs import telemetry as telemetry_store


@dataclass(frozen=True)
class LevelRecord:
    """Communication accounting of one pairing-tree level on the critical path."""

    level: int
    comm_time: float
    net_bytes_left: float
    net_bytes_right: float


@dataclass
class SimReport:
    """Result of simulating one training iteration."""

    total_time: float
    leaf_time: float
    comm_time: float
    levels: List[LevelRecord]
    memory_worst: Optional[MemoryReport]
    batch: int
    energy: EnergyBreakdown = ZERO_ENERGY

    @property
    def throughput(self) -> float:
        """Training samples per second."""
        return self.batch / self.total_time

    @property
    def samples_per_joule(self) -> float:
        """Training efficiency: samples processed per joule (array-wide)."""
        if self.energy.total_j == 0.0:
            return float("inf")
        return self.batch / self.energy.total_j

    @property
    def fits_memory(self) -> bool:
        return self.memory_worst is None or self.memory_worst.fits


def _group_hardware_name(group) -> str:
    """A stable spec label for one leaf group (``tpu-v2``, ``a+b`` if mixed)."""
    return "+".join(sorted({m.name for m in group.members}))


def _record_leaf_timings(telemetry, planned: PlannedExecution, node: GroupNode,
                         stages: List[ShardedStage], engine: TimingEngine) -> None:
    """One durable ``op_timing`` event per (layer, phase) of a leaf group.

    These are the measured per-op timings ``repro telemetry export
    --calibration`` aggregates into per-hardware curves.  Only called when
    a telemetry writer is active and enabled, and memoized leaves record
    once per distinct (group, stages) pair — duplicates carry no new
    calibration signal.
    """
    hardware = _group_hardware_name(node.group)
    for sw in iter_sharded_workloads(stages):
        for phase in Phase:
            events = layer_phase_events(sw, phase)
            seconds = engine.elapsed(events, node.group)
            moved = (total_amount(events, EventKind.LOAD)
                     + total_amount(events, EventKind.STORE))
            telemetry.record({
                "type": "op_timing",
                "hardware": hardware,
                "devices": node.group.size,
                "op": sw.name,
                "kind": "conv" if sw.base.is_conv else "fc",
                "phase": phase.name.lower(),
                "elements": moved,
                "flops": sw.flops_phase(phase),
                "time_s": seconds,
                "model": planned.network_name,
                "scheme": planned.scheme,
                "batch": planned.batch,
            })


def _record_level_timings(telemetry, planned: PlannedExecution, node: GroupNode,
                          ev_i: Sequence[TraceEvent], ev_j: Sequence[TraceEvent],
                          engine: TimingEngine) -> None:
    """One durable ``op_timing`` event per party of an internal level.

    ``kind="net"`` / ``phase="comm"`` series carry the network share of the
    level's exchange time plus the transfer count, which is what the
    network side of the calibration fit (bandwidth-efficiency curve and
    per-transfer latency) regresses on.
    """
    for party, events in ((node.left, ev_i), (node.right, ev_j)):
        net_elements = 0.0
        transfers = 0
        for event in events:
            if event.kind is EventKind.NET_READ:
                net_elements += event.quantized_amount()
                transfers += 1
        if transfers == 0:
            continue
        breakdown = engine.breakdown(events, party.group)
        telemetry.record({
            "type": "op_timing",
            "hardware": _group_hardware_name(party.group),
            "devices": party.group.size,
            "op": f"level-{node.level + 1}",
            "kind": "net",
            "phase": "comm",
            "elements": net_elements,
            "flops": 0.0,
            "transfers": transfers,
            "time_s": breakdown.network,
            "model": planned.network_name,
            "scheme": planned.scheme,
            "batch": planned.batch,
        })


@dataclass
class _NodeResult:
    time: float
    levels: Tuple[LevelRecord, ...]
    leaf_time: float
    memory_worst: Optional[MemoryReport]
    energy: EnergyBreakdown = ZERO_ENERGY


def _level_net_events(
    stages: Sequence[ShardedStage],
    level: LevelPlan,
    entry_state: Optional[PartitionType],
) -> Tuple[List[TraceEvent], List[TraceEvent], Optional[PartitionType]]:
    """Per-party network/psum-add events for one level; returns exit state."""
    events_i: List[TraceEvent] = []
    events_j: List[TraceEvent] = []

    def emit_pair(amount_i: float, amount_j: float, name: str, phase: Phase,
                  granule: int) -> None:
        if amount_i > 0:
            events_i.append(TraceEvent(EventKind.NET_READ, name, phase, amount_i, granule))
        if amount_j > 0:
            events_j.append(TraceEvent(EventKind.NET_READ, name, phase, amount_j, granule))

    def walk(sub: Sequence[ShardedStage],
             prev: Optional[PartitionType]) -> Optional[PartitionType]:
        for stage in sub:
            if isinstance(stage, ShardedLayerStage):
                sw = stage.workload
                lp = level.partition(sw.name)
                g = granule_of(sw)
                phase = PSUM_PHASE[lp.ptype]
                # intra-layer: both parties fetch the peer's partial sums and add
                psum = sw.a_psum(lp.ptype)
                emit_pair(psum, psum, sw.name, phase, g)
                events_i.append(TraceEvent(EventKind.ADD, sw.name, phase, psum, g))
                events_j.append(TraceEvent(EventKind.ADD, sw.name, phase, psum, g))
                # inter-layer: re-align the boundary tensor from prev's state
                if prev is not None:
                    amount_i, amount_j = inter_layer_elements(
                        sw.a_input_fm(), prev, lp.ptype, lp.ratio
                    )
                    emit_pair(amount_i, amount_j, sw.name, Phase.FORWARD, g)
                prev = lp.ptype
            elif isinstance(stage, ShardedParallelStage):
                join = level.alignment_for(stage.name)
                fork = first_workload([stage])
                for index, path in enumerate(stage.paths):
                    if path:
                        exit_state = walk(path, prev)
                        boundary = last_workload(path).a_output_fm()
                    else:
                        exit_state = prev
                        boundary = fork.a_input_fm()  # the skip tensor itself
                    # the search records each path's pre-alignment exit state;
                    # prefer the recorded value so the replay matches exactly
                    # what was costed (inferred state kept for legacy plans)
                    recorded = level.path_exit(stage.name, index)
                    if recorded is not None:
                        exit_state = recorded.state
                    # re-align each path's output to the join state
                    if join is not None and exit_state is not None \
                            and exit_state is not join.state:
                        amount_i, amount_j = inter_layer_elements(
                            boundary, exit_state, join.state, join.alpha
                        )
                        emit_pair(amount_i, amount_j, stage.name, Phase.FORWARD,
                                  granule_of(fork))
                if join is not None:
                    prev = join.state
                # else: linearized schemes (HyPar) recorded no join state; the
                # boundary keeps the fork state, which never over-charges them
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown stage kind {type(stage).__name__}")
        return prev

    exit_state = walk(stages, entry_state)
    return events_i, events_j, exit_state


def evaluate(planned: PlannedExecution,
             config: Optional[EngineConfig] = None,
             profile=None) -> SimReport:
    """Simulate one training iteration of a planned execution.

    ``profile`` selects the hardware rates the timing engine applies: the
    default (``None``) keeps the peak analytic ones; a
    :class:`~repro.hardware.profile.CalibratedProfile` scores the plan
    under measured effective rates instead (it must cover every spec in
    the planned array).
    """
    if config is None:
        config = EngineConfig(dtype_bytes=planned.dtype_bytes)
    if profile is not None:
        profile.validate_array(planned.tree.group)
    engine = TimingEngine(config, profile=profile)
    memo: Dict[Tuple, _NodeResult] = {}
    telemetry = telemetry_store.active()
    if telemetry is not None and not telemetry.enabled:
        telemetry = None

    def visit(node: GroupNode, plan: HierarchicalPlan,
              stages: List[ShardedStage]) -> _NodeResult:
        key = (node.group.signature(), node.depth(), stages_key(stages))
        cached = memo.get(key)
        if cached is not None:
            return cached

        if plan.level_plan is None or node.is_leaf:
            events: List[TraceEvent] = []
            for sw in iter_sharded_workloads(stages):
                events.extend(layer_events(sw))
                events.extend(optimizer_update_events(sw, config.optimizer))
            leaf_time = engine.elapsed(events, node.group)
            mem = leaf_memory_report(stages, node.group, config.dtype_bytes,
                                     config.optimizer)
            result = _NodeResult(time=leaf_time, levels=(), leaf_time=leaf_time,
                                 memory_worst=mem,
                                 energy=events_energy(events, config.dtype_bytes,
                                                      config.energy))
            if telemetry is not None:
                _record_leaf_timings(telemetry, planned, node, stages, engine)
            memo[key] = result
            return result

        assert node.left is not None and node.right is not None
        assert plan.left is not None and plan.right is not None
        level = plan.level_plan

        ev_i, ev_j, _ = _level_net_events(stages, level, entry_state=None)
        time_i = engine.elapsed(ev_i, node.left.group)
        time_j = engine.elapsed(ev_j, node.right.group)
        comm_time = max(time_i, time_j)
        if telemetry is not None:
            _record_level_timings(telemetry, planned, node, ev_i, ev_j, engine)

        bytes_i = sum(e.quantized_amount() for e in ev_i
                      if e.kind is EventKind.NET_READ) * config.dtype_bytes
        bytes_j = sum(e.quantized_amount() for e in ev_j
                      if e.kind is EventKind.NET_READ) * config.dtype_bytes

        assignments = level.layer_assignments()
        left_stages = shard_stages(stages, assignments, "left")
        right_stages = shard_stages(stages, assignments, "right")
        left = visit(node.left, plan.left, left_stages)
        right = visit(node.right, plan.right, right_stages)
        slower = left if left.time >= right.time else right

        record = LevelRecord(
            level=node.level + 1,
            comm_time=comm_time,
            net_bytes_left=bytes_i,
            net_bytes_right=bytes_j,
        )
        worst_mem = _worse_memory(left.memory_worst, right.memory_worst)
        # energy is additive over the whole array: both children plus both
        # parties' exchanges at this level (time, by contrast, is a
        # critical-path quantity)
        level_energy = (
            events_energy(ev_i, config.dtype_bytes, config.energy)
            + events_energy(ev_j, config.dtype_bytes, config.energy)
        )
        result = _NodeResult(
            time=comm_time + slower.time,
            levels=(record,) + slower.levels,
            leaf_time=slower.leaf_time,
            memory_worst=worst_mem,
            energy=level_energy + left.energy + right.energy,
        )
        memo[key] = result
        return result

    root = visit(planned.tree, planned.plan, planned.stages)
    return SimReport(
        total_time=root.time,
        leaf_time=root.leaf_time,
        comm_time=root.time - root.leaf_time,
        levels=list(root.levels),
        memory_worst=root.memory_worst,
        batch=planned.batch,
        energy=root.energy,
    )


def _worse_memory(a: Optional[MemoryReport],
                  b: Optional[MemoryReport]) -> Optional[MemoryReport]:
    if a is None:
        return b
    if b is None:
        return a
    return a if a.utilization >= b.utilization else b
