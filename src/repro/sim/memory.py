"""Per-accelerator memory-footprint accounting and capacity checks.

A leaf accelerator must hold, for each layer, its shard of the weights, the
weight gradients, and the forward/error activations (F_l and E_l are live
simultaneously during the backward/gradient phases).  The check guards the
plans the planner emits: Table 7's 64/128 GB HBM capacities are part of the
evaluated configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.stages import ShardedStage, iter_sharded_workloads
from ..hardware.accelerator import AcceleratorGroup
from ..training.optimizers import SGD, OptimizerSpec


@dataclass(frozen=True)
class MemoryReport:
    """Footprint of one party's sharded stage list."""

    weight_bytes: float
    gradient_bytes: float
    activation_bytes: float
    capacity_bytes: float
    optimizer_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (self.weight_bytes + self.gradient_bytes
                + self.activation_bytes + self.optimizer_bytes)

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.capacity_bytes

    @property
    def utilization(self) -> float:
        return self.total_bytes / self.capacity_bytes


def leaf_memory_report(
    stages: Sequence[ShardedStage],
    group: AcceleratorGroup,
    dtype_bytes: int = 2,
    optimizer: OptimizerSpec = SGD,
) -> MemoryReport:
    """Footprint of the fully-sharded workload held by one leaf group."""
    weights = 0.0
    activations = 0.0
    for sw in iter_sharded_workloads(stages):
        weights += sw.a_weight()
        # F_l and E_l shards are both resident during training; the output
        # feature map is the next layer's input and is counted there.
        activations += 2.0 * sw.a_input_fm()
    return MemoryReport(
        weight_bytes=weights * dtype_bytes,
        gradient_bytes=weights * dtype_bytes,
        activation_bytes=activations * dtype_bytes,
        capacity_bytes=group.memory_bytes,
        optimizer_bytes=weights * dtype_bytes * optimizer.state_per_weight,
    )
