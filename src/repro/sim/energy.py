"""Energy accounting for simulated training iterations.

Time tells half the story of a partitioning decision; the energy cost of
data movement tells the other half.  This model charges every trace event a
technology-scaled energy price:

* compute — picojoules per FLOP (bfloat16 MAC on a 2019-era 16 nm-class
  accelerator, amortized over the systolic array);
* HBM traffic — picojoules per byte (HBM2 access energy);
* network traffic — picojoules per byte (SerDes + switch traversal; an
  order of magnitude above HBM, which is exactly why partition planning
  matters).

Defaults are order-of-magnitude figures from the architecture literature;
they are configuration, not measurement — swap in your own technology
numbers.  Unlike iteration *time* (a critical-path quantity), energy is
additive over every board in the array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .trace import EventKind, TraceEvent

PICO = 1e-12


@dataclass(frozen=True)
class EnergySpec:
    """Per-operation energy prices (picojoules)."""

    pj_per_flop: float = 0.5
    pj_per_hbm_byte: float = 7.0
    pj_per_network_byte: float = 60.0

    def __post_init__(self) -> None:
        for name in ("pj_per_flop", "pj_per_hbm_byte", "pj_per_network_byte"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


#: nominal 16 nm-class defaults used throughout the benches
DEFAULT_ENERGY = EnergySpec()


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per resource for one batch of events."""

    compute_j: float
    hbm_j: float
    network_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.hbm_j + self.network_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j + other.compute_j,
            hbm_j=self.hbm_j + other.hbm_j,
            network_j=self.network_j + other.network_j,
        )


ZERO_ENERGY = EnergyBreakdown(0.0, 0.0, 0.0)


def events_energy(
    events: Iterable[TraceEvent],
    dtype_bytes: int,
    spec: EnergySpec = DEFAULT_ENERGY,
) -> EnergyBreakdown:
    """Energy of one party's aggregated trace events."""
    flops = 0.0
    hbm_bytes = 0.0
    net_bytes = 0.0
    for event in events:
        amount = event.quantized_amount()
        if event.kind in (EventKind.MULT, EventKind.ADD):
            flops += amount
        elif event.kind in (EventKind.LOAD, EventKind.STORE):
            hbm_bytes += amount * dtype_bytes
        elif event.kind is EventKind.NET_READ:
            net_bytes += amount * dtype_bytes
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event kind {event.kind!r}")
    return EnergyBreakdown(
        compute_j=flops * spec.pj_per_flop * PICO,
        hbm_j=hbm_bytes * spec.pj_per_hbm_byte * PICO,
        network_j=net_bytes * spec.pj_per_network_byte * PICO,
    )
