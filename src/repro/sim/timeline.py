"""Timeline export: render a simulated iteration as a Chrome trace.

Produces Trace Event Format JSON (load it at ``chrome://tracing`` or in
Perfetto) for the *critical path* of a hierarchical plan: one row per
hierarchy level showing its communication phase, and one row for the leaf
showing per-layer, per-phase execution.  Durations come from the same
timing engine the evaluator uses, so the trace's total span equals the
reported iteration time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.planner import PlannedExecution
from ..ioutil import atomic_write_text
from ..core.stages import iter_sharded_workloads, shard_stages
from ..core.types import Phase
from ..hardware.cluster import GroupNode
from .engine import EngineConfig, TimingEngine
from .executor import _level_net_events
from .trace import layer_phase_events, optimizer_update_events


def _event(name: str, start_us: float, dur_us: float, tid: int,
           category: str) -> Dict:
    return {
        "name": name,
        "cat": category,
        "ph": "X",
        "ts": round(start_us, 3),
        "dur": round(max(dur_us, 0.001), 3),
        "pid": 0,
        "tid": tid,
    }


def critical_path_timeline(
    planned: PlannedExecution,
    config: Optional[EngineConfig] = None,
) -> List[Dict]:
    """Trace events along the slower child at every split.

    Rows (``tid``): 0..h-1 are the hierarchy levels' communication phases;
    row h is the critical leaf's layer-by-layer execution.
    """
    if config is None:
        config = EngineConfig(dtype_bytes=planned.dtype_bytes)
    engine = TimingEngine(config)
    events: List[Dict] = []

    node = planned.tree
    plan = planned.plan
    stages = planned.stages
    cursor_us = 0.0
    level_row = 0

    while plan.level_plan is not None and not node.is_leaf:
        assert node.left is not None and node.right is not None
        assert plan.left is not None and plan.right is not None
        level = plan.level_plan

        ev_i, ev_j, _ = _level_net_events(stages, level, entry_state=None)
        time_i = engine.elapsed(ev_i, node.left.group)
        time_j = engine.elapsed(ev_j, node.right.group)
        comm_us = max(time_i, time_j) * 1e6
        events.append(
            _event(
                f"level {node.level + 1} exchange ({node.left.group} | {node.right.group})",
                cursor_us, comm_us, level_row, "communication",
            )
        )
        cursor_us += comm_us
        level_row += 1

        assignments = level.layer_assignments()
        left_stages = shard_stages(stages, assignments, "left")
        right_stages = shard_stages(stages, assignments, "right")
        # descend into the slower child: compare one-level-down quickly by
        # planning costs; the evaluator's memoized recursion is authoritative,
        # here we only pick a representative path for visualization
        left_time = plan.left and _subtree_leaf_time(
            node.left, plan.left, left_stages, engine
        )
        right_time = plan.right and _subtree_leaf_time(
            node.right, plan.right, right_stages, engine
        )
        if (right_time or 0.0) > (left_time or 0.0):
            node, plan, stages = node.right, plan.right, right_stages
        else:
            node, plan, stages = node.left, plan.left, left_stages

    # leaf execution: per layer, per phase
    leaf_row = level_row
    for sw in iter_sharded_workloads(stages):
        for phase in Phase:
            dur = engine.elapsed(layer_phase_events(sw, phase), node.group) * 1e6
            events.append(
                _event(f"{sw.name}:{phase.value}", cursor_us, dur, leaf_row,
                       "compute")
            )
            cursor_us += dur
        dur = engine.elapsed(optimizer_update_events(sw, config.optimizer),
                             node.group) * 1e6
        events.append(
            _event(f"{sw.name}:update", cursor_us, dur, leaf_row, "optimizer")
        )
        cursor_us += dur

    return events


def _subtree_leaf_time(node: GroupNode, plan, stages, engine: TimingEngine) -> float:
    """Cheap leaf-time proxy used to choose the visualized path."""
    from .trace import layer_events

    events = []
    for sw in iter_sharded_workloads(stages):
        events.extend(layer_events(sw))
    return engine.elapsed(events, node.group)


def save_chrome_trace(planned: PlannedExecution, path,
                      config: Optional[EngineConfig] = None) -> None:
    """Atomically write the critical-path timeline as a Chrome-trace file."""
    events = critical_path_timeline(planned, config)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    atomic_write_text(path, json.dumps(document, indent=1))
