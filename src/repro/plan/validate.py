"""Plan-level structural validation.

A plan produced by this library is correct by construction, but plans also
arrive from JSON documents and hand edits, so consumers re-check before
trusting one:

* every weighted layer of the network is assigned exactly once per level
  (exactly-once is enforced structurally by :class:`~repro.plan.ir.LevelPlan`,
  so here "assigned" reduces to coverage plus no unknown names);
* alignment entries (:class:`~repro.plan.ir.JoinAlignment` /
  :class:`~repro.plan.ir.PathExit`) reference real fork/join stages, with
  path indices in range;
* every α lies strictly inside (0, 1).

:func:`validate_plan` walks a whole :class:`~repro.plan.ir.HierarchicalPlan`
against a network; :func:`validate_level` checks one level against a
pre-collected structure and is what :mod:`repro.core.verify` composes with
its pairing-tree and memory checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .ir import HierarchicalPlan, JoinAlignment, LayerAssignment, LevelPlan, PathExit


def collect_structure(stages: Iterable) -> Tuple[Set[str], Dict[str, int]]:
    """Layer names and fork/join arities of a stage list, fork-in-path deep.

    Works on both :class:`~repro.graph.network.Stage` lists (from
    ``network.stages(batch)``) and the planner's sharded stage lists — both
    expose ``name`` on layer stages and ``paths``/``name`` on parallel
    stages, and sharding preserves the series-parallel structure.
    """
    layer_names: Set[str] = set()
    parallel_paths: Dict[str, int] = {}

    def walk(sub) -> None:
        for stage in sub:
            paths = getattr(stage, "paths", None)
            if paths is None:
                layer_names.add(stage.name)
            else:
                parallel_paths[stage.name] = len(paths)
                for path in paths:
                    walk(path)

    walk(stages)
    return layer_names, parallel_paths


def validate_level(
    level: LevelPlan,
    layer_names: Set[str],
    parallel_paths: Dict[str, int],
) -> List[str]:
    """Check one level's entries against the network structure."""
    issues: List[str] = []

    assigned = {a.name for a in level.layers()}
    missing = layer_names - assigned
    if missing:
        issues.append(f"layers without assignment: {sorted(missing)}")
    unknown = assigned - layer_names
    if unknown:
        issues.append(f"assignments for unknown layers {sorted(unknown)}")

    for entry in level.entries:
        if not 0.0 < entry.alpha < 1.0:
            issues.append(f"{entry} has alpha {entry.alpha} outside (0, 1)")
        if isinstance(entry, JoinAlignment):
            if entry.stage not in parallel_paths:
                issues.append(
                    f"join alignment references unknown fork/join stage "
                    f"{entry.stage!r}"
                )
        elif isinstance(entry, PathExit):
            n_paths = parallel_paths.get(entry.stage)
            if n_paths is None:
                issues.append(
                    f"path exit references unknown fork/join stage "
                    f"{entry.stage!r}"
                )
            elif not 0 <= entry.path_index < n_paths:
                issues.append(
                    f"path exit for stage {entry.stage!r} has path index "
                    f"{entry.path_index} outside [0, {n_paths})"
                )
    return issues


def validate_plan(plan: HierarchicalPlan, network, batch: int = 1) -> List[str]:
    """Check every level of a plan tree against a network's structure.

    Returns a list of human-readable issues (empty = valid).  ``network``
    is a :class:`~repro.graph.network.Network`; ``batch`` only scales
    shapes and does not affect the structure being checked.
    """
    layer_names, parallel_paths = collect_structure(network.stages(batch))

    issues: List[str] = []

    def visit(node: HierarchicalPlan, path: str) -> None:
        if node.level_plan is not None:
            issues.extend(
                f"{path}: {msg}"
                for msg in validate_level(node.level_plan, layer_names,
                                          parallel_paths)
            )
        if node.left is not None:
            visit(node.left, path + "L")
        if node.right is not None:
            visit(node.right, path + "R")

    visit(plan, "root")
    return issues
