"""Structural diffing of hierarchical plans.

Two plans are *equivalent* when they make the same decisions: same tree
shape, same per-layer types, ratios equal within a relative tolerance
(float noise from different arithmetic routes is not a difference — the
same ``COST_REL_TOL`` reasoning as the search's tie-breaking), and the same
join/exit alignments.  Entry *order* and per-level costs are deliberately
not compared: they are representation detail, not decisions.

:func:`plan_diff` returns the differences as typed records; the
``repro plan-diff`` CLI subcommand and the equivalence tests render them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .ir import HierarchicalPlan, LevelPlan

#: relative tolerance under which two ratios count as the same decision
ALPHA_REL_TOL = 1e-9


@dataclass(frozen=True)
class PlanDifference:
    """One difference between two plans at one tree position.

    ``kind`` is one of ``structure`` / ``layers`` / ``type`` / ``alpha`` /
    ``join`` / ``exit``.
    """

    path: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.path} [{self.kind}]: {self.detail}"


def _close(a: float, b: float, rel_tol: float) -> bool:
    return abs(a - b) <= rel_tol * max(abs(a), abs(b), 1.0)


def _diff_level(a: LevelPlan, b: LevelPlan, path: str,
                rel_tol: float) -> List[PlanDifference]:
    out: List[PlanDifference] = []

    a_layers = {e.name: e for e in a.layers()}
    b_layers = {e.name: e for e in b.layers()}
    only_a = sorted(set(a_layers) - set(b_layers))
    only_b = sorted(set(b_layers) - set(a_layers))
    if only_a or only_b:
        out.append(PlanDifference(
            path, "layers",
            f"layer sets differ (only in a: {only_a}, only in b: {only_b})",
        ))
    for name in sorted(set(a_layers) & set(b_layers)):
        ea, eb = a_layers[name], b_layers[name]
        if ea.ptype is not eb.ptype:
            out.append(PlanDifference(
                path, "type", f"layer {name!r}: {ea.ptype} vs {eb.ptype}"
            ))
        elif not _close(ea.alpha, eb.alpha, rel_tol):
            out.append(PlanDifference(
                path, "alpha",
                f"layer {name!r}: alpha {ea.alpha!r} vs {eb.alpha!r}",
            ))

    a_joins = {e.stage: e for e in a.joins()}
    b_joins = {e.stage: e for e in b.joins()}
    for stage in sorted(set(a_joins) | set(b_joins)):
        ja, jb = a_joins.get(stage), b_joins.get(stage)
        if ja is None or jb is None:
            out.append(PlanDifference(
                path, "join",
                f"stage {stage!r} aligned only in {'a' if jb is None else 'b'}",
            ))
        elif ja.state is not jb.state:
            out.append(PlanDifference(
                path, "join", f"stage {stage!r}: {ja.state} vs {jb.state}"
            ))

    a_exits = {(e.stage, e.path_index): e for e in a.path_exits()}
    b_exits = {(e.stage, e.path_index): e for e in b.path_exits()}
    for key in sorted(set(a_exits) | set(b_exits)):
        xa, xb = a_exits.get(key), b_exits.get(key)
        stage, index = key
        if xa is None or xb is None:
            out.append(PlanDifference(
                path, "exit",
                f"stage {stage!r} path {index} recorded only in "
                f"{'a' if xb is None else 'b'}",
            ))
        elif xa.state is not xb.state:
            out.append(PlanDifference(
                path, "exit",
                f"stage {stage!r} path {index}: {xa.state} vs {xb.state}",
            ))
    return out


def plan_diff(
    a: HierarchicalPlan,
    b: HierarchicalPlan,
    rel_tol: float = ALPHA_REL_TOL,
) -> List[PlanDifference]:
    """Every decision-level difference between two plan trees (empty = same)."""
    out: List[PlanDifference] = []

    def visit(na: Optional[HierarchicalPlan], nb: Optional[HierarchicalPlan],
              path: str) -> None:
        if na is None and nb is None:
            return
        if na is None or nb is None or na.is_leaf != nb.is_leaf:
            def shape(n: Optional[HierarchicalPlan]) -> str:
                if n is None:
                    return "absent"
                return "leaf" if n.is_leaf else "internal"
            out.append(PlanDifference(
                path, "structure", f"{shape(na)} in a vs {shape(nb)} in b"
            ))
            return
        if na.level_plan is not None and nb.level_plan is not None:
            out.extend(_diff_level(na.level_plan, nb.level_plan, path, rel_tol))
        visit(na.left, nb.left, path + "L")
        visit(na.right, nb.right, path + "R")

    visit(a, b, "root")
    return out
