"""Pluggable search backends behind one protocol and a name registry.

Every search algorithm that can produce a level plan — the paper's Eq. 9
dynamic program, the greedy strawman, the brute-force oracle, and the
fixed-type baseline policies — implements :class:`SearchBackend`:

    search(stages, model, space, space_fn=None) -> SearchResult

Schemes resolve a backend by name through :func:`get_backend`, the CLI
exposes the same names via ``--backend``, and the plan service accepts a
per-request backend (its deadline fallback is "exact backend → fallback
backend" rather than a hard-coded algorithm).

Core-module imports happen inside ``search`` bodies: the backends are
registered at package import time, before :mod:`repro.core`'s submodules
have finished loading.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ..core.types import ALL_TYPES, PartitionType
from .ir import SearchResult


class SearchBackend(Protocol):
    """One level-plan search algorithm, selectable by name."""

    name: str

    def search(
        self,
        stages: Sequence,
        model,
        space: Sequence[PartitionType] = ALL_TYPES,
        space_fn=None,
    ) -> SearchResult:
        """Find per-layer assignments for one hierarchy level.

        ``model`` is the level's :class:`~repro.core.cost_model.PairCostModel`;
        ``space`` the searchable partition types; ``space_fn`` an optional
        per-layer restriction (workload → allowed types).
        """
        ...  # pragma: no cover - protocol


class DpSearchBackend:
    """The paper's layer-wise DP (Eq. 9): exact, multi-path aware, O(N·|T|²)."""

    name = "dp"

    def search(self, stages, model, space=ALL_TYPES, space_fn=None) -> SearchResult:
        from ..core.dp_search import search_stages

        return search_stages(list(stages), model, space, space_fn=space_fn)


class DpVectorizedSearchBackend:
    """The Eq. 9 DP as batched numpy min-plus over packed cost tensors.

    Bit-identical plans to ``dp`` (asserted by the plan-equivalence CI job
    and the randomized property suite) at a fraction of the latency: step
    costs are precomputed as dense (layer, family, type) tensors — cached
    across searches — and the recurrence plus fork/join macro-stages run
    as broadcast array ops.  See ``docs/performance.md``.
    """

    name = "dp-vectorized"

    def search(self, stages, model, space=ALL_TYPES, space_fn=None) -> SearchResult:
        from ..core.dp_vectorized import search_stages_vectorized

        return search_stages_vectorized(list(stages), model, space,
                                        space_fn=space_fn)


class GreedySearchBackend:
    """Myopic per-layer choice, O(N·|T|); fork/join regions are linearized."""

    name = "greedy"

    def search(self, stages, model, space=ALL_TYPES, space_fn=None) -> SearchResult:
        from ..core.greedy import greedy_chain
        from ..core.stages import flatten_to_chain

        return greedy_chain(flatten_to_chain(list(stages)), model, space,
                            space_fn=space_fn)


class BruteForceSearchBackend:
    """Exhaustive |T|^N enumeration — the optimality oracle.

    Fork/join regions are linearized.  ``max_layers`` bounds the exponent:
    beyond it the enumeration is refused with a clear error instead of
    running for hours (which is Section 5.1's argument for the DP).
    """

    name = "brute-force"

    def __init__(self, max_layers: int = 12):
        self.max_layers = max_layers

    def search(self, stages, model, space=ALL_TYPES, space_fn=None) -> SearchResult:
        from ..core.brute_force import brute_force_chain
        from ..core.stages import flatten_to_chain

        return brute_force_chain(flatten_to_chain(list(stages)), model, space,
                                 space_fn=space_fn, max_layers=self.max_layers)


class FixedTypeSearchBackend:
    """Pin every layer to a static type; the DP only aligns fork/join tensors.

    ``type_fn`` maps a workload to its pinned type (default: Type-I
    everywhere — classic data parallelism).  A caller-provided ``space_fn``
    takes precedence, which is how the OWT/DP baseline schemes express their
    per-layer-kind policies through this backend.
    """

    name = "fixed-type"

    def __init__(self, type_fn: Optional[Callable] = None):
        self.type_fn = type_fn

    def search(self, stages, model, space=ALL_TYPES, space_fn=None) -> SearchResult:
        from ..core.dp_search import search_stages

        fn = space_fn
        if fn is None:
            type_fn = self.type_fn or (lambda w: PartitionType.TYPE_I)
            fn = lambda w: (type_fn(w),)
        return search_stages(list(stages), model, space, space_fn=fn)


#: canonical name → zero-argument factory
_REGISTRY: Dict[str, Callable[[], SearchBackend]] = {}

#: accepted spelling → canonical name
_ALIASES: Dict[str, str] = {}


def register_backend(
    name: str,
    factory: Callable[[], SearchBackend],
    aliases: Sequence[str] = (),
) -> None:
    """Register a backend factory under ``name`` (plus optional aliases)."""
    key = name.lower()
    _REGISTRY[key] = factory
    for alias in aliases:
        _ALIASES[alias.lower()] = key


def canonical_backend_name(name: str) -> str:
    """Resolve a (case-insensitive) name or alias to its canonical name.

    Raises ``KeyError`` for unknown names, same as :func:`get_backend`.
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown search backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return key


def get_backend(name: str) -> SearchBackend:
    """Instantiate a backend by (case-insensitive) name or alias."""
    return _REGISTRY[canonical_backend_name(name)]()


def available_backends() -> List[str]:
    """The canonical registered backend names, sorted."""
    return sorted(_REGISTRY)


register_backend("dp", DpSearchBackend, aliases=("accpar", "exact"))
register_backend("dp-vectorized", DpVectorizedSearchBackend,
                 aliases=("dp_vectorized", "dpv", "vectorized"))
register_backend("greedy", GreedySearchBackend)
register_backend("brute-force", BruteForceSearchBackend,
                 aliases=("brute_force", "bruteforce"))
register_backend("fixed-type", FixedTypeSearchBackend,
                 aliases=("fixed_type", "fixed"))
